"""Pytest configuration: make ``src/`` importable without installation.

The project is normally installed with ``pip install -e .``; in fully
offline environments (no ``wheel`` available for PEP 660 editable
installs) this conftest keeps ``import repro`` working for the test and
benchmark suites by putting ``src/`` on ``sys.path``.

It also provides a minimal stand-in for ``pytest-timeout``: the
resilience tests mark themselves ``@pytest.mark.timeout(...)`` so a hung
request fails fast instead of wedging the suite.  CI installs the real
plugin; offline environments fall back to a SIGALRM-based hook (main
thread only — ample for the way the marker is used here).
"""

import signal
import sys
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

try:
    import pytest_timeout  # noqa: F401 - the real plugin takes over

    _HAVE_PYTEST_TIMEOUT = True
except ImportError:
    _HAVE_PYTEST_TIMEOUT = False


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "timeout(seconds): fail the test if it runs longer than the budget",
    )


if not _HAVE_PYTEST_TIMEOUT and hasattr(signal, "SIGALRM"):

    @pytest.hookimpl(hookwrapper=True)
    def pytest_runtest_call(item):
        marker = item.get_closest_marker("timeout")
        seconds = None
        if marker is not None:
            seconds = float(
                marker.kwargs.get("timeout", marker.args[0] if marker.args else 0)
            )
        if not seconds or seconds <= 0:
            yield
            return

        def _expired(signum, frame):
            raise TimeoutError(
                f"test exceeded its {seconds:g}s timeout (SIGALRM fallback)"
            )

        previous = signal.signal(signal.SIGALRM, _expired)
        signal.setitimer(signal.ITIMER_REAL, seconds)
        try:
            yield
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0)
            signal.signal(signal.SIGALRM, previous)
