"""Pytest configuration: make ``src/`` importable without installation.

The project is normally installed with ``pip install -e .``; in fully
offline environments (no ``wheel`` available for PEP 660 editable
installs) this conftest keeps ``import repro`` working for the test and
benchmark suites by putting ``src/`` on ``sys.path``.
"""

import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))
