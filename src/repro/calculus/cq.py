"""Conjunctive queries and unions of conjunctive queries in rule form.

A conjunctive query is written as a Datalog-style rule::

    Q(x, y) :- R(x, z), S(z, y), z = 'a'

i.e. a head (the output variables) and a body of relational atoms plus
equality conditions.  This is the class for which naïve evaluation
computes certain answers under both CWA and OWA (Theorem 4.1 / 4.4), and
the starting point of most workloads.

The class converts to

* an FO formula (:meth:`ConjunctiveQuery.to_formula`), for the calculus
  and many-valued evaluators;
* a relational algebra query (:meth:`ConjunctiveQuery.to_algebra`), for
  the algebra evaluators and the approximation translations.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from ..algebra import ast as ra
from ..algebra.conditions import And as CondAnd, Attr, Condition, Eq, Literal, conjoin
from ..datamodel.schema import DatabaseSchema
from . import ast as fo
from .evaluation import FoQuery

__all__ = ["CqConst", "Atom", "ConjunctiveQuery", "UnionOfConjunctiveQueries"]


@dataclass(frozen=True)
class CqConst:
    """An explicit constant term in a rule body.

    Plain strings in atoms are read as *variable names*; wrap a string in
    ``CqConst`` to use it as a constant (non-string values are constants
    automatically).
    """

    value: Any

    def __str__(self) -> str:
        return repr(self.value)


def _is_variable(term: Any) -> bool:
    return isinstance(term, str)


def _constant_value(term: Any) -> Any:
    return term.value if isinstance(term, CqConst) else term


@dataclass(frozen=True)
class Atom:
    """A body atom ``R(t₁, ..., tₖ)``.

    Each term is a variable name (a plain string), a :class:`CqConst`, or a
    non-string Python value (read as a constant).
    """

    relation: str
    terms: tuple[Any, ...]

    def __init__(self, relation: str, terms: Sequence[Any]):
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "terms", tuple(terms))

    def variables(self) -> list[str]:
        return [t for t in self.terms if _is_variable(t)]

    def __str__(self) -> str:
        rendered = ", ".join(t if _is_variable(t) else repr(_constant_value(t)) for t in self.terms)
        return f"{self.relation}({rendered})"


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A conjunctive query in rule form.

    ``head`` lists the output variables (strings); ``body`` is a sequence
    of :class:`Atom`; ``equalities`` is an optional list of pairs
    ``(term, term)`` where terms are variable names or constants.
    """

    head: tuple[str, ...]
    body: tuple[Atom, ...]
    equalities: tuple[tuple[Any, Any], ...] = field(default=())

    def __init__(
        self,
        head: Sequence[str],
        body: Sequence[Atom | tuple],
        equalities: Sequence[tuple[Any, Any]] = (),
    ):
        atoms = tuple(a if isinstance(a, Atom) else Atom(a[0], a[1]) for a in body)
        object.__setattr__(self, "head", tuple(head))
        object.__setattr__(self, "body", atoms)
        object.__setattr__(self, "equalities", tuple((a, b) for a, b in equalities))
        body_vars = {v for atom in atoms for v in atom.variables()}
        missing = [v for v in self.head if v not in body_vars]
        if missing:
            raise ValueError(f"head variables {missing} do not occur in the body (unsafe query)")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def variables(self) -> list[str]:
        seen: dict[str, None] = {}
        for atom in self.body:
            for variable in atom.variables():
                seen.setdefault(variable, None)
        for left, right in self.equalities:
            for term in (left, right):
                if _is_variable(term):
                    seen.setdefault(term, None)
        return list(seen)

    def existential_variables(self) -> list[str]:
        return [v for v in self.variables() if v not in self.head]

    @property
    def arity(self) -> int:
        return len(self.head)

    def __str__(self) -> str:
        head = f"Q({', '.join(self.head)})"
        body = ", ".join(str(atom) for atom in self.body)
        eqs = ", ".join(f"{a} = {b}" for a, b in self.equalities)
        parts = ", ".join(p for p in (body, eqs) if p)
        return f"{head} :- {parts}"

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_formula(self) -> FoQuery:
        """The FO query ∃(existential vars) ⋀ atoms ∧ ⋀ equalities."""
        conjuncts: list[fo.Formula] = [
            fo.RelAtom(atom.relation, [self._fo_term(t) for t in atom.terms])
            for atom in self.body
        ]
        conjuncts.extend(
            fo.EqAtom(self._fo_term(a), self._fo_term(b)) for a, b in self.equalities
        )
        body = fo.conjunction(conjuncts)
        formula = fo.exists(self.existential_variables(), body)
        return FoQuery(formula, free=list(self.head))

    @staticmethod
    def _fo_term(term: Any):
        if _is_variable(term):
            return fo.Var(term)
        return fo.ConstTerm(_constant_value(term))

    def to_algebra(self, schema: DatabaseSchema) -> ra.Query:
        """Compile to relational algebra: product of atoms, selections, projection.

        Each atom occurrence gets its own renamed copy of the base relation
        (attributes ``_a{i}_{position}``); join conditions are equalities
        between the columns bound to the same variable, plus the explicit
        equalities and constant bindings.
        """
        if not self.body:
            raise ValueError("cannot compile a conjunctive query with an empty body")
        plan: ra.Query | None = None
        var_columns: dict[str, list[str]] = {}
        conditions: list[Condition] = []
        for i, atom in enumerate(self.body):
            base_attrs = schema[atom.relation].attributes
            if len(base_attrs) != len(atom.terms):
                raise ValueError(
                    f"atom {atom} has arity {len(atom.terms)}, relation has {len(base_attrs)}"
                )
            mapping = {a: f"_a{i}_{j}" for j, a in enumerate(base_attrs)}
            node: ra.Query = ra.Rename(ra.RelationRef(atom.relation), mapping)
            plan = node if plan is None else ra.Product(plan, node)
            for j, term in enumerate(atom.terms):
                column = f"_a{i}_{j}"
                if _is_variable(term):
                    var_columns.setdefault(term, []).append(column)
                else:
                    conditions.append(Eq(Attr(column), Literal(_constant_value(term))))
        for columns in var_columns.values():
            for first, second in zip(columns, columns[1:]):
                conditions.append(Eq(Attr(first), Attr(second)))
        for left, right in self.equalities:
            conditions.append(Eq(self._cond_term(left, var_columns), self._cond_term(right, var_columns)))
        assert plan is not None
        if conditions:
            plan = ra.Selection(plan, conjoin(conditions))
        output_columns = [var_columns[v][0] for v in self.head]
        plan = ra.Projection(plan, output_columns)
        return ra.Rename(plan, dict(zip(output_columns, self.head)))

    @staticmethod
    def _cond_term(term: Any, var_columns: Mapping[str, list[str]]):
        if _is_variable(term):
            if term not in var_columns:
                raise ValueError(f"equality mentions unknown variable {term!r}")
            return Attr(var_columns[term][0])
        return Literal(_constant_value(term))


@dataclass(frozen=True)
class UnionOfConjunctiveQueries:
    """A union of conjunctive queries with a common head arity."""

    disjuncts: tuple[ConjunctiveQuery, ...]

    def __init__(self, disjuncts: Sequence[ConjunctiveQuery]):
        disjuncts = tuple(disjuncts)
        if not disjuncts:
            raise ValueError("a UCQ needs at least one disjunct")
        arities = {cq.arity for cq in disjuncts}
        if len(arities) != 1:
            raise ValueError(f"disjuncts have different arities: {sorted(arities)}")
        object.__setattr__(self, "disjuncts", disjuncts)

    @property
    def arity(self) -> int:
        return self.disjuncts[0].arity

    def to_formula(self) -> FoQuery:
        """The disjunction of the disjuncts' formulae over a shared head."""
        head = list(self.disjuncts[0].head)
        renamed = []
        for cq in self.disjuncts:
            query = cq.to_formula()
            formula = query.formula
            if list(cq.head) != head:
                formula = _rename_free(formula, dict(zip(cq.head, head)))
            renamed.append(formula)
        return FoQuery(fo.disjunction(renamed), free=head)

    def to_algebra(self, schema: DatabaseSchema) -> ra.Query:
        """The union of the compiled disjuncts, aligned on the first head."""
        head = self.disjuncts[0].head
        plans = []
        for cq in self.disjuncts:
            plan = cq.to_algebra(schema)
            if cq.head != head:
                plan = ra.Rename(plan, dict(zip(cq.head, head)))
            plans.append(plan)
        result = plans[0]
        for plan in plans[1:]:
            result = ra.Union(result, plan)
        return result

    def __str__(self) -> str:
        return "  ∪  ".join(str(cq) for cq in self.disjuncts)


def _rename_free(formula: fo.Formula, mapping: Mapping[str, str]) -> fo.Formula:
    """Rename free variables in a formula (bound variables are untouched)."""

    def rename_term(term: fo.FoTerm, bound: frozenset[str]) -> fo.FoTerm:
        if isinstance(term, fo.Var) and term.name in mapping and term.name not in bound:
            return fo.Var(mapping[term.name])
        return term

    def walk(node: fo.Formula, bound: frozenset[str]) -> fo.Formula:
        if isinstance(node, fo.RelAtom):
            return fo.RelAtom(node.relation, [rename_term(t, bound) for t in node.terms])
        if isinstance(node, fo.EqAtom):
            return fo.EqAtom(rename_term(node.left, bound), rename_term(node.right, bound))
        if isinstance(node, fo.ConstTest):
            return fo.ConstTest(rename_term(node.term, bound))
        if isinstance(node, fo.NullTest):
            return fo.NullTest(rename_term(node.term, bound))
        if isinstance(node, (fo.TrueFormula, fo.FalseFormula)):
            return node
        if isinstance(node, fo.Not):
            return fo.Not(walk(node.operand, bound))
        if isinstance(node, fo.And):
            return fo.And(walk(node.left, bound), walk(node.right, bound))
        if isinstance(node, fo.Or):
            return fo.Or(walk(node.left, bound), walk(node.right, bound))
        if isinstance(node, fo.Implies):
            return fo.Implies(walk(node.left, bound), walk(node.right, bound))
        if isinstance(node, fo.Exists):
            inner = bound | {v.name for v in node.variables}
            return fo.Exists(node.variables, walk(node.body, inner))
        if isinstance(node, fo.Forall):
            inner = bound | {v.name for v in node.variables}
            return fo.Forall(node.variables, walk(node.body, inner))
        raise TypeError(f"unknown formula type {type(node).__name__}")

    return walk(formula, frozenset())
