"""Syntactic fragments of FO relevant to naïve evaluation (Section 4.1).

The paper relates naïve evaluation to homomorphism-preservation classes:

* conjunctive queries (∃, ∧) and unions of conjunctive queries
  (∃, ∧, ∨ — the existential positive fragment) are preserved under
  arbitrary homomorphisms, so naïve evaluation computes certain answers
  under OWA (Theorem 4.4);
* positive formulae (∃, ∀, ∧, ∨) are preserved under onto homomorphisms;
* Pos∀G formulae — positive formulae with universally guarded
  quantification ``∀x̄ (α(x̄) → φ)`` for an atomic guard α — are
  preserved under strong onto homomorphisms, so naïve evaluation
  computes certain answers under CWA (Theorem 4.4).

This module classifies formulae syntactically.  The classifiers are
deliberately conservative: they accept exactly the stated grammars (after
no rewriting), which is what the guarantees are stated for.
"""

from __future__ import annotations

from . import ast

__all__ = [
    "is_quantifier_free",
    "is_conjunctive",
    "is_existential_positive",
    "is_ucq",
    "is_positive",
    "is_pos_forall_g",
    "classify",
    "naive_evaluation_is_exact",
]


def _is_atom(formula: ast.Formula) -> bool:
    return isinstance(
        formula, (ast.RelAtom, ast.EqAtom, ast.ConstTest, ast.NullTest, ast.TrueFormula)
    )


def is_quantifier_free(formula: ast.Formula) -> bool:
    """No ∃ or ∀ anywhere in the formula."""
    return not any(
        isinstance(sub, (ast.Exists, ast.Forall)) for sub in ast.subformulas(formula)
    )


def is_conjunctive(formula: ast.Formula) -> bool:
    """Membership in the ∃,∧ fragment (conjunctive queries)."""
    if _is_atom(formula):
        return True
    if isinstance(formula, ast.And):
        return is_conjunctive(formula.left) and is_conjunctive(formula.right)
    if isinstance(formula, ast.Exists):
        return is_conjunctive(formula.body)
    return False


def is_existential_positive(formula: ast.Formula) -> bool:
    """Membership in the ∃,∧,∨ fragment (existential positive formulae)."""
    if _is_atom(formula):
        return True
    if isinstance(formula, (ast.And, ast.Or)):
        return is_existential_positive(formula.left) and is_existential_positive(formula.right)
    if isinstance(formula, ast.Exists):
        return is_existential_positive(formula.body)
    return False


def is_ucq(formula: ast.Formula) -> bool:
    """Unions of conjunctive queries.

    Syntactically we accept the whole existential positive fragment, which
    has exactly the expressive power of UCQs (Section 2 of the paper).
    """
    return is_existential_positive(formula)


def is_positive(formula: ast.Formula) -> bool:
    """Membership in the ∃,∀,∧,∨ fragment (no negation, no implication)."""
    if _is_atom(formula):
        return True
    if isinstance(formula, (ast.And, ast.Or)):
        return is_positive(formula.left) and is_positive(formula.right)
    if isinstance(formula, (ast.Exists, ast.Forall)):
        return is_positive(formula.body)
    return False


def is_pos_forall_g(formula: ast.Formula) -> bool:
    """Membership in Pos∀G: positive formulae with universally guarded ∀.

    The formation rules (Section 4.1): all atomic formulae are in Pos∀G;
    the class is closed under ∧, ∨, ∃, ∀; and if φ(x̄, ȳ) is in Pos∀G and
    α(x̄) is an atomic formula with distinct variables x̄, then
    ``∀x̄ (α(x̄) → φ(x̄, ȳ))`` is in Pos∀G.

    Plain (unguarded) ∀ is allowed by the closure rules; the implication
    form is only allowed when guarded by an atom over pairwise distinct
    variables, all of which are universally quantified at that point.
    """
    if _is_atom(formula):
        return True
    if isinstance(formula, (ast.And, ast.Or)):
        return is_pos_forall_g(formula.left) and is_pos_forall_g(formula.right)
    if isinstance(formula, ast.Exists):
        return is_pos_forall_g(formula.body)
    if isinstance(formula, ast.Forall):
        body = formula.body
        if isinstance(body, ast.Implies):
            guard = body.left
            if not isinstance(guard, (ast.RelAtom, ast.EqAtom)):
                return False
            guard_vars = [t for t in _guard_terms(guard) if isinstance(t, ast.Var)]
            if len(set(guard_vars)) != len(guard_vars):
                return False
            quantified = set(formula.variables)
            if not quantified <= set(guard_vars):
                return False
            return is_pos_forall_g(body.right)
        return is_pos_forall_g(body)
    return False


def _guard_terms(guard: ast.Formula) -> tuple[ast.FoTerm, ...]:
    if isinstance(guard, ast.RelAtom):
        return guard.terms
    if isinstance(guard, ast.EqAtom):
        return (guard.left, guard.right)
    return ()


def classify(formula: ast.Formula) -> str:
    """The most specific fragment name for a formula.

    One of ``"CQ"``, ``"UCQ"``, ``"Pos∀G"``, ``"positive"``, ``"FO"``.
    """
    if is_conjunctive(formula):
        return "CQ"
    if is_existential_positive(formula):
        return "UCQ"
    if is_pos_forall_g(formula):
        return "Pos∀G"
    if is_positive(formula):
        return "positive"
    return "FO"


def naive_evaluation_is_exact(formula: ast.Formula, semantics: str = "cwa") -> bool:
    """Does Theorem 4.4 guarantee naïve evaluation computes cert⊥?

    Under OWA the guarantee holds for UCQs; under CWA it extends to Pos∀G.
    The check is syntactic and therefore sufficient but not necessary.
    """
    semantics = semantics.lower()
    if semantics == "owa":
        return is_ucq(formula)
    if semantics == "cwa":
        return is_ucq(formula) or is_pos_forall_g(formula)
    raise ValueError(f"unknown semantics {semantics!r}; expected 'cwa' or 'owa'")
