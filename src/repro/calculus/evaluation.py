"""Classical (Boolean) active-domain evaluation of FO formulae.

This is the textbook two-valued semantics used throughout the paper as
the baseline: quantifiers range over the active domain of the database,
nulls are treated as ordinary values (so it coincides with naïve
evaluation when run directly on a database with nulls), and a k-ary
query returns the set of assignments of its free variables that make the
formula true.

The many-valued semantics of Section 5 live in :mod:`repro.mvl.fo_eval`
and share this module's assignment machinery.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from ..datamodel.database import Database
from ..datamodel.relation import Relation
from ..datamodel.values import Value, is_const, is_null, value_sort_key
from . import ast

__all__ = ["FoQuery", "evaluate_formula", "evaluate_query", "holds"]


def _resolve(term: ast.FoTerm, assignment: Mapping[ast.Var, Value]) -> Value:
    if isinstance(term, ast.Var):
        try:
            return assignment[term]
        except KeyError:
            raise KeyError(f"unbound variable {term.name}") from None
    if isinstance(term, ast.ConstTerm):
        return term.value
    raise TypeError(f"unknown term type {type(term).__name__}")


def holds(
    formula: ast.Formula,
    database: Database,
    assignment: Mapping[ast.Var, Value] | None = None,
    domain: Sequence[Value] | None = None,
) -> bool:
    """``D ⊨ φ(ā)``: truth of the formula under the given assignment.

    ``domain`` is the range of quantification; it defaults to the active
    domain of the database together with the constants mentioned in the
    formula (the standard active-domain semantics for generic queries).
    """
    assignment = dict(assignment or {})
    if domain is None:
        domain = _quantification_domain(formula, database)
    return _holds(formula, database, assignment, list(domain))


def _quantification_domain(formula: ast.Formula, database: Database) -> list[Value]:
    values = set(database.active_domain()) | ast.constants_mentioned(formula)
    return sorted(values, key=value_sort_key)


def _holds(formula, database, assignment, domain) -> bool:
    if isinstance(formula, ast.TrueFormula):
        return True
    if isinstance(formula, ast.FalseFormula):
        return False
    if isinstance(formula, ast.RelAtom):
        relation = database.get(formula.relation)
        if relation is None:
            return False
        row = tuple(_resolve(t, assignment) for t in formula.terms)
        return row in relation
    if isinstance(formula, ast.EqAtom):
        return _resolve(formula.left, assignment) == _resolve(formula.right, assignment)
    if isinstance(formula, ast.ConstTest):
        return is_const(_resolve(formula.term, assignment))
    if isinstance(formula, ast.NullTest):
        return is_null(_resolve(formula.term, assignment))
    if isinstance(formula, ast.Not):
        return not _holds(formula.operand, database, assignment, domain)
    if isinstance(formula, ast.And):
        return _holds(formula.left, database, assignment, domain) and _holds(
            formula.right, database, assignment, domain
        )
    if isinstance(formula, ast.Or):
        return _holds(formula.left, database, assignment, domain) or _holds(
            formula.right, database, assignment, domain
        )
    if isinstance(formula, ast.Implies):
        return (not _holds(formula.left, database, assignment, domain)) or _holds(
            formula.right, database, assignment, domain
        )
    if isinstance(formula, ast.Exists):
        return _quantify(formula, database, assignment, domain, want=True)
    if isinstance(formula, ast.Forall):
        return not _quantify(formula, database, assignment, domain, want=False)
    raise TypeError(f"unknown formula type {type(formula).__name__}")


def _quantify(formula, database, assignment, domain, *, want: bool) -> bool:
    """Search for a witness making the body evaluate to ``want``."""
    variables = list(formula.variables)

    def search(index: int) -> bool:
        if index == len(variables):
            return _holds(formula.body, database, assignment, domain) is want
        var = variables[index]
        saved = assignment.get(var, _MISSING)
        for value in domain:
            assignment[var] = value
            if search(index + 1):
                if saved is _MISSING:
                    del assignment[var]
                else:
                    assignment[var] = saved
                return True
        if saved is _MISSING:
            assignment.pop(var, None)
        else:
            assignment[var] = saved
        return False

    return search(0)


_MISSING = object()


class FoQuery:
    """A k-ary FO query: a formula together with an ordered tuple of free variables.

    The answer on a database is the relation of assignments to the free
    variables (drawn from the active domain plus the constants mentioned
    in the formula) that satisfy the formula.
    """

    def __init__(self, formula: ast.Formula, free: Sequence[ast.Var | str] | None = None):
        self.formula = formula
        if free is None:
            free = sorted(ast.free_variables(formula), key=lambda v: v.name)
        self.free: tuple[ast.Var, ...] = tuple(
            ast.Var(v) if isinstance(v, str) else v for v in free
        )
        declared = set(self.free)
        actual = ast.free_variables(formula)
        if not actual <= declared:
            missing = {v.name for v in actual - declared}
            raise ValueError(f"free variables {sorted(missing)} not declared in query head")

    @property
    def arity(self) -> int:
        return len(self.free)

    def attributes(self) -> tuple[str, ...]:
        return tuple(v.name for v in self.free)

    def answers(self, database: Database, domain: Iterable[Value] | None = None) -> Relation:
        """All satisfying assignments of the free variables, as a relation."""
        domain_list = (
            sorted(set(domain), key=value_sort_key)
            if domain is not None
            else _quantification_domain(self.formula, database)
        )
        rows = []
        for row in _assignments(domain_list, self.arity):
            assignment = dict(zip(self.free, row))
            if holds(self.formula, database, assignment, domain_list):
                rows.append(row)
        return Relation(self.attributes() or (), rows if self.arity else rows)

    def boolean(self, database: Database) -> bool:
        """Evaluate a Boolean query (arity 0)."""
        if self.arity != 0:
            raise ValueError("boolean() requires a query with no free variables")
        return holds(self.formula, database)

    def __repr__(self) -> str:
        head = ", ".join(v.name for v in self.free)
        return f"FoQuery(({head}) ← {self.formula})"


def _assignments(domain: Sequence[Value], arity: int):
    if arity == 0:
        yield ()
        return
    stack = [()]
    while stack:
        prefix = stack.pop()
        if len(prefix) == arity:
            yield prefix
            continue
        for value in reversed(domain):
            stack.append(prefix + (value,))


def evaluate_formula(
    formula: ast.Formula, database: Database, assignment: Mapping[ast.Var, Value] | None = None
) -> bool:
    """Convenience wrapper around :func:`holds`."""
    return holds(formula, database, assignment)


def evaluate_query(query: FoQuery, database: Database) -> Relation:
    """Convenience wrapper around :meth:`FoQuery.answers`."""
    return query.answers(database)
