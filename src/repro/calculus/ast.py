"""First-order logic (relational calculus) formulae.

The atomic formulae follow Section 2 of the paper: relational atoms
``R(x̄)``, equality atoms ``x = y``, the constant test ``const(x)`` and
the null test ``null(x)``.  Formulae are closed under ∧, ∨, ¬, ∃ and ∀.
Terms are variables or constants.

The same AST is used by

* the classical Boolean evaluation (:mod:`repro.calculus.evaluation`),
* the syntactic fragment classifiers (:mod:`repro.calculus.fragments`),
* the many-valued semantics of Section 5 (:mod:`repro.mvl.fo_eval`), and
* the compilation to relational algebra for the safe existential-positive
  fragment (:mod:`repro.calculus.to_algebra`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Sequence

__all__ = [
    "FoTerm",
    "Var",
    "ConstTerm",
    "Formula",
    "RelAtom",
    "EqAtom",
    "ConstTest",
    "NullTest",
    "Not",
    "And",
    "Or",
    "Implies",
    "Exists",
    "Forall",
    "TrueFormula",
    "FalseFormula",
    "free_variables",
    "variables",
    "constants_mentioned",
    "subformulas",
    "conjunction",
    "disjunction",
    "exists",
    "forall",
]


# ----------------------------------------------------------------------
# Terms
# ----------------------------------------------------------------------
class FoTerm:
    """A term: a variable or a constant."""


@dataclass(frozen=True)
class Var(FoTerm):
    """A first-order variable."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ConstTerm(FoTerm):
    """A constant mentioned in the formula."""

    value: Any

    def __str__(self) -> str:
        return repr(self.value)


def _as_term(value: Any) -> FoTerm:
    if isinstance(value, FoTerm):
        return value
    if isinstance(value, str):
        return Var(value)
    return ConstTerm(value)


# ----------------------------------------------------------------------
# Formulae
# ----------------------------------------------------------------------
class Formula:
    """Base class of FO formulae."""

    def children(self) -> tuple["Formula", ...]:
        return ()

    # Connective sugar, so tests and examples read like formulae.
    def __and__(self, other: "Formula") -> "And":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Or":
        return Or(self, other)

    def __invert__(self) -> "Not":
        return Not(self)


@dataclass(frozen=True)
class TrueFormula(Formula):
    """The formula ⊤."""

    def __str__(self) -> str:
        return "⊤"


@dataclass(frozen=True)
class FalseFormula(Formula):
    """The formula ⊥ (falsity, not a null)."""

    def __str__(self) -> str:
        return "⊥f"


@dataclass(frozen=True)
class RelAtom(Formula):
    """A relational atom ``R(t₁, ..., tₖ)``."""

    relation: str
    terms: tuple[FoTerm, ...]

    def __init__(self, relation: str, terms: Sequence[Any]):
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "terms", tuple(_as_term(t) for t in terms))

    def __str__(self) -> str:
        return f"{self.relation}({', '.join(str(t) for t in self.terms)})"


@dataclass(frozen=True)
class EqAtom(Formula):
    """An equality atom ``t₁ = t₂``."""

    left: FoTerm
    right: FoTerm

    def __init__(self, left: Any, right: Any):
        object.__setattr__(self, "left", _as_term(left))
        object.__setattr__(self, "right", _as_term(right))

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


@dataclass(frozen=True)
class ConstTest(Formula):
    """The atom ``const(t)``: t denotes a constant."""

    term: FoTerm

    def __init__(self, term: Any):
        object.__setattr__(self, "term", _as_term(term))

    def __str__(self) -> str:
        return f"const({self.term})"


@dataclass(frozen=True)
class NullTest(Formula):
    """The atom ``null(t)``: t denotes a null."""

    term: FoTerm

    def __init__(self, term: Any):
        object.__setattr__(self, "term", _as_term(term))

    def __str__(self) -> str:
        return f"null({self.term})"


@dataclass(frozen=True)
class Not(Formula):
    """Negation ¬φ."""

    operand: Formula

    def children(self) -> tuple[Formula, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"¬({self.operand})"


@dataclass(frozen=True)
class And(Formula):
    """Conjunction φ ∧ ψ."""

    left: Formula
    right: Formula

    def children(self) -> tuple[Formula, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} ∧ {self.right})"


@dataclass(frozen=True)
class Or(Formula):
    """Disjunction φ ∨ ψ."""

    left: Formula
    right: Formula

    def children(self) -> tuple[Formula, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} ∨ {self.right})"


@dataclass(frozen=True)
class Implies(Formula):
    """Implication φ → ψ (kept explicit because Pos∀G uses guarded implications)."""

    left: Formula
    right: Formula

    def children(self) -> tuple[Formula, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} → {self.right})"


@dataclass(frozen=True)
class Exists(Formula):
    """Existential quantification ∃x̄ φ."""

    variables: tuple[Var, ...]
    body: Formula

    def __init__(self, variables: Sequence[Any], body: Formula):
        object.__setattr__(
            self, "variables", tuple(Var(v) if isinstance(v, str) else v for v in variables)
        )
        object.__setattr__(self, "body", body)

    def children(self) -> tuple[Formula, ...]:
        return (self.body,)

    def __str__(self) -> str:
        names = ", ".join(v.name for v in self.variables)
        return f"∃{names} ({self.body})"


@dataclass(frozen=True)
class Forall(Formula):
    """Universal quantification ∀x̄ φ."""

    variables: tuple[Var, ...]
    body: Formula

    def __init__(self, variables: Sequence[Any], body: Formula):
        object.__setattr__(
            self, "variables", tuple(Var(v) if isinstance(v, str) else v for v in variables)
        )
        object.__setattr__(self, "body", body)

    def children(self) -> tuple[Formula, ...]:
        return (self.body,)

    def __str__(self) -> str:
        names = ", ".join(v.name for v in self.variables)
        return f"∀{names} ({self.body})"


# ----------------------------------------------------------------------
# Structural helpers
# ----------------------------------------------------------------------
def _atom_terms(formula: Formula) -> tuple[FoTerm, ...]:
    if isinstance(formula, RelAtom):
        return formula.terms
    if isinstance(formula, EqAtom):
        return (formula.left, formula.right)
    if isinstance(formula, (ConstTest, NullTest)):
        return (formula.term,)
    return ()


def variables(formula: Formula) -> set[Var]:
    """All variables occurring in the formula (free or bound)."""
    result: set[Var] = set()
    for sub in subformulas(formula):
        for term in _atom_terms(sub):
            if isinstance(term, Var):
                result.add(term)
        if isinstance(sub, (Exists, Forall)):
            result.update(sub.variables)
    return result


def free_variables(formula: Formula) -> set[Var]:
    """The free variables of the formula."""
    if isinstance(formula, (RelAtom, EqAtom, ConstTest, NullTest)):
        return {t for t in _atom_terms(formula) if isinstance(t, Var)}
    if isinstance(formula, (TrueFormula, FalseFormula)):
        return set()
    if isinstance(formula, Not):
        return free_variables(formula.operand)
    if isinstance(formula, (And, Or, Implies)):
        return free_variables(formula.left) | free_variables(formula.right)
    if isinstance(formula, (Exists, Forall)):
        return free_variables(formula.body) - set(formula.variables)
    raise TypeError(f"unknown formula type {type(formula).__name__}")


def constants_mentioned(formula: Formula) -> set:
    """All constants mentioned explicitly in the formula."""
    result: set = set()
    for sub in subformulas(formula):
        for term in _atom_terms(sub):
            if isinstance(term, ConstTerm):
                result.add(term.value)
    return result


def subformulas(formula: Formula) -> Iterator[Formula]:
    """All subformulae (pre-order, including the formula itself)."""
    yield formula
    for child in formula.children():
        yield from subformulas(child)


def conjunction(formulas: Sequence[Formula]) -> Formula:
    """The conjunction of a list of formulae (⊤ if empty)."""
    result: Formula | None = None
    for formula in formulas:
        result = formula if result is None else And(result, formula)
    return result if result is not None else TrueFormula()


def disjunction(formulas: Sequence[Formula]) -> Formula:
    """The disjunction of a list of formulae (falsity if empty)."""
    result: Formula | None = None
    for formula in formulas:
        result = formula if result is None else Or(result, formula)
    return result if result is not None else FalseFormula()


def exists(variables_: Sequence[Any], body: Formula) -> Formula:
    """∃x̄ body, collapsing the empty quantifier."""
    return Exists(variables_, body) if variables_ else body


def forall(variables_: Sequence[Any], body: Formula) -> Formula:
    """∀x̄ body, collapsing the empty quantifier."""
    return Forall(variables_, body) if variables_ else body
