"""repro: certain-answer query evaluation over incomplete relational databases.

A reproduction of the systems surveyed in *Coping with Incomplete Data:
Recent Advances* (Console, Guagliardo, Libkin, Toussaint — PODS 2020).

The package is organised in layers:

* :mod:`repro.datamodel` — relations, marked nulls, valuations,
  homomorphisms, unification (Section 2);
* :mod:`repro.algebra` and :mod:`repro.calculus` — relational algebra and
  relational calculus (FO) with set and bag semantics;
* :mod:`repro.incomplete` — possible worlds, naïve evaluation and exact
  certain answers (Sections 3 and 4.1);
* :mod:`repro.approx` — approximation schemes with correctness
  guarantees (Section 4.2, Figure 2);
* :mod:`repro.ctables` — conditional tables and the grounding-based
  approximation algorithms (Section 4.2);
* :mod:`repro.probabilistic` — supports, the 0–1 law, conditional
  certainty under constraints (Section 4.3);
* :mod:`repro.mvl` — many-valued logics, SQL's three-valued logic and its
  capture in Boolean FO (Section 5);
* :mod:`repro.constraints` — dependencies and the chase;
* :mod:`repro.sql` — a small SQL frontend that evaluates queries the way
  SQL does, for side-by-side comparisons with certain answers;
* :mod:`repro.workloads` and :mod:`repro.bench` — data generators and the
  benchmark harness used to regenerate the paper's experiments;
* :mod:`repro.engine` — the unified Session/Engine façade dispatching
  every evaluation strategy above through one ``evaluate()`` call, and
  its awaitable twins :class:`~repro.engine.AsyncEngine` /
  :class:`~repro.engine.AsyncSession` fanning batch/compare out over a
  worker pool;
* :mod:`repro.sharding` — horizontally sharded databases with parallel
  per-fragment evaluation behind the same façade
  (``Session(db, shards=4, executor="process")``).

The recommended entry point is the engine façade::

    from repro import Engine, Session

    session = Session(database)
    result = session.evaluate(query, strategy="approx-guagliardo16")
"""

from .datamodel import (
    Database,
    DatabaseSchema,
    Null,
    NullFactory,
    Relation,
    RelationSchema,
    Valuation,
    fresh_null,
    is_const,
    is_null,
)
from .engine import (
    AnnotatedTuple,
    AsyncEngine,
    AsyncSession,
    CacheBackend,
    Certainty,
    DiskCacheBackend,
    Engine,
    EngineError,
    EvaluationStrategy,
    MemoryCacheBackend,
    NormalizedQuery,
    PlanDecision,
    QueryResult,
    Session,
    StrategyCapabilities,
    StrategyNotApplicableError,
    UnknownStrategyError,
    available_strategies,
    choose_strategy,
    normalize_query,
    register_strategy,
)
from .algebra import (
    builder,
    evaluate as evaluate_algebra,
    optimize_plan,
    to_text as algebra_to_text,
)
from .calculus import FoQuery
from .exec import ExecutionBackend, InterpreterBackend, SQLiteBackend
from .sharding import HashPartitioner, RoundRobinPartitioner, ShardedDatabase
from .sql import compile_sql, parse as parse_sql, run_sql

__version__ = "1.10.0"

__all__ = [
    # Data model
    "Database",
    "DatabaseSchema",
    "Null",
    "NullFactory",
    "Relation",
    "RelationSchema",
    "Valuation",
    "fresh_null",
    "is_const",
    "is_null",
    # Engine façade
    "Engine",
    "Session",
    "AsyncEngine",
    "AsyncSession",
    "QueryResult",
    "AnnotatedTuple",
    "Certainty",
    "EvaluationStrategy",
    "StrategyCapabilities",
    "PlanDecision",
    "choose_strategy",
    "CacheBackend",
    "MemoryCacheBackend",
    "DiskCacheBackend",
    "NormalizedQuery",
    "available_strategies",
    "normalize_query",
    "register_strategy",
    "EngineError",
    "UnknownStrategyError",
    "StrategyNotApplicableError",
    # Execution backends
    "ExecutionBackend",
    "InterpreterBackend",
    "SQLiteBackend",
    # Sharding
    "ShardedDatabase",
    "HashPartitioner",
    "RoundRobinPartitioner",
    # Algebra / calculus / SQL entry points
    "builder",
    "evaluate_algebra",
    "optimize_plan",
    "algebra_to_text",
    "FoQuery",
    "compile_sql",
    "parse_sql",
    "run_sql",
    "__version__",
]
