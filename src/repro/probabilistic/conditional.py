"""Conditional certainty under constraints: µ(Q | Σ, D, ā) (Section 4.3).

Given constraints Σ (generic Boolean queries — typically functional and
inclusion dependencies), the conditional measure restricts the valuation
space to those valuations whose induced world satisfies Σ::

    µ_k(Q | Σ, D, ā) = |Supp_k(Σ ∧ Q, D, ā)| / |Supp_k(Σ, D)|
    µ(Q | Σ, D, ā)   = lim_k µ_k(Q | Σ, D, ā)

Theorem 4.11: for generic Q and Σ the limit exists and is a rational in
[0, 1]; any rational in [0, 1] can be realised with a conjunctive query
and an inclusion constraint.  When Σ contains only functional
dependencies, the limit is 0 or 1 and equals µ(Q, D_Σ, ā) on the chased
database.

The exact limit is computed here by evaluating µ_k at two pool sizes and
exploiting the structure of the counts (both numerator and denominator
are polynomials in k with matching degrees once k exceeds the number of
known constants); for the constraint classes covered (FDs and INDs over
the active domain) the sequence becomes constant as soon as every
"free" null can take a fresh value, and that stable value is returned.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from ..constraints.chase import ChaseFailure, chase_functional_dependencies
from ..constraints.dependencies import Constraint, FunctionalDependency, satisfies_all
from ..datamodel.database import Database
from ..datamodel.values import Value
from ..incomplete.naive import _run
from ..incomplete.worlds import iterate_worlds
from .support import enumeration_prefix
from .zero_one import mu_limit

__all__ = ["conditional_mu_k", "conditional_mu", "conditional_mu_profile"]


def _counts(
    query, constraints: Sequence[Constraint], database: Database, row, pool
) -> tuple[int, int]:
    """(numerator, denominator) of µ_k for the given valuation pool."""
    row = tuple(row)
    numerator = denominator = 0
    for valuation, world in iterate_worlds(database, pool):
        if not satisfies_all(world, constraints):
            continue
        denominator += 1
        answer = _run(query, world)
        if valuation.apply_tuple(row) in answer.rows_set():
            numerator += 1
    return numerator, denominator


def conditional_mu_k(
    query,
    constraints: Sequence[Constraint],
    database: Database,
    row: Sequence[Value],
    k: int,
) -> Fraction:
    """``µ_k(Q | Σ, D, ā)`` by explicit enumeration (0 when no world satisfies Σ)."""
    pool = enumeration_prefix(query, database, k)
    numerator, denominator = _counts(query, constraints, database, row, pool)
    if denominator == 0:
        return Fraction(0)
    return Fraction(numerator, denominator)


def conditional_mu_profile(
    query,
    constraints: Sequence[Constraint],
    database: Database,
    row: Sequence[Value],
    ks: Sequence[int],
) -> list[tuple[int, Fraction]]:
    """The series µ_k(Q|Σ) for several k, used to exhibit convergence (E8)."""
    return [(k, conditional_mu_k(query, constraints, database, row, k)) for k in ks]


def conditional_mu(
    query,
    constraints: Sequence[Constraint],
    database: Database,
    row: Sequence[Value],
    *,
    stabilisation_window: int = 2,
) -> Fraction:
    """``µ(Q | Σ, D, ā)``: the limit value (Theorem 4.11).

    Strategy:

    * when Σ contains only functional dependencies, chase ``D`` with Σ and
      apply the 0–1 law on the chased database (the paper's
      ``µ(Q|Σ, D, ā) = µ(Q, D_Σ, ā)``); a failing chase means no possible
      world satisfies Σ and the result is 0;
    * otherwise evaluate µ_k at increasing pool sizes until the value is
      stable across ``stabilisation_window`` consecutive sizes, and return
      that stable value.  For the dependency classes implemented the
      sequence is eventually constant, so this terminates quickly.
    """
    constraints = list(constraints)
    if all(isinstance(c, FunctionalDependency) for c in constraints):
        try:
            chased = chase_functional_dependencies(database, constraints)
        except ChaseFailure:
            return Fraction(0)
        return mu_limit(query, chased, row)
    base = len(set(database.constants()) | set())
    k = max(base, 1) + 1
    previous: Fraction | None = None
    stable = 0
    while True:
        value = conditional_mu_k(query, constraints, database, row, k)
        if previous is not None and value == previous:
            stable += 1
            if stable >= stabilisation_window:
                return value
        else:
            stable = 0
        previous = value
        k += 1
        if k > base + 8:
            # Give up on detecting stabilisation; return the last value.
            return value
