"""Probabilistic approximation of certainty (Section 4.3)."""

from .support import enumeration_prefix, mu_k, mu_k_profile, support_size
from .zero_one import (
    almost_certainly_true_answers,
    empirical_mu_limit,
    is_almost_certainly_true,
    mu_limit,
)
from .conditional import conditional_mu, conditional_mu_k, conditional_mu_profile

__all__ = [
    "enumeration_prefix",
    "support_size",
    "mu_k",
    "mu_k_profile",
    "almost_certainly_true_answers",
    "is_almost_certainly_true",
    "mu_limit",
    "empirical_mu_limit",
    "conditional_mu_k",
    "conditional_mu",
    "conditional_mu_profile",
]
