"""Supports and the measures µ_k of Section 4.3.

For a query ``Q``, database ``D`` and tuple ``ā`` over ``dom(D)``::

    Supp(Q, D, ā)  = { v | v(ā) ∈ Q(v(D)) }
    V_k(D)         = valuations whose range lies in the first k constants
    µ_k(Q, D, ā)   = |Supp(Q, D, ā) ∩ V_k(D)| / |V_k(D)|
    µ(Q, D, ā)     = lim_k µ_k(Q, D, ā)

The enumeration of ``Const`` is taken to start with the constants of the
database and of the query (for generic queries the limit does not depend
on the enumeration), followed by fresh constants ``#f1, #f2, ...``.

All values are exact rationals (:class:`fractions.Fraction`); µ_k is
computed by explicit enumeration of ``V_k(D)``, so keep ``|Null(D)|``
small, as elsewhere in the exact reference machinery.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from ..datamodel.database import Database
from ..datamodel.values import Value, value_sort_key
from ..incomplete.naive import _query_constants, _run
from ..incomplete.worlds import fresh_constants, iterate_worlds

__all__ = ["enumeration_prefix", "support_size", "mu_k", "mu_k_profile"]


def enumeration_prefix(query, database: Database, k: int) -> list[Value]:
    """The first ``k`` constants of the enumeration used for V_k(D).

    The enumeration starts with ``Const(D)`` and the constants of the
    query (sorted deterministically) and continues with fresh constants.
    ``k`` must be at least the number of known constants.
    """
    known = sorted(
        set(database.constants()) | set(_query_constants(query)), key=value_sort_key
    )
    if k < len(known):
        raise ValueError(
            f"k={k} is smaller than the number of known constants ({len(known)})"
        )
    return known + fresh_constants(k - len(known), known)


def support_size(query, database: Database, row: Sequence[Value], pool: Sequence[Value]) -> int:
    """``|Supp(Q, D, ā) ∩ V_k(D)|`` for the valuation pool given."""
    row = tuple(row)
    count = 0
    for valuation, world in iterate_worlds(database, pool):
        answer = _run(query, world)
        if valuation.apply_tuple(row) in answer.rows_set():
            count += 1
    return count


def mu_k(query, database: Database, row: Sequence[Value], k: int) -> Fraction:
    """``µ_k(Q, D, ā)``: exact probability over valuations into k constants."""
    pool = enumeration_prefix(query, database, k)
    nulls = len(database.nulls())
    total = len(pool) ** nulls
    if total == 0:
        return Fraction(0)
    return Fraction(support_size(query, database, row, pool), total)


def mu_k_profile(
    query, database: Database, row: Sequence[Value], ks: Sequence[int]
) -> list[tuple[int, Fraction]]:
    """µ_k for several values of k — the convergence series plotted in E8."""
    return [(k, mu_k(query, database, row, k)) for k in ks]
