"""The 0–1 law for certainty (Theorem 4.10) and almost-certainly-true answers.

For a generic query ``Q``, a tuple ``ā`` is an *almost certainly true*
answer (µ(Q, D, ā) = 1) if and only if ``ā`` belongs to the naïve
evaluation of ``Q`` on ``D``; otherwise µ(Q, D, ā) = 0.  In other words,
naïve evaluation computes exactly the answers that are true with
probability 1 when nulls are interpreted uniformly at random — a much
weaker guarantee than certainty, but one with AC0 complexity.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from ..datamodel.database import Database
from ..datamodel.relation import Relation
from ..datamodel.values import Value
from ..incomplete.naive import naive_evaluate_direct
from .support import mu_k

__all__ = ["almost_certainly_true_answers", "mu_limit", "is_almost_certainly_true"]


def almost_certainly_true_answers(query, database: Database) -> Relation:
    """The tuples with µ(Q, D, ā) = 1; by Theorem 4.10 this is Q_naive(D)."""
    return naive_evaluate_direct(query, database)


def is_almost_certainly_true(query, database: Database, row: Sequence[Value]) -> bool:
    """Is ``row`` an almost-certainly-true answer (µ = 1)?"""
    return tuple(row) in almost_certainly_true_answers(query, database)


def mu_limit(query, database: Database, row: Sequence[Value]) -> Fraction:
    """The limit µ(Q, D, ā), computed via the 0–1 law (Theorem 4.10)."""
    return Fraction(1) if is_almost_certainly_true(query, database, row) else Fraction(0)


def empirical_mu_limit(
    query,
    database: Database,
    row: Sequence[Value],
    ks: Sequence[int] = (),
) -> Fraction:
    """An empirical check of the limit: evaluate µ_k for growing k.

    Returns the last µ_k computed.  Used in the tests to confirm that the
    series approaches the theoretical limit of :func:`mu_limit`.
    """
    if not ks:
        base = len(set(database.constants()))
        ks = (base + 1, base + 2, base + 4)
    value = Fraction(0)
    for k in ks:
        value = mu_k(query, database, row, k)
    return value
