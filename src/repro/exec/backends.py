"""Pluggable execution backends for optimized algebra plans.

The engine's strategies describe *what* to evaluate (a plan tree, a
condition mode, set or bag semantics); an :class:`ExecutionBackend`
decides *how*.  Two implementations ship:

* :class:`InterpreterBackend` — the tuple-at-a-time tree-walking
  evaluator from :mod:`repro.algebra.evaluator`, wrapped behind the
  protocol so strategies no longer import it directly.  One evaluator
  instance is shared across a batch of plans, preserving the sub-plan
  memoisation that the Figure 2 translation pairs rely on.
* :class:`~repro.exec.sqlite_backend.SQLiteBackend` — compiles plans to
  a single SQL statement over in-memory SQLite (marked null → ``NULL``
  plus a marker column) and decodes the rows back with markers intact.

:func:`execute_plans` is the strategy-facing entry point: it resolves
``backend="auto"`` (SQLite when every plan is expressible, interpreter
otherwise), enforces an explicit ``backend="sqlite"`` request with a
clear error when the plan cannot be pushed down, and reports the
requested/resolved pair so strategies can surface the decision in
``result.metadata["backend"]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence, runtime_checkable

from ..algebra import ast
from ..algebra.evaluator import Evaluator
from ..datamodel.database import Database
from ..datamodel.relation import Relation
from ..engine.errors import EngineError
from .sqlite_backend import (
    SQLiteBackend,
    SQLiteUnsupportedError,
    sqlite_uncompilable_reason,
)

__all__ = [
    "BACKEND_NAMES",
    "ExecutionBackend",
    "InterpreterBackend",
    "PlanExecution",
    "execute_plans",
    "interpreter_note",
    "validate_backend",
]

#: The accepted values of every ``backend=`` parameter.
BACKEND_NAMES = ("auto", "interpreter", "sqlite")


@runtime_checkable
class ExecutionBackend(Protocol):
    """How a batch of algebra plans gets executed against a database."""

    name: str

    def run(
        self,
        plans: Sequence[ast.Query],
        database: Database,
        *,
        bag: bool = False,
        condition_mode: str = "naive",
        optimize: bool = False,
        stats: bool = False,
    ) -> list[Relation]:
        """Evaluate every plan on ``database``, in order."""
        ...


class InterpreterBackend:
    """The tree-walking evaluator behind the backend protocol."""

    name = "interpreter"

    def run(
        self,
        plans: Sequence[ast.Query],
        database: Database,
        *,
        bag: bool = False,
        condition_mode: str = "naive",
        optimize: bool = False,
        stats: bool = False,
    ) -> list[Relation]:
        evaluator = Evaluator(
            bag=bag, condition_mode=condition_mode, optimize=optimize, stats=stats
        )
        return [evaluator.evaluate(plan, database) for plan in plans]


def validate_backend(backend: str) -> None:
    if backend not in BACKEND_NAMES:
        raise EngineError(
            f"unknown backend {backend!r}; expected one of {BACKEND_NAMES}"
        )


@dataclass(frozen=True)
class PlanExecution:
    """The relations a backend produced, plus the resolution decision."""

    relations: tuple[Relation, ...]
    requested: str
    resolved: str
    reason: str

    def as_metadata(self) -> dict[str, str]:
        return {
            "requested": self.requested,
            "resolved": self.resolved,
            "reason": self.reason,
        }


def interpreter_note(requested: str, reason: str) -> dict[str, str]:
    """Backend metadata for a path that can only run on the interpreter.

    Raises when the caller explicitly demanded SQLite — silently running
    something else would make ``backend="sqlite"`` meaningless.
    """
    validate_backend(requested)
    if requested == "sqlite":
        raise EngineError(
            f"backend='sqlite' is not available here: {reason}; "
            "use backend='auto' or backend='interpreter'"
        )
    return {"requested": requested, "resolved": "interpreter", "reason": reason}


def execute_plans(
    plans: Sequence[ast.Query],
    database: Database,
    *,
    backend: str = "auto",
    bag: bool = False,
    condition_mode: str = "naive",
    optimize: bool = False,
    stats: bool = False,
) -> PlanExecution:
    """Execute ``plans`` on the requested backend, resolving ``"auto"``.

    ``"auto"`` pushes into SQLite when every plan is statically
    expressible and the data encodes, falling back to the interpreter
    (with the reason recorded) otherwise; an explicit ``"sqlite"`` that
    cannot be honoured raises :class:`~repro.engine.errors.EngineError`.
    """
    validate_backend(backend)
    plans = list(plans)
    options = dict(bag=bag, condition_mode=condition_mode, optimize=optimize, stats=stats)

    def on_interpreter(reason: str) -> PlanExecution:
        relations = InterpreterBackend().run(plans, database, **options)
        return PlanExecution(tuple(relations), backend, "interpreter", reason)

    if backend == "interpreter":
        return on_interpreter("interpreter requested")
    static_reason = next(
        (r for r in (sqlite_uncompilable_reason(p) for p in plans) if r is not None),
        None,
    )
    if static_reason is not None:
        if backend == "sqlite":
            raise EngineError(
                f"backend='sqlite' cannot execute this plan: {static_reason}; "
                "use backend='auto' or backend='interpreter'"
            )
        return on_interpreter(static_reason)
    try:
        relations = SQLiteBackend().run(plans, database, **options)
    except SQLiteUnsupportedError as exc:
        if backend == "sqlite":
            raise EngineError(
                f"backend='sqlite' cannot execute this plan: {exc}; "
                "use backend='auto' or backend='interpreter'"
            ) from exc
        return on_interpreter(str(exc))
    return PlanExecution(
        tuple(relations),
        backend,
        "sqlite",
        "plan compiled to a single SQLite statement",
    )
