"""Pluggable execution backends for optimized algebra plans.

The engine's strategies describe *what* to evaluate (a plan tree, a
condition mode, set or bag semantics); an :class:`ExecutionBackend`
decides *how*.  Two implementations ship:

* :class:`InterpreterBackend` — the tuple-at-a-time tree-walking
  evaluator from :mod:`repro.algebra.evaluator`, wrapped behind the
  protocol so strategies no longer import it directly.  One evaluator
  instance is shared across a batch of plans, preserving the sub-plan
  memoisation that the Figure 2 translation pairs rely on.
* :class:`~repro.exec.sqlite_backend.SQLiteBackend` — compiles plans to
  a single SQL statement over in-memory SQLite (marked null → ``NULL``
  plus a marker column) and decodes the rows back with markers intact.

:func:`execute_plans` is the strategy-facing entry point: it resolves
``backend="auto"`` (SQLite when every plan is expressible, interpreter
otherwise), enforces an explicit ``backend="sqlite"`` request with a
clear error when the plan cannot be pushed down, and reports the
requested/resolved pair so strategies can surface the decision in
``result.metadata["backend"]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence, runtime_checkable

from ..algebra import ast
from ..algebra.evaluator import Evaluator
from ..datamodel.database import Database
from ..datamodel.relation import Relation
from ..engine.errors import EngineError
from ..obs import metrics as obs_metrics
from ..obs.trace import span
from ..resilience import (
    DeadlineExceeded,
    RetryPolicy,
    active_deadline,
    breaker_for,
)
from .sqlite_backend import (
    SQLiteBackend,
    SQLiteUnsupportedError,
    sqlite_uncompilable_reason,
)

__all__ = [
    "BACKEND_NAMES",
    "ExecutionBackend",
    "InterpreterBackend",
    "PlanExecution",
    "execute_plans",
    "interpreter_note",
    "validate_backend",
]

#: The accepted values of every ``backend=`` parameter.
BACKEND_NAMES = ("auto", "interpreter", "sqlite")


@runtime_checkable
class ExecutionBackend(Protocol):
    """How a batch of algebra plans gets executed against a database."""

    name: str

    def run(
        self,
        plans: Sequence[ast.Query],
        database: Database,
        *,
        bag: bool = False,
        condition_mode: str = "naive",
        optimize: bool = False,
        stats: bool = False,
    ) -> list[Relation]:
        """Evaluate every plan on ``database``, in order."""
        ...


class InterpreterBackend:
    """The tree-walking evaluator behind the backend protocol."""

    name = "interpreter"

    def run(
        self,
        plans: Sequence[ast.Query],
        database: Database,
        *,
        bag: bool = False,
        condition_mode: str = "naive",
        optimize: bool = False,
        stats: bool = False,
    ) -> list[Relation]:
        evaluator = Evaluator(
            bag=bag, condition_mode=condition_mode, optimize=optimize, stats=stats
        )
        return [evaluator.evaluate(plan, database) for plan in plans]


def validate_backend(backend: str) -> None:
    if backend not in BACKEND_NAMES:
        raise EngineError(
            f"unknown backend {backend!r}; expected one of {BACKEND_NAMES}"
        )


@dataclass(frozen=True)
class PlanExecution:
    """The relations a backend produced, plus the resolution decision."""

    relations: tuple[Relation, ...]
    requested: str
    resolved: str
    reason: str
    #: Transient-failure retries spent producing the relations (0 on the
    #: happy path; surfaced in metadata only when non-zero so existing
    #: metadata comparisons stay stable).
    retries: int = 0

    def as_metadata(self) -> dict[str, object]:
        metadata: dict[str, object] = {
            "requested": self.requested,
            "resolved": self.resolved,
            "reason": self.reason,
        }
        if self.retries:
            metadata["retries"] = self.retries
        return metadata


def interpreter_note(requested: str, reason: str) -> dict[str, str]:
    """Backend metadata for a path that can only run on the interpreter.

    Raises when the caller explicitly demanded SQLite — silently running
    something else would make ``backend="sqlite"`` meaningless.
    """
    validate_backend(requested)
    if requested == "sqlite":
        raise EngineError(
            f"backend='sqlite' is not available here: {reason}; "
            "use backend='auto' or backend='interpreter'"
        )
    return {"requested": requested, "resolved": "interpreter", "reason": reason}


#: Backoff for transient SQLite failures (``OperationalError``: a locked
#: or interrupted connection, an injected fault).  Deliberately tiny —
#: one quick second chance before the circuit breaker hears about it.
_SQLITE_RETRY = RetryPolicy(
    max_attempts=2, base_delay=0.01, max_delay=0.1, retryable_names=("OperationalError",)
)


def execute_plans(
    plans: Sequence[ast.Query],
    database: Database,
    *,
    backend: str = "auto",
    bag: bool = False,
    condition_mode: str = "naive",
    optimize: bool = False,
    stats: bool = False,
    strategy: str | None = None,
) -> PlanExecution:
    """Execute ``plans`` on the requested backend, resolving ``"auto"``.

    ``"auto"`` pushes into SQLite when every plan is statically
    expressible and the data encodes, falling back to the interpreter
    (with the reason recorded) otherwise; an explicit ``"sqlite"`` that
    cannot be honoured raises :class:`~repro.engine.errors.EngineError`.

    Health is tracked per ``(strategy, "sqlite")`` through a
    :class:`~repro.resilience.CircuitBreaker`: transient SQLite failures
    get one quick retry, repeated failures trip the breaker and
    ``"auto"`` resolves straight to the interpreter until the cool-down
    (plus a successful half-open probe) closes it again.  An explicit
    ``backend="sqlite"`` bypasses the breaker's gate — a demand is a
    demand — but still records its outcome.  Capability misses
    (:class:`SQLiteUnsupportedError`) and blown deadlines say nothing
    about backend health and are never recorded as failures.
    """
    validate_backend(backend)
    plans = list(plans)
    options = dict(bag=bag, condition_mode=condition_mode, optimize=optimize, stats=stats)

    def on_interpreter(
        reason: str, retries: int = 0, *, kind: str = "requested"
    ) -> PlanExecution:
        # ``kind`` is the low-cardinality category of ``reason`` (which
        # can embed plan details), so the metrics keys stay bounded.
        obs_metrics.incr(
            "exec.resolutions",
            requested=backend,
            resolved="interpreter",
            reason=kind,
        )
        with span("execute.interpreter", plans=len(plans)):
            relations = InterpreterBackend().run(plans, database, **options)
        return PlanExecution(tuple(relations), backend, "interpreter", reason, retries)

    if backend == "interpreter":
        return on_interpreter("interpreter requested")
    static_reason = next(
        (r for r in (sqlite_uncompilable_reason(p) for p in plans) if r is not None),
        None,
    )
    if static_reason is not None:
        if backend == "sqlite":
            raise EngineError(
                f"backend='sqlite' cannot execute this plan: {static_reason}; "
                "use backend='auto' or backend='interpreter'"
            )
        return on_interpreter(static_reason, kind="not-expressible")
    breaker = breaker_for(strategy or "*", "sqlite")
    if backend == "auto" and not breaker.allow():
        return on_interpreter(
            "sqlite circuit breaker is open (cooling down after repeated failures)",
            kind="breaker-open",
        )
    retries = 0

    def count_retry(attempt: int, exc: BaseException) -> None:
        nonlocal retries
        retries = attempt

    try:
        with span("execute.sqlite", plans=len(plans)) as pushdown:
            relations, _ = _SQLITE_RETRY.call(
                lambda: SQLiteBackend().run(plans, database, **options),
                deadline=active_deadline(),
                on_retry=count_retry,
            )
            pushdown.incr("sql_statements", len(plans))
    except SQLiteUnsupportedError as exc:
        breaker.release_probe()
        if backend == "sqlite":
            raise EngineError(
                f"backend='sqlite' cannot execute this plan: {exc}; "
                "use backend='auto' or backend='interpreter'"
            ) from exc
        return on_interpreter(str(exc), retries, kind="capability-miss")
    except DeadlineExceeded:
        breaker.release_probe()
        raise
    except Exception as exc:
        breaker.record_failure()
        if backend == "sqlite":
            raise
        return on_interpreter(
            f"sqlite execution failed ({type(exc).__name__}: {exc})",
            retries,
            kind="execution-failed",
        )
    breaker.record_success()
    if retries:
        obs_metrics.incr("exec.sqlite_retries", retries)
    obs_metrics.incr("exec.resolutions", requested=backend, resolved="sqlite")
    return PlanExecution(
        tuple(relations),
        backend,
        "sqlite",
        "plan compiled to a single SQLite statement",
        retries,
    )
