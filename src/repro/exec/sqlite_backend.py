"""SQLite pushdown backend: compile algebra plans to a single SQL statement.

Marked nulls have a faithful relational encoding: every attribute becomes
a *pair* of SQLite columns ``(c{i}v, c{i}n)`` — the value column holds the
constant (SQL ``NULL`` when the cell is a marked null) and the marker
column holds a type-tagged rendering of the null's label (SQL ``NULL``
when the cell is a constant).  Under this encoding

* raw tuple identity (what semijoins, natural-join buckets and the
  compound set operators use) is exactly SQLite's null-safe ``IS`` /
  compound-``SELECT`` equality over the column pairs;
* naive-mode condition evaluation (a null is a value, equal only to
  itself; order comparisons involving a null are false; Python
  ``TypeError`` → false) compiles to two-valued expressions that never
  yield SQL ``NULL``;
* 3VL-mode condition evaluation (any comparison touching a null is
  *unknown*) compiles to expressions whose SQL ``NULL`` *is* Kleene
  unknown, so ``NOT``/``AND``/``OR`` compose by SQLite's own
  three-valued logic and ``WHERE`` keeps exactly the Kleene-true rows.

Bag semantics adds one multiplicity column ``m`` and replaces the
compound set operators with multiplicity arithmetic (union sums via
``UNION ALL``, difference subtracts down to zero via ``GROUP BY …
HAVING``, intersection takes the pairwise minimum of grouped counts).
Set semantics keeps every emitted subquery duplicate-free — base tables
store one row per distinct tuple, projection adds ``DISTINCT``, and
``UNION``/``EXCEPT``/``INTERSECT`` are the native compounds — which
matches the interpreter's collapse-after-every-operator contract.

Anything the compiler cannot express faithfully — ``Dom^k`` enumeration,
division, unification anti-semijoins, nullary (Boolean) subplans, values
with no SQLite encoding — raises :class:`SQLiteUnsupportedError`, the
signal :func:`repro.exec.execute_plans` uses to fall back to the
interpreter under ``backend="auto"``.
"""

from __future__ import annotations

import math
import sqlite3
from collections import Counter
from typing import Any, Sequence

from ..algebra import ast
from ..algebra import conditions as cond
from ..datamodel.database import Database
from ..datamodel.relation import Relation
from ..datamodel.values import Null, is_null
from ..resilience import active_deadline, fault_point

__all__ = [
    "SQLiteBackend",
    "SQLiteUnsupportedError",
    "sqlite_uncompilable_reason",
    "SQLITE_PLAN_OPS",
]


class SQLiteUnsupportedError(Exception):
    """The plan (or its data) has no faithful SQLite compilation."""


#: Plan operators the compiler can express.  Everything else —
#: ``DomainRelation`` (active-domain powers), ``Division``,
#: ``UnifAntiSemiJoin`` (unification is not a per-column predicate),
#: ``ConstrainedDomainRelation`` — falls back to the interpreter.
SQLITE_PLAN_OPS = frozenset(
    {
        ast.RelationRef,
        ast.ConstantRelation,
        ast.Selection,
        ast.Projection,
        ast.Rename,
        ast.Product,
        ast.Union,
        ast.Difference,
        ast.Intersection,
        ast.NaturalJoin,
        ast.SemiJoin,
        ast.AntiSemiJoin,
        ast.EquiJoin,
    }
)


def sqlite_uncompilable_reason(plan: ast.Query) -> str | None:
    """Why ``plan`` cannot be compiled to SQL, or ``None`` if it can.

    This is the *static* check (plan shape only); data-dependent
    obstacles — values with no SQLite encoding — surface later as
    :class:`SQLiteUnsupportedError` during encoding.
    """
    for node in ast.walk(plan):
        if type(node) not in SQLITE_PLAN_OPS:
            return (
                f"plan contains {type(node).__name__}, which the SQL "
                "compiler cannot express"
            )
    return None


# ----------------------------------------------------------------------
# Value encoding
# ----------------------------------------------------------------------

def _encode_marker(label: Any) -> str:
    """Type-tagged text for a null's label, injective up to label equality.

    ``Null`` equality is label equality under Python ``==``, so labels
    that compare equal across numeric types (``1``, ``1.0``, ``True``)
    must encode identically — they all canonicalise to ``"n:1"``.
    """
    if isinstance(label, bool):
        label = int(label)
    if isinstance(label, float) and not math.isnan(label) and label.is_integer():
        label = int(label)
    if isinstance(label, int):
        return f"n:{label}"
    if isinstance(label, float):
        if math.isnan(label):
            raise SQLiteUnsupportedError("null marker label NaN has no SQLite encoding")
        return f"n:{label!r}"
    if isinstance(label, str):
        return f"s:{label}"
    raise SQLiteUnsupportedError(
        f"null marker label of type {type(label).__name__} has no SQLite encoding"
    )


def _decode_marker(text: str) -> Any:
    if text.startswith("n:"):
        body = text[2:]
        try:
            return int(body)
        except ValueError:
            return float(body)
    return text[2:]


def _encode_value(value: Any) -> tuple[Any, str | None]:
    """Encode one cell as a ``(value_column, marker_column)`` pair."""
    if is_null(value):
        return None, _encode_marker(value.label)
    if isinstance(value, bool):
        # SQLite stores booleans as integers; Python agrees that
        # True == 1, so join keys and Counter identity are preserved.
        return int(value), None
    if isinstance(value, int):
        if -(2**63) <= value < 2**63:
            return value, None
        raise SQLiteUnsupportedError(
            "integer constant outside SQLite's 64-bit range"
        )
    if isinstance(value, float):
        if math.isnan(value):
            raise SQLiteUnsupportedError(
                "NaN constant has no SQLite encoding (SQLite stores NaN as NULL)"
            )
        return value, None
    if isinstance(value, (str, bytes)):
        return value, None
    raise SQLiteUnsupportedError(
        f"constant of type {type(value).__name__} has no SQLite encoding"
    )


def _decode_row(fetched: Sequence[Any], arity: int) -> tuple:
    values = []
    for i in range(arity):
        marker = fetched[2 * i + 1]
        values.append(
            Null(_decode_marker(marker)) if marker is not None else fetched[2 * i]
        )
    return tuple(values)


# ----------------------------------------------------------------------
# Plan compiler
# ----------------------------------------------------------------------

def _collist(arity: int, alias: str | None = None) -> str:
    prefix = f"{alias}." if alias else ""
    return ", ".join(f"{prefix}c{i}v, {prefix}c{i}n" for i in range(arity))


#: ``typeof()`` guard mirroring Python's comparability classes: numbers
#: order against numbers (bool is int), text against text, blobs against
#: blobs; every cross-class order comparison is a Python ``TypeError``,
#: which the interpreter maps to false.
def _order_guard(av: str, bv: str) -> str:
    return (
        f"((typeof({av}) IN ('integer', 'real') AND typeof({bv}) IN ('integer', 'real'))"
        f" OR (typeof({av}) = 'text' AND typeof({bv}) = 'text')"
        f" OR (typeof({av}) = 'blob' AND typeof({bv}) = 'blob'))"
    )


_ORDER_OPS: dict[type, str] = {cond.Lt: "<", cond.Le: "<=", cond.Gt: ">", cond.Ge: ">="}


class _PlanCompiler:
    """Compiles plan trees to SELECT statements over one connection.

    Base relations and constant relations are materialised as tables on
    first use (constants are keyed structurally, so the shared subtrees
    of a translated (Q+, Q?) pair encode once); each :meth:`compile`
    call produces one self-contained statement with its own named
    parameters.
    """

    def __init__(self, connection: sqlite3.Connection, database: Database, *, bag: bool, condition_mode: str):
        self._con = connection
        self._database = database
        self._bag = bag
        self._mode = condition_mode
        self._tables: dict[Any, tuple[str, int]] = {}
        self._aliases = 0
        self._params: dict[str, Any] = {}

    # -- plumbing ------------------------------------------------------
    def _alias(self) -> str:
        self._aliases += 1
        return f"a{self._aliases}"

    def _param(self, value: Any) -> str:
        key = f"p{len(self._params)}"
        self._params[key] = value
        return f":{key}"

    def _table_for(self, key: Any, relation: Relation) -> str:
        cached = self._tables.get(key)
        if cached is not None:
            return cached[0]
        arity = relation.arity
        if arity == 0:
            raise SQLiteUnsupportedError(
                "nullary (zero-column) relations have no SQLite encoding"
            )
        name = f"t{len(self._tables)}"
        self._con.execute(f"CREATE TABLE {name} ({_collist(arity)}, m)")
        rows = []
        for row, count in relation.iter_rows(with_multiplicity=True):
            encoded: list[Any] = []
            for value in row:
                value_col, marker_col = _encode_value(value)
                encoded.append(value_col)
                encoded.append(marker_col)
            encoded.append(count)
            rows.append(encoded)
        placeholders = ", ".join("?" for _ in range(2 * arity + 1))
        try:
            self._con.executemany(f"INSERT INTO {name} VALUES ({placeholders})", rows)
        except (OverflowError, UnicodeError, sqlite3.Error) as exc:
            raise SQLiteUnsupportedError(f"value not storable in SQLite: {exc}") from exc
        self._tables[key] = (name, arity)
        return name

    # -- entry point ---------------------------------------------------
    def compile(self, plan: ast.Query) -> tuple[str, dict[str, Any], list[str]]:
        """Compile ``plan``; returns ``(sql, params, attributes)``."""
        self._params = {}
        sql, attrs = self._compile(plan)
        return sql, dict(self._params), attrs

    def _compile(self, node: ast.Query) -> tuple[str, list[str]]:
        method = getattr(self, f"_compile_{type(node).__name__}", None)
        if method is None:
            raise SQLiteUnsupportedError(
                f"plan contains {type(node).__name__}, which the SQL "
                "compiler cannot express"
            )
        sql, attrs = method(node)
        if not attrs:
            raise SQLiteUnsupportedError(
                "nullary (Boolean) subplans have no SQLite encoding"
            )
        return sql, attrs

    # -- leaves --------------------------------------------------------
    def _base_select(self, table: str, arity: int) -> str:
        if self._bag:
            return f"SELECT {_collist(arity)}, m FROM {table}"
        # Tables hold one physical row per distinct tuple, so dropping
        # the multiplicity column *is* the set-semantics view.
        return f"SELECT {_collist(arity)} FROM {table}"

    def _compile_RelationRef(self, node: ast.RelationRef) -> tuple[str, list[str]]:
        relation = self._database.get(node.name)
        if relation is None:
            raise KeyError(f"relation {node.name!r} not present in the database")
        table = self._table_for(("rel", node.name), relation)
        return self._base_select(table, relation.arity), list(relation.attributes)

    def _compile_ConstantRelation(self, node: ast.ConstantRelation) -> tuple[str, list[str]]:
        # Building the Relation applies exactly the interpreter's arity
        # and duplicate-attribute validation before anything is encoded.
        relation = Relation(node.attributes, node.rows)
        table = self._table_for(("const", node), relation)
        return self._base_select(table, relation.arity), list(relation.attributes)

    # -- unary operators -----------------------------------------------
    def _compile_Selection(self, node: ast.Selection) -> tuple[str, list[str]]:
        child_sql, attrs = self._compile(node.child)
        alias = self._alias()
        expr = self._condition(node.condition, attrs, alias)
        sql = f"SELECT {alias}.* FROM ({child_sql}) AS {alias} WHERE {expr}"
        return sql, attrs

    def _compile_Projection(self, node: ast.Projection) -> tuple[str, list[str]]:
        child_sql, attrs = self._compile(node.child)
        Relation.empty(node.attributes)  # same duplicate-name validation as the interpreter
        index = {a: i for i, a in enumerate(attrs)}
        positions = []
        for attribute in node.attributes:
            if attribute not in index:
                raise KeyError(f"attribute {attribute!r} not in {tuple(attrs)}")
            positions.append(index[attribute])
        alias = self._alias()
        select = ", ".join(
            f"{alias}.c{p}v AS c{j}v, {alias}.c{p}n AS c{j}n"
            for j, p in enumerate(positions)
        )
        if self._bag:
            sql = f"SELECT {select}, {alias}.m AS m FROM ({child_sql}) AS {alias}"
        else:
            sql = f"SELECT DISTINCT {select} FROM ({child_sql}) AS {alias}"
        return sql, list(node.attributes)

    def _compile_Rename(self, node: ast.Rename) -> tuple[str, list[str]]:
        child_sql, attrs = self._compile(node.child)
        mapping = node.mapping_dict()
        renamed = [mapping.get(a, a) for a in attrs]
        Relation.empty(renamed)  # same duplicate-name validation as the interpreter
        return child_sql, renamed

    # -- products and joins --------------------------------------------
    def _join_select(
        self, left_alias: str, left_arity: int, right_alias: str, right_positions: Sequence[int]
    ) -> str:
        parts = [_collist(left_arity, left_alias)]
        for j, p in enumerate(right_positions):
            out = left_arity + j
            parts.append(
                f"{right_alias}.c{p}v AS c{out}v, {right_alias}.c{p}n AS c{out}n"
            )
        return ", ".join(parts)

    def _compile_Product(self, node: ast.Product) -> tuple[str, list[str]]:
        left_sql, left_attrs = self._compile(node.left)
        right_sql, right_attrs = self._compile(node.right)
        overlap = set(left_attrs) & set(right_attrs)
        if overlap:
            raise ValueError(
                f"product with overlapping attributes {sorted(overlap)}; rename first"
            )
        la, rb = self._alias(), self._alias()
        select = self._join_select(la, len(left_attrs), rb, range(len(right_attrs)))
        if self._bag:
            select += f", {la}.m * {rb}.m AS m"
        # A comma join (not CROSS JOIN, which pins SQLite's join order).
        sql = f"SELECT {select} FROM ({left_sql}) AS {la}, ({right_sql}) AS {rb}"
        return sql, left_attrs + right_attrs

    def _compile_EquiJoin(self, node: ast.EquiJoin) -> tuple[str, list[str]]:
        left_sql, left_attrs = self._compile(node.left)
        right_sql, right_attrs = self._compile(node.right)
        overlap = set(left_attrs) & set(right_attrs)
        if overlap:
            raise ValueError(
                f"equi-join with overlapping attributes {sorted(overlap)}; rename first"
            )
        left_index = {a: i for i, a in enumerate(left_attrs)}
        right_index = {a: i for i, a in enumerate(right_attrs)}
        la, rb = self._alias(), self._alias()
        clauses = []
        for left_attr, right_attr in node.pairs:
            if left_attr not in left_index:
                raise KeyError(f"attribute {left_attr!r} not in {tuple(left_attrs)}")
            if right_attr not in right_index:
                raise KeyError(f"attribute {right_attr!r} not in {tuple(right_attrs)}")
            li, ri = left_index[left_attr], right_index[right_attr]
            if self._mode == "3vl":
                # Any null key makes the comparison unknown, so the row
                # drops — plain SQL equality on the value columns does
                # exactly that (a null cell's value column is NULL).
                clauses.append(f"{la}.c{li}v = {rb}.c{ri}v")
            else:
                # Naive mode: a null is a value, equal only to itself —
                # constants match by value, nulls by marker.  Null-safe IS
                # over the (value, marker) pair says exactly that (a null
                # cell stores NULL in the value column and vice versa), and
                # unlike the equivalent OR-of-conjunctions it is a form the
                # query planner can satisfy with an automatic index instead
                # of a nested-loop scan.
                clauses.append(
                    f"{la}.c{li}v IS {rb}.c{ri}v AND {la}.c{li}n IS {rb}.c{ri}n"
                )
        on = " AND ".join(clauses) if clauses else "1"
        select = self._join_select(la, len(left_attrs), rb, range(len(right_attrs)))
        if self._bag:
            select += f", {la}.m * {rb}.m AS m"
        sql = f"SELECT {select} FROM ({left_sql}) AS {la} JOIN ({right_sql}) AS {rb} ON {on}"
        return sql, left_attrs + right_attrs

    def _compile_NaturalJoin(self, node: ast.NaturalJoin) -> tuple[str, list[str]]:
        left_sql, left_attrs = self._compile(node.left)
        right_sql, right_attrs = self._compile(node.right)
        right_index = {a: i for i, a in enumerate(right_attrs)}
        shared = [a for a in left_attrs if a in right_index]
        extra_positions = [i for i, a in enumerate(right_attrs) if a not in set(left_attrs)]
        la, rb = self._alias(), self._alias()
        # Bucket matching in the interpreter is raw tuple identity on the
        # shared columns — null-safe IS over the (value, marker) pairs.
        clauses = [
            f"{la}.c{left_attrs.index(a)}v IS {rb}.c{right_index[a]}v"
            f" AND {la}.c{left_attrs.index(a)}n IS {rb}.c{right_index[a]}n"
            for a in shared
        ]
        on = " AND ".join(clauses) if clauses else "1"
        select = self._join_select(la, len(left_attrs), rb, extra_positions)
        if self._bag:
            select += f", {la}.m * {rb}.m AS m"
        sql = f"SELECT {select} FROM ({left_sql}) AS {la} JOIN ({right_sql}) AS {rb} ON {on}"
        return sql, left_attrs + [right_attrs[p] for p in extra_positions]

    def _compile_semijoin(self, node, *, anti: bool) -> tuple[str, list[str]]:
        left_sql, left_attrs = self._compile(node.left)
        right_sql, right_attrs = self._compile(node.right)
        right_index = {a: i for i, a in enumerate(right_attrs)}
        la, rb = self._alias(), self._alias()
        clauses = [
            f"{la}.c{i}v IS {rb}.c{right_index[a]}v"
            f" AND {la}.c{i}n IS {rb}.c{right_index[a]}n"
            for i, a in enumerate(left_attrs)
            if a in right_index
        ]
        probe = f"SELECT 1 FROM ({right_sql}) AS {rb}"
        if clauses:
            probe += " WHERE " + " AND ".join(clauses)
        keyword = "NOT EXISTS" if anti else "EXISTS"
        sql = f"SELECT {la}.* FROM ({left_sql}) AS {la} WHERE {keyword} ({probe})"
        return sql, left_attrs

    def _compile_SemiJoin(self, node: ast.SemiJoin) -> tuple[str, list[str]]:
        return self._compile_semijoin(node, anti=False)

    def _compile_AntiSemiJoin(self, node: ast.AntiSemiJoin) -> tuple[str, list[str]]:
        return self._compile_semijoin(node, anti=True)

    # -- set operators --------------------------------------------------
    def _check_arity(self, left_attrs, right_attrs, operator: str) -> None:
        if len(left_attrs) != len(right_attrs):
            raise ValueError(
                f"{operator} requires equal arities, "
                f"got {len(left_attrs)} and {len(right_attrs)}"
            )

    def _operand(self, sql: str, arity: int, *, multiplier: str = "") -> str:
        alias = self._alias()
        select = _collist(arity, alias)
        if self._bag:
            select += f", {multiplier}{alias}.m AS m"
        return f"SELECT {select} FROM ({sql}) AS {alias}"

    def _compile_Union(self, node: ast.Union) -> tuple[str, list[str]]:
        left_sql, left_attrs = self._compile(node.left)
        right_sql, right_attrs = self._compile(node.right)
        self._check_arity(left_attrs, right_attrs, "union")
        arity = len(left_attrs)
        compound = "UNION ALL" if self._bag else "UNION"
        sql = (
            f"{self._operand(left_sql, arity)} {compound} "
            f"{self._operand(right_sql, arity)}"
        )
        return sql, left_attrs

    def _compile_Difference(self, node: ast.Difference) -> tuple[str, list[str]]:
        left_sql, left_attrs = self._compile(node.left)
        right_sql, right_attrs = self._compile(node.right)
        self._check_arity(left_attrs, right_attrs, "difference")
        arity = len(left_attrs)
        if not self._bag:
            sql = (
                f"{self._operand(left_sql, arity)} EXCEPT "
                f"{self._operand(right_sql, arity)}"
            )
            return sql, left_attrs
        # Bag difference subtracts multiplicities down to zero: sum the
        # left counts positively and the right counts negatively, keep
        # the rows whose balance stays positive.
        signed = (
            f"{self._operand(left_sql, arity)} UNION ALL "
            f"{self._operand(right_sql, arity, multiplier='-')}"
        )
        alias = self._alias()
        group = _collist(arity, alias)
        sql = (
            f"SELECT {group}, SUM({alias}.m) AS m FROM ({signed}) AS {alias} "
            f"GROUP BY {group} HAVING SUM({alias}.m) > 0"
        )
        return sql, left_attrs

    def _compile_Intersection(self, node: ast.Intersection) -> tuple[str, list[str]]:
        left_sql, left_attrs = self._compile(node.left)
        right_sql, right_attrs = self._compile(node.right)
        self._check_arity(left_attrs, right_attrs, "intersection")
        arity = len(left_attrs)
        if not self._bag:
            sql = (
                f"{self._operand(left_sql, arity)} INTERSECT "
                f"{self._operand(right_sql, arity)}"
            )
            return sql, left_attrs
        # Bag intersection is the pairwise minimum of the two grouped
        # multiplicities, joined on raw tuple identity.

        def grouped(sql_: str) -> str:
            alias = self._alias()
            group = _collist(arity, alias)
            return (
                f"SELECT {group}, SUM({alias}.m) AS m "
                f"FROM ({sql_}) AS {alias} GROUP BY {group}"
            )

        la, rb = self._alias(), self._alias()
        on = " AND ".join(
            f"{la}.c{i}v IS {rb}.c{i}v AND {la}.c{i}n IS {rb}.c{i}n"
            for i in range(arity)
        )
        sql = (
            f"SELECT {_collist(arity, la)}, MIN({la}.m, {rb}.m) AS m "
            f"FROM ({grouped(left_sql)}) AS {la} "
            f"JOIN ({grouped(right_sql)}) AS {rb} ON {on}"
        )
        return sql, left_attrs

    # -- conditions ------------------------------------------------------
    def _term(self, term: cond.Term, attrs: Sequence[str], alias: str) -> tuple[str, str]:
        """Compile a term to its ``(value_expr, marker_expr)`` pair."""
        if isinstance(term, cond.Attr):
            index = {a: i for i, a in enumerate(attrs)}
            if term.name not in index:
                raise KeyError(
                    f"attribute {term.name!r} not available in {list(attrs)}"
                )
            i = index[term.name]
            return f"{alias}.c{i}v", f"{alias}.c{i}n"
        if isinstance(term, cond.Literal):
            value_col, marker_col = _encode_value(term.value)
            return self._param(value_col), self._param(marker_col)
        raise SQLiteUnsupportedError(
            f"condition term {type(term).__name__} has no SQL compilation"
        )

    def _condition(self, condition: cond.Condition, attrs: Sequence[str], alias: str) -> str:
        naive = self._mode != "3vl"
        if isinstance(condition, cond.TrueCondition):
            return "1"
        if isinstance(condition, cond.FalseCondition):
            return "0"
        if isinstance(condition, cond.And):
            left = self._condition(condition.left, attrs, alias)
            right = self._condition(condition.right, attrs, alias)
            return f"({left} AND {right})"
        if isinstance(condition, cond.Or):
            left = self._condition(condition.left, attrs, alias)
            right = self._condition(condition.right, attrs, alias)
            return f"({left} OR {right})"
        if isinstance(condition, cond.Not):
            return f"(NOT {self._condition(condition.operand, attrs, alias)})"
        if isinstance(condition, cond.IsConst):
            _, marker = self._term(condition.term, attrs, alias)
            return f"({marker} IS NULL)"
        if isinstance(condition, cond.IsNull):
            _, marker = self._term(condition.term, attrs, alias)
            return f"({marker} IS NOT NULL)"
        if isinstance(condition, cond.Comparison):
            return self._comparison(condition, attrs, alias)
        raise SQLiteUnsupportedError(
            f"condition {type(condition).__name__} has no SQL compilation"
        )

    def _comparison(self, condition: cond.Comparison, attrs: Sequence[str], alias: str) -> str:
        av, an = self._term(condition.left, attrs, alias)
        bv, bn = self._term(condition.right, attrs, alias)
        naive = self._mode != "3vl"
        if isinstance(condition, (cond.Eq, cond.Neq)):
            if naive:
                # Constants compare by value (storage classes already
                # mirror Python's cross-type rules), nulls by marker; a
                # null never equals a constant.  Exactly one of the value
                # and marker columns is non-NULL, so the null-safe IS pair
                # covers all three cases, stays two-valued, and — unlike an
                # OR-of-guarded-conjunctions — is a form the query planner
                # can drive with an automatic index when this lands in the
                # WHERE clause of a comma join.
                eq = f"({av} IS {bv} AND {an} IS {bn})"
            else:
                # 3VL: a null cell's value column is NULL, so SQL's own
                # three-valued =/<> is exactly Kleene unknown.
                eq = f"({av} = {bv})"
            if isinstance(condition, cond.Eq):
                return eq
            if naive:
                return f"(NOT {eq})"
            return f"({av} <> {bv})"
        op = _ORDER_OPS.get(type(condition))
        if op is None:
            raise SQLiteUnsupportedError(
                f"comparison {type(condition).__name__} has no SQL compilation"
            )
        guard = _order_guard(av, bv)
        if naive:
            # Order comparisons with a null, and Python TypeErrors from
            # cross-class comparisons, are simply false.
            return (
                f"({an} IS NULL AND {bn} IS NULL AND {guard} AND {av} {op} {bv})"
            )
        return (
            f"(CASE WHEN {an} IS NOT NULL OR {bn} IS NOT NULL THEN NULL"
            f" WHEN {guard} THEN {av} {op} {bv} ELSE 0 END)"
        )


# ----------------------------------------------------------------------
# Backend
# ----------------------------------------------------------------------

class SQLiteBackend:
    """Execute algebra plans by pushing them into in-memory SQLite.

    Each :meth:`run` call encodes the database once into a fresh
    in-memory connection (so the backend is trivially thread- and
    process-safe) and compiles every plan to a single SELECT statement.
    Plans are optimized with the same :func:`optimize_plan` invocation
    the interpreter uses, so both backends execute the *same* plan tree.
    """

    name = "sqlite"

    def run(
        self,
        plans: Sequence[ast.Query],
        database: Database,
        *,
        bag: bool = False,
        condition_mode: str = "naive",
        optimize: bool = False,
        stats: bool = False,
    ) -> list[Relation]:
        prepared = []
        schema = database.schema()
        for plan in plans:
            if optimize:
                from ..algebra.optimize import optimize_plan

                stats_provider = None
                if stats:
                    from ..algebra.stats import Stats

                    stats_provider = Stats(database)
                plan = optimize_plan(
                    plan,
                    schema,
                    condition_mode=condition_mode,
                    bag=bag,
                    stats=stats_provider,
                )
            reason = sqlite_uncompilable_reason(plan)
            if reason is not None:
                raise SQLiteUnsupportedError(reason)
            prepared.append(plan)
        fault_point("sqlite.run", plans=len(prepared))
        connection = sqlite3.connect(":memory:")
        deadline = active_deadline()
        if deadline is not None:
            # Abort long-running statements from inside SQLite: the
            # progress handler fires every N virtual-machine ops and a
            # non-zero return interrupts the statement (surfacing as an
            # OperationalError, translated below).
            connection.set_progress_handler(
                lambda: 1 if deadline.expired else 0, 4096
            )
        try:
            compiler = _PlanCompiler(
                connection, database, bag=bag, condition_mode=condition_mode
            )
            results = []
            for plan in prepared:
                sql, params, attrs = compiler.compile(plan)
                try:
                    fetched = connection.execute(sql, params).fetchall()
                except sqlite3.OperationalError:
                    if deadline is not None and deadline.expired:
                        deadline.check("sqlite statement")  # raises DeadlineExceeded
                    raise
                results.append(self._decode(attrs, fetched, bag))
            return results
        finally:
            connection.close()

    @staticmethod
    def _decode(attrs: Sequence[str], fetched: Sequence[Sequence[Any]], bag: bool) -> Relation:
        arity = len(attrs)
        counter: Counter = Counter()
        for row in fetched:
            counter[_decode_row(row, arity)] += row[-1] if bag else 1
        return Relation.from_counter(attrs, counter)
