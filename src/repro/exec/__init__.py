"""Pluggable execution backends (``repro.exec``).

Strategies hand optimized algebra plans to an
:class:`~repro.exec.backends.ExecutionBackend` instead of walking them
tuple-at-a-time themselves.  See :mod:`repro.exec.backends` for the
protocol and the ``backend="auto"`` resolution rules, and
:mod:`repro.exec.sqlite_backend` for the marker-column SQL compilation.
"""

from .backends import (
    BACKEND_NAMES,
    ExecutionBackend,
    InterpreterBackend,
    PlanExecution,
    execute_plans,
    interpreter_note,
    validate_backend,
)
from .sqlite_backend import (
    SQLITE_PLAN_OPS,
    SQLiteBackend,
    SQLiteUnsupportedError,
    sqlite_uncompilable_reason,
)

__all__ = [
    "BACKEND_NAMES",
    "ExecutionBackend",
    "InterpreterBackend",
    "PlanExecution",
    "SQLITE_PLAN_OPS",
    "SQLiteBackend",
    "SQLiteUnsupportedError",
    "execute_plans",
    "interpreter_note",
    "sqlite_uncompilable_reason",
    "validate_backend",
]
