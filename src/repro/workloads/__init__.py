"""Workloads: the Figure 1 example, a synthetic generator and TPC-H-lite."""

from .figure1 import (
    CUSTOMERS_WITHOUT_PAID_ORDER_SQL,
    Figure1Case,
    PAYMENT_NULL,
    TAUTOLOGY_SQL,
    UNPAID_ORDERS_SQL,
    customers_without_paid_order_algebra,
    figure1_cases,
    figure1_database,
    figure1_database_with_null,
    tautology_algebra,
    unpaid_orders_algebra,
)
from .generator import GeneratorConfig, RelationSpec, generate_database, inject_nulls
from .tpch_lite import TpchLiteConfig, generate_tpch_lite, tpch_lite_queries

__all__ = [
    "figure1_database",
    "figure1_database_with_null",
    "PAYMENT_NULL",
    "UNPAID_ORDERS_SQL",
    "CUSTOMERS_WITHOUT_PAID_ORDER_SQL",
    "TAUTOLOGY_SQL",
    "unpaid_orders_algebra",
    "customers_without_paid_order_algebra",
    "tautology_algebra",
    "Figure1Case",
    "figure1_cases",
    "GeneratorConfig",
    "RelationSpec",
    "generate_database",
    "inject_nulls",
    "TpchLiteConfig",
    "generate_tpch_lite",
    "tpch_lite_queries",
]
