"""Synthetic incomplete databases with controllable null rates.

The precision/recall experiment (E6, mirroring the SIGMOD'19 study [27])
and the scalability experiments need families of databases whose size
and amount of incompleteness can be dialled.  The generator here is
deterministic given a seed, produces relations over small value
domains (so joins and differences are selective enough to be
interesting), and can inject either Codd-style nulls (each occurrence is
a fresh marked null) or repeated marked nulls.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from ..datamodel.database import Database
from ..datamodel.relation import Relation
from ..datamodel.values import NullFactory

__all__ = ["GeneratorConfig", "RelationSpec", "generate_database", "inject_nulls"]


@dataclass(frozen=True)
class RelationSpec:
    """Shape of one generated relation."""

    name: str
    attributes: tuple[str, ...]
    rows: int

    def __init__(self, name: str, attributes: Sequence[str], rows: int):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "attributes", tuple(attributes))
        object.__setattr__(self, "rows", rows)


@dataclass(frozen=True)
class GeneratorConfig:
    """Parameters of the synthetic database generator."""

    relations: tuple[RelationSpec, ...]
    domain_size: int = 50
    null_rate: float = 0.0
    repeated_nulls: bool = False
    seed: int = 0

    def __init__(
        self,
        relations: Sequence[RelationSpec],
        domain_size: int = 50,
        null_rate: float = 0.0,
        repeated_nulls: bool = False,
        seed: int = 0,
    ):
        if not 0.0 <= null_rate <= 1.0:
            raise ValueError("null_rate must be between 0 and 1")
        object.__setattr__(self, "relations", tuple(relations))
        object.__setattr__(self, "domain_size", domain_size)
        object.__setattr__(self, "null_rate", null_rate)
        object.__setattr__(self, "repeated_nulls", repeated_nulls)
        object.__setattr__(self, "seed", seed)


def generate_database(config: GeneratorConfig) -> Database:
    """Generate a complete database and then inject nulls at the configured rate."""
    rng = random.Random(config.seed)
    relations = {}
    for spec in config.relations:
        rows = [
            tuple(f"v{rng.randrange(config.domain_size)}" for _ in spec.attributes)
            for _ in range(spec.rows)
        ]
        relations[spec.name] = Relation(spec.attributes, rows)
    database = Database(relations)
    if config.null_rate > 0:
        database = inject_nulls(
            database,
            null_rate=config.null_rate,
            repeated=config.repeated_nulls,
            seed=config.seed + 1,
        )
    return database


def inject_nulls(
    database: Database,
    *,
    null_rate: float,
    repeated: bool = False,
    seed: int = 0,
    protected_relations: Sequence[str] = (),
) -> Database:
    """Replace a fraction of the values of a database by marked nulls.

    With ``repeated=False`` (the default) each replaced occurrence gets a
    fresh null (Codd nulls, the SQL reading); with ``repeated=True`` a
    small pool of nulls is reused so the same unknown value can occur in
    several places (genuine marked nulls).
    ``protected_relations`` are copied through untouched.
    """
    if not 0.0 <= null_rate <= 1.0:
        raise ValueError("null_rate must be between 0 and 1")
    rng = random.Random(seed)
    factory = NullFactory(prefix="g")
    pool = factory.fresh_many(8) if repeated else []
    relations = {}
    for name, relation in database.relations():
        if name in protected_relations:
            relations[name] = relation
            continue
        rows = []
        for row in relation.iter_rows_bag():
            new_row = []
            for value in row:
                if rng.random() < null_rate:
                    new_row.append(rng.choice(pool) if repeated else factory.fresh())
                else:
                    new_row.append(value)
            rows.append(tuple(new_row))
        relations[name] = Relation(relation.attributes, rows)
    return Database(relations)
