"""The paper's Figure 1 database of orders, payments and customers.

Two variants are provided: the complete database of Figure 1, and the
variant used throughout the introduction where the ``oid`` of the second
Payments tuple is replaced by a null.  The three SQL queries discussed
in Section 1 (unpaid orders, customers without a paid order, and the
``oid = 'o2' OR oid <> 'o2'`` tautology-like query) are included as
SQL text and as relational algebra, so every part of the pipeline can be
run on the same motivating example.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..algebra import ast as ra
from ..algebra import builder as rb
from ..algebra.conditions import Attr, Eq, Literal, Neq, Or
from ..datamodel.database import Database
from ..datamodel.relation import Relation
from ..datamodel.values import Null

__all__ = [
    "figure1_database",
    "figure1_database_with_null",
    "PAYMENT_NULL",
    "UNPAID_ORDERS_SQL",
    "CUSTOMERS_WITHOUT_PAID_ORDER_SQL",
    "TAUTOLOGY_SQL",
    "unpaid_orders_algebra",
    "customers_without_paid_order_algebra",
    "tautology_algebra",
    "Figure1Case",
    "figure1_cases",
]

#: The marked null that replaces the 'o2' payment in the incomplete variant.
PAYMENT_NULL = Null("pay_o2")

UNPAID_ORDERS_SQL = (
    "SELECT oid FROM Orders WHERE oid NOT IN ( SELECT oid FROM Payments )"
)

CUSTOMERS_WITHOUT_PAID_ORDER_SQL = (
    "SELECT C.cid FROM Customers C WHERE NOT EXISTS "
    "( SELECT * FROM Orders O, Payments P WHERE C.cid = P.cid AND P.oid = O.oid )"
)

TAUTOLOGY_SQL = "SELECT cid FROM Payments WHERE oid = 'o2' OR oid <> 'o2'"


def figure1_database() -> Database:
    """The complete database of Figure 1."""
    return Database.from_dict(
        {
            "Orders": (
                ("oid", "title", "price"),
                [("o1", "Big Data", 30), ("o2", "SQL", 35), ("o3", "Logic", 50)],
            ),
            "Payments": (("cid", "oid"), [("c1", "o1"), ("c2", "o2")]),
            "Customers": (("cid", "name"), [("c1", "John"), ("c2", "Mary")]),
        }
    )


def figure1_database_with_null() -> Database:
    """Figure 1 with the second payment's ``oid`` replaced by a null (Section 1)."""
    database = figure1_database()
    payments = Relation(("cid", "oid"), [("c1", "o1"), ("c2", PAYMENT_NULL)])
    return database.with_relation("Payments", payments)


def unpaid_orders_algebra() -> ra.Query:
    """The unpaid-orders query as relational algebra: π_oid(Orders) − π_oid(Payments)."""
    orders = rb.project(rb.relation("Orders"), ["oid"])
    paid = rb.project(rb.relation("Payments"), ["oid"])
    return rb.difference(orders, paid)


def customers_without_paid_order_algebra() -> ra.Query:
    """Customers with no paid order: π_cid(Customers) − π_cid(paid-join)."""
    customers = rb.project(rb.relation("Customers"), ["cid"])
    payments = rb.rename(rb.relation("Payments"), {"cid": "p_cid", "oid": "p_oid"})
    orders = rb.rename(rb.relation("Orders"), {"oid": "o_oid", "title": "o_title", "price": "o_price"})
    joined = rb.select(
        rb.product(payments, orders), Eq(Attr("p_oid"), Attr("o_oid"))
    )
    paid_customers = rb.rename(rb.project(joined, ["p_cid"]), {"p_cid": "cid"})
    return rb.difference(customers, paid_customers)


def tautology_algebra() -> ra.Query:
    """π_cid(σ_{oid='o2' ∨ oid≠'o2'}(Payments))."""
    condition = Or(Eq(Attr("oid"), Literal("o2")), Neq(Attr("oid"), Literal("o2")))
    return rb.project(rb.select(rb.relation("Payments"), condition), ["cid"])


@dataclass(frozen=True)
class Figure1Case:
    """One Section 1 query in both frontends the engine accepts."""

    name: str
    sql: str
    algebra: ra.Query


def figure1_cases() -> tuple[Figure1Case, ...]:
    """The three Section 1 queries, ready for ``Engine.evaluate``.

    The SQL form feeds the ``sql-3vl`` strategy (two of the queries use
    subqueries, outside the algebra-compilable fragment); the algebra
    form feeds every certainty-aware strategy.
    """
    return (
        Figure1Case("unpaid orders", UNPAID_ORDERS_SQL, unpaid_orders_algebra()),
        Figure1Case(
            "customers without a paid order",
            CUSTOMERS_WITHOUT_PAID_ORDER_SQL,
            customers_without_paid_order_algebra(),
        ),
        Figure1Case("oid = 'o2' OR oid <> 'o2'", TAUTOLOGY_SQL, tautology_algebra()),
    )
