"""A scaled-down TPC-H-shaped workload (substitute for the study in [37]).

The feasibility study surveyed in Section 4.2 ran rewritten queries on
the TPC Benchmark H in a commercial DBMS.  Offline and in pure Python we
substitute a *TPC-H-lite* workload: the same schema shape (customer,
orders, lineitem, supplier, part, nation, region), a deterministic
generator scaled by a row-count factor, null injection on the
foreign-key and attribute columns, and a set of decision-support-style
queries built from the core relational algebra operators so that they
can be pushed through the Figure 2 translations.

The queries are deliberately written in the negation-heavy style that
makes certain answers interesting (anti-joins expressed with difference,
as in "orders from customers in region X that have no lineitem from a
local supplier"), plus positive join/selection queries matching the
overhead experiment of [37].
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..algebra import ast as ra
from ..algebra import builder as rb
from ..algebra.conditions import And, Attr, Eq, Ge, Gt, Literal, Or
from ..datamodel.database import Database
from ..datamodel.relation import Relation
from .generator import inject_nulls

__all__ = ["TpchLiteConfig", "generate_tpch_lite", "tpch_lite_queries"]


@dataclass(frozen=True)
class TpchLiteConfig:
    """Scale parameters for the TPC-H-lite generator.

    The defaults are deliberately small: the pure-Python evaluator computes
    Cartesian products before selections, so the four-way join queries cost
    roughly ``customers × orders × lineitems × suppliers`` row combinations.
    Scale up explicitly for longer benchmark runs.
    """

    customers: int = 12
    orders: int = 25
    lineitems: int = 40
    suppliers: int = 5
    parts: int = 10
    nations: int = 5
    regions: int = 3
    null_rate: float = 0.0
    seed: int = 7


def generate_tpch_lite(config: TpchLiteConfig = TpchLiteConfig()) -> Database:
    """Generate the TPC-H-lite database (complete, then nulls injected)."""
    rng = random.Random(config.seed)
    regions = [(f"r{i}", f"REGION_{i}") for i in range(config.regions)]
    nations = [
        (f"n{i}", f"NATION_{i}", rng.choice(regions)[0]) for i in range(config.nations)
    ]
    customers = [
        (f"c{i}", f"Customer#{i}", rng.choice(nations)[0], rng.randrange(0, 10_000) / 100.0)
        for i in range(config.customers)
    ]
    orders = [
        (
            f"o{i}",
            rng.choice(customers)[0],
            rng.choice(["F", "O", "P"]),
            rng.randrange(100, 50_000) / 100.0,
        )
        for i in range(config.orders)
    ]
    suppliers = [
        (f"s{i}", f"Supplier#{i}", rng.choice(nations)[0]) for i in range(config.suppliers)
    ]
    parts = [
        (f"p{i}", f"Part#{i}", rng.choice(["BRASS", "STEEL", "TIN", "COPPER"]))
        for i in range(config.parts)
    ]
    lineitems = [
        (
            f"l{i}",
            rng.choice(orders)[0],
            rng.choice(parts)[0],
            rng.choice(suppliers)[0],
            rng.randrange(1, 50),
            rng.randrange(100, 10_000) / 100.0,
        )
        for i in range(config.lineitems)
    ]
    database = Database(
        {
            "region": Relation(("r_regionkey", "r_name"), regions),
            "nation": Relation(("n_nationkey", "n_name", "n_regionkey"), nations),
            "customer": Relation(
                ("c_custkey", "c_name", "c_nationkey", "c_acctbal"), customers
            ),
            "orders": Relation(
                ("o_orderkey", "o_custkey", "o_orderstatus", "o_totalprice"), orders
            ),
            "supplier": Relation(("s_suppkey", "s_name", "s_nationkey"), suppliers),
            "part": Relation(("p_partkey", "p_name", "p_type"), parts),
            "lineitem": Relation(
                (
                    "l_linekey",
                    "l_orderkey",
                    "l_partkey",
                    "l_suppkey",
                    "l_quantity",
                    "l_extendedprice",
                ),
                lineitems,
            ),
        }
    )
    if config.null_rate > 0:
        database = inject_nulls(
            database,
            null_rate=config.null_rate,
            seed=config.seed + 13,
            protected_relations=("region", "nation"),
        )
    return database


def tpch_lite_queries() -> dict[str, ra.Query]:
    """The TPC-H-lite query suite, keyed by a short name.

    All queries are built from the core operators (σ, π, ×, ∪, −) so they
    can be rewritten by both Figure 2 translations.
    """
    customer = rb.relation("customer")
    orders = rb.relation("orders")
    lineitem = rb.relation("lineitem")
    supplier = rb.relation("supplier")
    nation = rb.relation("nation")

    # Q_join: customers with an open order above a price threshold.
    cust_orders = rb.select(
        rb.product(customer, orders),
        And(Eq(Attr("c_custkey"), Attr("o_custkey")), Gt(Attr("o_totalprice"), Literal(250.0))),
    )
    q_join = rb.project(cust_orders, ["c_custkey", "c_name", "o_orderkey"])

    # Q_select: high-balance customers from a fixed nation or with tiny balance.
    q_select = rb.project(
        rb.select(
            customer,
            Or(
                And(Eq(Attr("c_nationkey"), Literal("n0")), Ge(Attr("c_acctbal"), Literal(50.0))),
                Ge(Attr("c_acctbal"), Literal(95.0)),
            ),
        ),
        ["c_custkey", "c_acctbal"],
    )

    # Q_unordered: customers with no order at all (anti-join via difference).
    all_customers = rb.project(customer, ["c_custkey"])
    ordering_customers = rb.rename(
        rb.project(orders, ["o_custkey"]), {"o_custkey": "c_custkey"}
    )
    q_unordered = rb.difference(all_customers, ordering_customers)

    # Q_unshipped: orders with no lineitem (false-negative-prone under nulls).
    all_orders = rb.project(orders, ["o_orderkey"])
    shipped_orders = rb.rename(
        rb.project(lineitem, ["l_orderkey"]), {"l_orderkey": "o_orderkey"}
    )
    q_unshipped = rb.difference(all_orders, shipped_orders)

    # Q_localsupp: lineitems supplied from the customer's own nation.
    supp = rb.rename(supplier, {"s_nationkey": "sn_key"})
    cust = rb.rename(customer, {"c_nationkey": "cn_key"})
    big_join = rb.select(
        rb.product(rb.product(rb.product(cust, orders), lineitem), supp),
        And(
            And(Eq(Attr("c_custkey"), Attr("o_custkey")), Eq(Attr("o_orderkey"), Attr("l_orderkey"))),
            And(Eq(Attr("l_suppkey"), Attr("s_suppkey")), Eq(Attr("cn_key"), Attr("sn_key"))),
        ),
    )
    q_localsupp = rb.project(big_join, ["c_custkey", "o_orderkey", "l_linekey"])

    # Q_nonlocal: orders whose customer nation has no supplier (difference over join).
    nations_with_supplier = rb.rename(
        rb.project(supplier, ["s_nationkey"]), {"s_nationkey": "n_nationkey"}
    )
    all_nations = rb.project(nation, ["n_nationkey"])
    nations_without_supplier = rb.difference(all_nations, nations_with_supplier)
    cust_in_those = rb.select(
        rb.product(customer, rb.rename(nations_without_supplier, {"n_nationkey": "x_nationkey"})),
        Eq(Attr("c_nationkey"), Attr("x_nationkey")),
    )
    q_nonlocal = rb.project(cust_in_those, ["c_custkey", "c_name"])

    return {
        "q_join": q_join,
        "q_select": q_select,
        "q_unordered": q_unordered,
        "q_unshipped": q_unshipped,
        "q_localsupp": q_localsupp,
        "q_nonlocal": q_nonlocal,
    }
