"""Horizontal sharding: partitioned databases with parallel evaluation.

The scaling move named on the ROADMAP: shard every relation into ``N``
horizontal fragments behind the unchanged ``Database`` interface, push
distributable plans through the fragments (selection, projection,
product and union — with broadcast of non-partitioned sides), evaluate
the fragments in parallel, and union the partial results.  Non-
distributive operators (difference, division) and strategies whose
correctness argument needs the whole database coalesce transparently to
monolithic evaluation, so sharded evaluation is *always* result-
identical to monolithic evaluation — a randomized cross-strategy
harness (``tests/test_sharding_equivalence.py``) enforces this.

Usage::

    from repro import Engine, Session
    from repro.sharding import ShardedDatabase, HashPartitioner

    session = Session(database, shards=4, executor="process")
    result = session.evaluate(query, strategy="naive")
    result.metadata["sharding"]      # mode, shards, cache hits, ...

or explicitly::

    sharded = ShardedDatabase.from_database(database, 4, HashPartitioner())
    Engine().evaluate(query, sharded, strategy="approx-guagliardo16")

Layers:

* :mod:`repro.sharding.partition` — hash and round-robin partitioners;
* :mod:`repro.sharding.database` — :class:`ShardedDatabase` (coalesced
  view + fragments + per-fragment fingerprints);
* :mod:`repro.sharding.planner` — the lineage rewrite pushing plans
  through fragments, with per-strategy operator allowlists;
* :mod:`repro.sharding.executor` — serial / thread / process executors;
* :mod:`repro.sharding.evaluate` — orchestration, per-shard caching and
  strategy-specific merging.
"""

from .database import SHARD_SUFFIX, ShardedDatabase, shard_relation_name
from .evaluate import (
    SHARD_MERGES,
    SHARDABLE_STRATEGIES,
    ShardableSpec,
    evaluate_sharded,
    register_shard_merge,
)
from .executor import (
    ProcessShardExecutor,
    SerialShardExecutor,
    ShardExecutor,
    ShardPartial,
    ShardTask,
    ThreadShardExecutor,
    resolve_executor,
)
from .partition import HashPartitioner, Partitioner, RoundRobinPartitioner
from .planner import NonDistributableError, ShardPlan, shard_plan

__all__ = [
    "SHARD_SUFFIX",
    "ShardedDatabase",
    "shard_relation_name",
    "Partitioner",
    "HashPartitioner",
    "RoundRobinPartitioner",
    "ShardPlan",
    "shard_plan",
    "NonDistributableError",
    "ShardExecutor",
    "SerialShardExecutor",
    "ThreadShardExecutor",
    "ProcessShardExecutor",
    "ShardTask",
    "ShardPartial",
    "resolve_executor",
    "ShardableSpec",
    "SHARDABLE_STRATEGIES",
    "SHARD_MERGES",
    "register_shard_merge",
    "evaluate_sharded",
]
