"""The shard planner: push a plan through horizontal fragments.

Given a relational algebra plan, the planner rewrites it into a *shard
plan* ``Q_s`` such that evaluating ``Q_s`` on every shard view and
unioning the partial results reproduces the monolithic answer::

    Q(D)  =  ⋃_i  Q_s(view_i)        (bag-additive union under bags)

The rewrite picks a **partitioned lineage** through the plan — the set
of paths along which fragments may flow — and renames the base-relation
leaves on that lineage to their ``::shard`` fragment names.  Everything
off the lineage is left untouched and therefore reads the *full*
relations present in every shard view (broadcast, the classic
fragment-and-replicate scheme).  The lineage recursion rules:

* σ, π, ρ — recurse into the child (``σ(⋃ᵢ Aᵢ) = ⋃ᵢ σ(Aᵢ)``, same for
  projection and renaming, with multiplicities under bags);
* ×, ⋈, ⋉ — recurse into the **left** child only, broadcast the right
  (``(⋃ᵢ Aᵢ) × B = ⋃ᵢ (Aᵢ × B)``);
* ∪ — recurse into both children (``⋃ᵢ (Aᵢ ∪ Bᵢ) = A ∪ B`` because the
  fragments of each side partition it);
* ∩ — recurse left, broadcast right (**set semantics only**: with bags
  ``min``-multiplicity does not distribute over a partition of the left
  side).

Everything else is non-distributive and raises
:class:`NonDistributableError`, which the engine turns into coalesced
(monolithic) evaluation:

* difference and the anti-semijoins — a fragment cannot know which of
  its rows survive subtraction of rows held elsewhere without the full
  left side (and the Figure 2b translation of ``−`` consults the *left*
  side's possible answers, which a fragment under-approximates);
* division — the dividend's groups are split across fragments;
* ``Dom^k`` and constant relations on the lineage — they are not
  horizontally partitioned data.

Which operators are allowed on the lineage is **strategy-specific**:
each strategy declares its lineage allowlist in its
:class:`~repro.engine.capabilities.StrategyCapabilities` record
(``shardable_ops`` / ``shardable_bag_ops``, operator class names) —
naïve evaluation is a literal evaluator so every distributive operator
qualifies, while the Figure 2b translation rewrites ``∩`` into ``−`` and
only supports the core operators, so its lineage is restricted to
σ/π/ρ/×/∪.  ``allowed_ops`` accepts either operator classes or their
names; the legacy class-set constants below remain as aliases of the
capability declarations.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..algebra import ast as ra
from .database import shard_relation_name

__all__ = [
    "NonDistributableError",
    "ShardPlan",
    "shard_plan",
    "NAIVE_LINEAGE_OPS",
    "NAIVE_BAG_LINEAGE_OPS",
    "TRANSLATION_LINEAGE_OPS",
]

#: Lineage operators sound for a literal (naïve) evaluator, set semantics.
#: (Legacy class-set alias of ``NaiveStrategy.capabilities.shardable_ops``.)
NAIVE_LINEAGE_OPS = frozenset(
    {
        ra.Selection,
        ra.Projection,
        ra.Rename,
        ra.Product,
        ra.Union,
        ra.Intersection,
        ra.NaturalJoin,
        ra.SemiJoin,
    }
)

#: Under bag semantics ``min``-intersection does not distribute.
NAIVE_BAG_LINEAGE_OPS = NAIVE_LINEAGE_OPS - {ra.Intersection}

#: Lineage operators preserved one-to-one by the Figure 2 translations.
TRANSLATION_LINEAGE_OPS = frozenset(
    {ra.Selection, ra.Projection, ra.Rename, ra.Product, ra.Union}
)


def _allowed_names(allowed_ops) -> frozenset[str]:
    """Normalise an allowlist of classes and/or names to names."""
    return frozenset(
        op if isinstance(op, str) else op.__name__ for op in allowed_ops
    )


class NonDistributableError(Exception):
    """The plan cannot be pushed through shards; coalesce instead."""


@dataclass(frozen=True)
class ShardPlan:
    """A rewritten plan plus the relations it reads per shard."""

    plan: ra.Query
    #: Relations read as per-shard fragments (the partitioned lineage).
    sharded_relations: tuple[str, ...]
    #: Relations read in full by every shard (broadcast subtrees).
    broadcast_relations: tuple[str, ...]
    #: True when the plan contains ``Dom^k`` somewhere: the active domain
    #: depends on the whole database, so partial results must be keyed on
    #: the full database fingerprint.
    uses_domain: bool


def shard_plan(query: ra.Query, allowed_ops: frozenset) -> ShardPlan:
    """Rewrite ``query`` for per-shard evaluation.

    ``allowed_ops`` may contain operator classes, operator class names,
    or a mix (capability records declare names; the legacy constants are
    class sets).  Raises :class:`NonDistributableError` when any lineage
    operator is outside ``allowed_ops`` (or a lineage leaf is not a base
    relation).
    """
    sharded: set[str] = set()
    rewritten = _rewrite(query, _allowed_names(allowed_ops), sharded)
    broadcast: set[str] = set()
    uses_domain = False
    for node in ra.walk(rewritten):
        if isinstance(node, ra.RelationRef) and not node.name.endswith(
            shard_relation_name("")
        ):
            broadcast.add(node.name)
        if isinstance(node, ra.DomainRelation):
            uses_domain = True
    return ShardPlan(
        plan=rewritten,
        sharded_relations=tuple(sorted(sharded)),
        broadcast_relations=tuple(sorted(broadcast)),
        uses_domain=uses_domain,
    )


def _rewrite(node: ra.Query, allowed: frozenset, sharded: set[str]) -> ra.Query:
    if isinstance(node, ra.RelationRef):
        sharded.add(node.name)
        return ra.RelationRef(shard_relation_name(node.name))
    if isinstance(node, ra.DomainRelation):
        raise NonDistributableError(
            "the active-domain relation Dom^k depends on the whole database "
            "and cannot be partitioned"
        )
    if isinstance(node, ra.ConstantRelation):
        raise NonDistributableError(
            "a constant relation on the partitioned lineage would be "
            "replicated into every shard"
        )
    if type(node).__name__ not in allowed:
        raise NonDistributableError(
            f"operator {type(node).__name__} does not distribute over "
            "horizontal partitioning"
        )
    if isinstance(node, ra.Selection):
        return ra.Selection(_rewrite(node.child, allowed, sharded), node.condition)
    if isinstance(node, ra.Projection):
        return ra.Projection(_rewrite(node.child, allowed, sharded), node.attributes)
    if isinstance(node, ra.Rename):
        return ra.Rename(_rewrite(node.child, allowed, sharded), node.mapping_dict())
    if isinstance(node, ra.Union):
        return ra.Union(
            _rewrite(node.left, allowed, sharded),
            _rewrite(node.right, allowed, sharded),
        )
    if isinstance(node, (ra.Product, ra.NaturalJoin, ra.SemiJoin, ra.Intersection)):
        return type(node)(_rewrite(node.left, allowed, sharded), node.right)
    raise NonDistributableError(  # pragma: no cover - allowed_ops guards this
        f"no shard rewrite rule for operator {type(node).__name__}"
    )
