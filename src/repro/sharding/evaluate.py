"""Sharded evaluation: orchestrate shard plans, caching and merging.

This is the piece the engine calls when a query targets a
:class:`~repro.sharding.database.ShardedDatabase` (or ``shards=`` is
passed).  The flow:

1. read the strategy's shard-distribution declaration from its
   :class:`~repro.engine.capabilities.StrategyCapabilities` record
   (``shardable_ops``/``shardable_bag_ops`` + the ``shard_merge`` name
   resolved through :data:`SHARD_MERGES`); strategies that declare no
   lineage operators — because their correctness argument does not
   survive horizontal partitioning (``sql-3vl`` has no algebra reading,
   ``exact-certain`` and ``ctables`` intersect over valuations — a
   union of per-fragment intersections under-approximates — and Figure
   2a builds ``Dom^k`` complements whose per-fragment union
   over-approximates ``Qf``) — are evaluated **coalesced**:
   monolithically on the union view, which the sharded database *is*.
   (:data:`SHARDABLE_STRATEGIES` remains as an explicit override table
   consulted first, so tests and downstream packages can attach a
   :class:`ShardableSpec` without touching a strategy's capabilities.)
2. rewrite the plan via :func:`repro.sharding.planner.shard_plan` with
   the strategy's allowed lineage operators, falling back to coalesced
   evaluation for non-distributive plans (difference, division, ...);
3. per shard, probe the engine's result cache under a key built from the
   rewritten-plan fingerprint and the *fragment* fingerprints of the
   sharded relations (plus the full fingerprints of broadcast
   relations), so mutating one shard invalidates only its partial;
4. evaluate the cache misses through the shard executor and merge the
   partials with the strategy-specific merge function, reproducing
   exactly what the monolithic strategy would have returned.

The engine's ``optimize=`` and ``stats=`` settings ride along in the
task options, so each fragment's rewritten plan is optimized *inside*
the strategy call (:mod:`repro.algebra.optimize` memoises the rewrite
per stats fingerprint), and — because the per-shard partial cache keys
include the canonical options — optimized/unoptimized and
stats-on/stats-off partials never alias.  With ``stats`` on, each
fragment builds its own :class:`~repro.algebra.stats.Stats` provider
over the shard it actually sees: build sides and join orders are chosen
from the fragment's *estimates* before anything materialises, instead
of coalescing the sharded relation just to count its rows.

The merged :class:`~repro.engine.result.QueryResult` is result-identical
to monolithic evaluation — the randomized harness in
``tests/test_sharding_equivalence.py`` enforces this for every
registered strategy — and differs only in its ``metadata["sharding"]``
entry.
"""

from __future__ import annotations

import hashlib
import inspect
import time
from collections import Counter
from dataclasses import dataclass, replace
from typing import Any, Callable, Mapping, Sequence

from ..datamodel.database import Database
from ..datamodel.relation import Relation
from ..engine.cache import ResultCache, canonical_options, database_fingerprint
from ..engine.frontend import NormalizedQuery, query_fingerprint
from ..engine.registry import EvaluationStrategy, StrategyOutcome, annotate
from ..engine.result import AnnotatedTuple, Certainty, QueryResult
from .database import ShardedDatabase, shard_relation_name
from .executor import ShardExecutor, ShardPartial, ShardTask
from .planner import (
    NAIVE_BAG_LINEAGE_OPS,
    NAIVE_LINEAGE_OPS,
    TRANSLATION_LINEAGE_OPS,
    NonDistributableError,
    ShardPlan,
    shard_plan,
)

__all__ = [
    "ShardableSpec",
    "SHARDABLE_STRATEGIES",
    "SHARD_MERGES",
    "register_shard_merge",
    "evaluate_sharded",
    "evaluate_sharded_async",
]

MergeFn = Callable[..., StrategyOutcome]


@dataclass(frozen=True)
class ShardableSpec:
    """How one strategy distributes over shards."""

    lineage_ops: frozenset
    merge: MergeFn
    bag_lineage_ops: frozenset | None = None

    def ops_for(self, semantics: str) -> frozenset:
        if semantics == "bag" and self.bag_lineage_ops is not None:
            return self.bag_lineage_ops
        return self.lineage_ops


# ----------------------------------------------------------------------
# Merging partial results (must mirror the strategies' own outcomes)
# ----------------------------------------------------------------------
def _union_relations(relations: Sequence[Relation], *, bag: bool) -> Relation:
    attributes = relations[0].attributes
    if bag:
        combined: Counter = Counter()
        for relation in relations:
            combined.update(relation.rows_bag())
        return Relation.from_counter(attributes, combined)
    rows: set = set()
    for relation in relations:
        rows |= relation.rows_set()
    return Relation(attributes, rows)


def merge_naive(
    partials: Sequence[ShardPartial],
    *,
    semantics: str,
    database: Database,
    normalized: NormalizedQuery | None = None,
    strategy: EvaluationStrategy | None = None,
) -> StrategyOutcome:
    """Union of per-shard naïve answers (bag-additive under bags).

    Mirrors :class:`repro.engine.strategies.NaiveStrategy`, including
    the Theorem 4.4 exactness claim: the merged answer is exact when the
    coalesced database is complete or the query's fragment is one the
    strategy declares ``exact_on`` — the same capability record the
    monolithic path consults, so distributed and monolithic results stay
    tuple-for-tuple identical (annotations and side relations included).
    """
    bag = semantics == "bag"
    answer = _union_relations([p.answer for p in partials], bag=bag)
    fragment = normalized.fragment if normalized is not None else None
    exact = database.is_complete() or (
        strategy is not None
        and strategy.capabilities is not None
        and strategy.capabilities.exact_on_fragment(fragment)
    )
    status = Certainty.CERTAIN if exact else Certainty.POSSIBLE
    return StrategyOutcome(
        answer=answer,
        annotated=annotate(answer, status, bag=bag),
        certain=answer if exact else None,
        metadata={"fragment": fragment, "exact": exact},
    )


def merge_guagliardo16(
    partials: Sequence[ShardPartial],
    *,
    semantics: str,
    database: Database,
    normalized: NormalizedQuery | None = None,
    strategy: EvaluationStrategy | None = None,
) -> StrategyOutcome:
    """Union the per-shard (Q+, Q?) pairs.

    Both translations are compositional along σ/π/ρ/×/∪, so the union of
    the per-fragment certain (resp. possible) answers is exactly the
    monolithic ``Q+`` (resp. ``Q?``) answer.
    """
    certain = _union_relations([p.certain for p in partials], bag=False)
    possible = _union_relations([p.possible for p in partials], bag=False)
    annotated = annotate(certain, Certainty.CERTAIN) + tuple(
        AnnotatedTuple(row, Certainty.POSSIBLE)
        for row in possible.sorted_rows()
        if row not in certain
    )
    return StrategyOutcome(
        answer=certain,
        annotated=annotated,
        certain=certain,
        possible=possible,
        metadata={"scheme": "figure-2b"},
    )


#: Named merge functions resolvable from a strategy's declarative
#: ``capabilities.shard_merge`` entry (capability records carry names,
#: never callables).  Third-party strategies register theirs through
#: :func:`register_shard_merge`.
SHARD_MERGES: dict[str, MergeFn] = {
    "naive-union": merge_naive,
    "certain-possible-union": merge_guagliardo16,
}


def register_shard_merge(name: str, merge: MergeFn) -> None:
    """Register a merge function under a capability-referencable name.

    The function receives ``(partials, *, semantics, database,
    normalized, strategy)`` and must return a
    :class:`~repro.engine.registry.StrategyOutcome` mirroring what the
    monolithic strategy would have produced.
    """
    SHARD_MERGES[name] = merge


#: Explicit per-strategy overrides of the capability-declared
#: distribution, consulted before the capability record.  Built-in
#: strategies declare shardability in their capabilities
#: (``shardable_ops`` + ``shard_merge``); this table exists for tests
#: and downstream packages that attach a :class:`ShardableSpec` with a
#: bespoke merge callable.  Strategies with neither declaration are
#: sound under sharding too — via coalesced evaluation on the union
#: view (see the module docstring for why each built-in exclusion is
#: necessary, not just unimplemented).
SHARDABLE_STRATEGIES: dict[str, ShardableSpec] = {}


def _shardable_spec(strategy: EvaluationStrategy) -> ShardableSpec | None:
    """Resolve how a strategy distributes: override table, then capabilities."""
    spec = SHARDABLE_STRATEGIES.get(strategy.name)
    if spec is not None:
        return spec
    caps = strategy.capabilities
    if caps is None or not caps.shardable_ops or caps.shard_merge is None:
        return None
    merge = SHARD_MERGES.get(caps.shard_merge)
    if merge is None:
        return None
    return ShardableSpec(
        lineage_ops=caps.shardable_ops,
        bag_lineage_ops=caps.shardable_bag_ops,
        merge=merge,
    )


# ----------------------------------------------------------------------
# Cache keys
# ----------------------------------------------------------------------
def _shard_data_fingerprint(
    database: ShardedDatabase,
    shard: int,
    plan: ShardPlan,
    full_fp: str | None,
) -> str:
    """Hash of exactly the data this shard's partial result depends on."""
    hasher = hashlib.sha1()
    for name in plan.sharded_relations:
        hasher.update(
            f"fragment:{name!r}@{shard}:"
            f"{database.fragment_fingerprint(name, shard)}\n".encode("utf-8")
        )
    for name in plan.broadcast_relations:
        hasher.update(
            f"broadcast:{name!r}:{database.relation_fingerprint(name)}\n".encode(
                "utf-8"
            )
        )
    if plan.uses_domain:
        # Dom^k ranges over the whole active domain: key conservatively
        # on the full database content.
        hasher.update(f"domain:{full_fp}\n".encode("utf-8"))
    return hasher.hexdigest()


def _task_database(
    database: ShardedDatabase, shard: int, plan: ShardPlan
) -> Database:
    """The smallest database a shard task needs (cheap to pickle).

    Plans containing ``Dom^k`` get the complete shard view so the active
    domain matches the monolithic one; everything else gets only the
    relations the rewritten plan actually reads.
    """
    if plan.uses_domain:
        return database.shard_view(shard)
    relations = {
        name: database[name] for name in plan.broadcast_relations
    }
    for name in plan.sharded_relations:
        relations[shard_relation_name(name)] = database.fragment(name, shard)
    return Database(relations)


# ----------------------------------------------------------------------
# Orchestration
# ----------------------------------------------------------------------
@dataclass
class _PlannedShardedCall:
    """A distributable call, cache-probed and ready for its executor."""

    spec: ShardableSpec
    plan: ShardPlan
    partials: list  # ShardPartial | None per shard; cached ones filled in
    tasks: list[ShardTask]
    hits: int
    start: float


def _plan_sharded_call(
    normalized: NormalizedQuery,
    database: ShardedDatabase,
    strategy: EvaluationStrategy,
    *,
    semantics: str,
    options: Mapping[str, Any],
    cache: ResultCache | None,
    database_fp: str | None,
) -> "tuple[str, None] | tuple[None, _PlannedShardedCall]":
    """Plan one sharded call: ``(reason, None)`` means coalesced fallback."""
    spec = _shardable_spec(strategy)
    plan: ShardPlan | None = None
    if spec is None:
        return f"strategy {strategy.name!r} is not shard-aware", None
    if normalized.algebra is None:
        return (
            "no relational algebra plan to distribute "
            f"({'; '.join(normalized.notes) or normalized.frontend + ' frontend'})",
            None,
        )
    try:
        plan = shard_plan(normalized.algebra, spec.ops_for(semantics))
    except NonDistributableError as exc:
        return str(exc), None

    start = time.perf_counter()
    count = database.shard_count
    # Only cache keys need the canonical rendering; with caching off,
    # exotic option values stay usable (the use_cache=False escape
    # hatch canonical_option_value's error message recommends).
    options_key = canonical_options(options) if cache is not None else ()
    rewritten_fp = query_fingerprint(plan.plan)
    full_fp = None
    if plan.uses_domain and cache is not None:
        full_fp = database_fp or database_fingerprint(database)

    partials: list[ShardPartial | None] = [None] * count
    tasks: list[ShardTask] = []
    hits = 0
    for shard in range(count):
        key = None
        if cache is not None:
            key = (
                "shard-partial",
                rewritten_fp,
                strategy.name,
                semantics,
                options_key,
                _shard_data_fingerprint(database, shard, plan, full_fp),
            )
            cached = cache.get(key)
            if cached is not None:
                partials[shard] = cached
                hits += 1
                continue
        tasks.append(
            ShardTask(
                shard=shard,
                plan=plan.plan,
                database=_task_database(database, shard, plan),
                strategy=strategy.name,
                semantics=semantics,
                options=tuple(options.items()),
                cache_key=key,
            )
        )
    return None, _PlannedShardedCall(
        spec=spec, plan=plan, partials=partials, tasks=tasks, hits=hits, start=start
    )


def _call_merge(merge: MergeFn, partials, **kwargs) -> StrategyOutcome:
    """Invoke a merge function, tolerating the pre-capability signature.

    Merges written before the capability redesign take ``(partials, *,
    semantics, database)``; the new contract adds ``normalized`` and
    ``strategy``.  The signature is inspected (rather than retried on
    ``TypeError``, which would mask genuine errors inside the merge) and
    unknown keywords are dropped for legacy callables.
    """
    try:
        parameters = inspect.signature(merge).parameters
    except (TypeError, ValueError):  # builtins/C callables: pass everything
        return merge(partials, **kwargs)
    if any(p.kind is p.VAR_KEYWORD for p in parameters.values()):
        return merge(partials, **kwargs)
    accepted = {name: value for name, value in kwargs.items() if name in parameters}
    return merge(partials, **accepted)


def _coalesced_result(
    result: QueryResult, database: ShardedDatabase, reason: str | None
) -> QueryResult:
    sharding_meta = {
        "mode": "coalesced",
        "shards": database.shard_count,
        "reason": reason,
    }
    return replace(result, metadata={**result.metadata, "sharding": sharding_meta})


def _absorb_partials(
    planned: _PlannedShardedCall,
    computed: Sequence[ShardPartial],
    cache: ResultCache | None,
) -> None:
    for task, partial in zip(planned.tasks, computed):
        planned.partials[task.shard] = partial
        if cache is not None and task.cache_key is not None:
            cache.put(task.cache_key, partial)


def _merged_backend_metadata(partials: Sequence[ShardPartial]) -> dict[str, Any]:
    """Aggregate the per-shard backend decisions into one metadata note.

    Merge functions rebuild outcome metadata from scratch, so the
    execution-backend decision each shard's strategy call recorded
    (``metadata["backend"]`` — see :mod:`repro.exec`) would be lost.
    When every shard resolved to the same backend the shared note is
    reused; shards that diverged (e.g. one fragment held a value the SQL
    compiler cannot encode) are reported as ``resolved: "mixed"``.
    """
    notes = [
        partial.metadata.get("backend")
        for partial in partials
        if partial is not None and partial.metadata
    ]
    notes = [note for note in notes if note]
    if not notes:
        return {}
    if len({note.get("resolved") for note in notes}) == 1:
        return {"backend": dict(notes[0])}
    return {
        "backend": {
            "requested": notes[0].get("requested"),
            "resolved": "mixed",
            "reason": "shards resolved different backends",
        }
    }


def _finish_sharded(
    planned: _PlannedShardedCall,
    normalized: NormalizedQuery,
    database: ShardedDatabase,
    strategy: EvaluationStrategy,
    semantics: str,
    executor_kind: str,
) -> QueryResult:
    count = database.shard_count
    outcome = _call_merge(
        planned.spec.merge,
        planned.partials,
        semantics=semantics,
        database=database,
        normalized=normalized,
        strategy=strategy,
    )
    elapsed = time.perf_counter() - planned.start
    sharding_meta = {
        "mode": "distributed",
        "shards": count,
        "executor": executor_kind,
        "partial_cache_hits": planned.hits,
        "sharded_relations": list(planned.plan.sharded_relations),
        "broadcast_relations": list(planned.plan.broadcast_relations),
    }
    return QueryResult(
        strategy=strategy.name,
        semantics=semantics,
        relation=outcome.answer,
        tuples=outcome.annotated,
        certain=outcome.certain,
        possible=outcome.possible,
        certainly_false=outcome.certainly_false,
        elapsed=elapsed,
        from_cache=not planned.tasks and count > 0,
        fingerprint=normalized.fingerprint,
        metadata={
            **outcome.metadata,
            **_merged_backend_metadata(planned.partials),
            "sharding": sharding_meta,
        },
    )


def evaluate_sharded(
    normalized: NormalizedQuery,
    database: ShardedDatabase,
    strategy: EvaluationStrategy,
    *,
    semantics: str,
    options: Mapping[str, Any],
    executor: ShardExecutor,
    cache: ResultCache | None,
    database_fp: str | None = None,
    evaluate_coalesced: Callable[[], QueryResult],
) -> QueryResult:
    """Evaluate on a sharded database, falling back to coalesced evaluation.

    ``evaluate_coalesced`` is the engine's monolithic path (already
    closed over the query, database and caching arguments); it is used
    whenever the (strategy, plan, semantics) combination does not
    distribute.
    """
    reason, planned = _plan_sharded_call(
        normalized,
        database,
        strategy,
        semantics=semantics,
        options=options,
        cache=cache,
        database_fp=database_fp,
    )
    if planned is None:
        return _coalesced_result(evaluate_coalesced(), database, reason)
    if planned.tasks:
        _absorb_partials(planned, executor.run(planned.tasks), cache)
    return _finish_sharded(
        planned, normalized, database, strategy, semantics, executor.kind
    )


async def evaluate_sharded_async(
    normalized: NormalizedQuery,
    database: ShardedDatabase,
    strategy: EvaluationStrategy,
    *,
    semantics: str,
    options: Mapping[str, Any],
    executor: ShardExecutor,
    cache: ResultCache | None,
    database_fp: str | None = None,
    evaluate_coalesced: Callable[[], Any],
    limiter: Any = None,
) -> QueryResult:
    """Awaitable twin of :func:`evaluate_sharded`.

    Planning, cache probing and merging are shared with the sync path;
    only the executor hop differs — cache misses go through the
    executor's :meth:`~repro.sharding.executor.ShardExecutor.run_async`
    submit surface so several sharded evaluations can overlap on one
    event loop.  ``evaluate_coalesced`` is awaited (the async engine's
    monolithic path); ``limiter`` is an optional async context manager
    (the engine's ``max_concurrency`` semaphore) held around the
    executor hop only, so the fallback path cannot deadlock on it.
    """
    reason, planned = _plan_sharded_call(
        normalized,
        database,
        strategy,
        semantics=semantics,
        options=options,
        cache=cache,
        database_fp=database_fp,
    )
    if planned is None:
        return _coalesced_result(await evaluate_coalesced(), database, reason)
    if planned.tasks:
        if limiter is not None:
            async with limiter:
                computed = await executor.run_async(planned.tasks)
        else:
            computed = await executor.run_async(planned.tasks)
        _absorb_partials(planned, computed, cache)
    return _finish_sharded(
        planned, normalized, database, strategy, semantics, executor.kind
    )
