"""Sharded evaluation: orchestrate shard plans, caching and merging.

This is the piece the engine calls when a query targets a
:class:`~repro.sharding.database.ShardedDatabase` (or ``shards=`` is
passed).  The flow:

1. read the strategy's shard-distribution declaration from its
   :class:`~repro.engine.capabilities.StrategyCapabilities` record
   (``shardable_ops``/``shardable_bag_ops`` + the ``shard_merge`` name
   resolved through :data:`SHARD_MERGES`); strategies that declare no
   lineage operators — because their correctness argument does not
   survive horizontal partitioning (``sql-3vl`` has no algebra reading,
   ``exact-certain`` and ``ctables`` intersect over valuations — a
   union of per-fragment intersections under-approximates — and Figure
   2a builds ``Dom^k`` complements whose per-fragment union
   over-approximates ``Qf``) — are evaluated **coalesced**:
   monolithically on the union view, which the sharded database *is*.
   (:data:`SHARDABLE_STRATEGIES` remains as an explicit override table
   consulted first, so tests and downstream packages can attach a
   :class:`ShardableSpec` without touching a strategy's capabilities.)
2. rewrite the plan via :func:`repro.sharding.planner.shard_plan` with
   the strategy's allowed lineage operators, falling back to coalesced
   evaluation for non-distributive plans (difference, division, ...);
3. per shard, probe the engine's result cache under a key built from the
   rewritten-plan fingerprint and the *fragment* fingerprints of the
   sharded relations (plus the full fingerprints of broadcast
   relations), so mutating one shard invalidates only its partial;
4. evaluate the cache misses through the shard executor and merge the
   partials with the strategy-specific merge function, reproducing
   exactly what the monolithic strategy would have returned.

The engine's ``optimize=`` and ``stats=`` settings ride along in the
task options, so each fragment's rewritten plan is optimized *inside*
the strategy call (:mod:`repro.algebra.optimize` memoises the rewrite
per stats fingerprint), and — because the per-shard partial cache keys
include the canonical options — optimized/unoptimized and
stats-on/stats-off partials never alias.  With ``stats`` on, each
fragment builds its own :class:`~repro.algebra.stats.Stats` provider
over the shard it actually sees: build sides and join orders are chosen
from the fragment's *estimates* before anything materialises, instead
of coalescing the sharded relation just to count its rows.

The merged :class:`~repro.engine.result.QueryResult` is result-identical
to monolithic evaluation — the randomized harness in
``tests/test_sharding_equivalence.py`` enforces this for every
registered strategy — and differs only in its ``metadata["sharding"]``
entry.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import hashlib
import inspect
import time
from collections import Counter
from dataclasses import dataclass, replace
from typing import Any, Callable, Mapping, Sequence

from ..datamodel.database import Database
from ..datamodel.relation import Relation
from ..engine.cache import ResultCache, canonical_options, database_fingerprint
from ..engine.errors import EngineError
from ..engine.frontend import NormalizedQuery, query_fingerprint
from ..engine.registry import EvaluationStrategy, StrategyOutcome, annotate
from ..engine.result import AnnotatedTuple, Certainty, QueryResult
from ..obs import metrics as obs_metrics
from ..obs.trace import SpanContext, span
from ..resilience import Deadline, DeadlineExceeded, RetryPolicy
from .database import ShardedDatabase, shard_relation_name
from .executor import ShardExecutor, ShardPartial, ShardTask
from .planner import (
    NAIVE_BAG_LINEAGE_OPS,
    NAIVE_LINEAGE_OPS,
    TRANSLATION_LINEAGE_OPS,
    NonDistributableError,
    ShardPlan,
    shard_plan,
)

__all__ = [
    "ShardableSpec",
    "SHARDABLE_STRATEGIES",
    "SHARD_MERGES",
    "register_shard_merge",
    "evaluate_sharded",
    "evaluate_sharded_async",
]

MergeFn = Callable[..., StrategyOutcome]


@dataclass(frozen=True)
class ShardableSpec:
    """How one strategy distributes over shards."""

    lineage_ops: frozenset
    merge: MergeFn
    bag_lineage_ops: frozenset | None = None
    #: May ``on_shard_error="degrade"`` drop failed shards and merge the
    #: survivors?  Only meaningful for *union-style* merges, where the
    #: merge of a subset of partials is a subset of the full merge; the
    #: orchestrator additionally requires a monotone query fragment
    #: (CQ/UCQ), so the subset answer is a sound under-approximation of
    #: the fault-free certain answer (``"sound-subset"``).
    degradable: bool = False

    def ops_for(self, semantics: str) -> frozenset:
        if semantics == "bag" and self.bag_lineage_ops is not None:
            return self.bag_lineage_ops
        return self.lineage_ops


# ----------------------------------------------------------------------
# Merging partial results (must mirror the strategies' own outcomes)
# ----------------------------------------------------------------------
def _union_relations(relations: Sequence[Relation], *, bag: bool) -> Relation:
    attributes = relations[0].attributes
    if bag:
        combined: Counter = Counter()
        for relation in relations:
            combined.update(relation.rows_bag())
        return Relation.from_counter(attributes, combined)
    rows: set = set()
    for relation in relations:
        rows |= relation.rows_set()
    return Relation(attributes, rows)


def merge_naive(
    partials: Sequence[ShardPartial],
    *,
    semantics: str,
    database: Database,
    normalized: NormalizedQuery | None = None,
    strategy: EvaluationStrategy | None = None,
) -> StrategyOutcome:
    """Union of per-shard naïve answers (bag-additive under bags).

    Mirrors :class:`repro.engine.strategies.NaiveStrategy`, including
    the Theorem 4.4 exactness claim: the merged answer is exact when the
    coalesced database is complete or the query's fragment is one the
    strategy declares ``exact_on`` — the same capability record the
    monolithic path consults, so distributed and monolithic results stay
    tuple-for-tuple identical (annotations and side relations included).
    """
    bag = semantics == "bag"
    answer = _union_relations([p.answer for p in partials], bag=bag)
    fragment = normalized.fragment if normalized is not None else None
    exact = database.is_complete() or (
        strategy is not None
        and strategy.capabilities is not None
        and strategy.capabilities.exact_on_fragment(fragment)
    )
    status = Certainty.CERTAIN if exact else Certainty.POSSIBLE
    return StrategyOutcome(
        answer=answer,
        annotated=annotate(answer, status, bag=bag),
        certain=answer if exact else None,
        metadata={"fragment": fragment, "exact": exact},
    )


def merge_guagliardo16(
    partials: Sequence[ShardPartial],
    *,
    semantics: str,
    database: Database,
    normalized: NormalizedQuery | None = None,
    strategy: EvaluationStrategy | None = None,
) -> StrategyOutcome:
    """Union the per-shard (Q+, Q?) pairs.

    Both translations are compositional along σ/π/ρ/×/∪, so the union of
    the per-fragment certain (resp. possible) answers is exactly the
    monolithic ``Q+`` (resp. ``Q?``) answer.
    """
    certain = _union_relations([p.certain for p in partials], bag=False)
    possible = _union_relations([p.possible for p in partials], bag=False)
    annotated = annotate(certain, Certainty.CERTAIN) + tuple(
        AnnotatedTuple(row, Certainty.POSSIBLE)
        for row in possible.sorted_rows()
        if row not in certain
    )
    return StrategyOutcome(
        answer=certain,
        annotated=annotated,
        certain=certain,
        possible=possible,
        metadata={"scheme": "figure-2b"},
    )


#: Named merge functions resolvable from a strategy's declarative
#: ``capabilities.shard_merge`` entry (capability records carry names,
#: never callables).  Third-party strategies register theirs through
#: :func:`register_shard_merge`.
SHARD_MERGES: dict[str, MergeFn] = {
    "naive-union": merge_naive,
    "certain-possible-union": merge_guagliardo16,
}


def register_shard_merge(name: str, merge: MergeFn) -> None:
    """Register a merge function under a capability-referencable name.

    The function receives ``(partials, *, semantics, database,
    normalized, strategy)`` and must return a
    :class:`~repro.engine.registry.StrategyOutcome` mirroring what the
    monolithic strategy would have produced.
    """
    SHARD_MERGES[name] = merge


#: Explicit per-strategy overrides of the capability-declared
#: distribution, consulted before the capability record.  Built-in
#: strategies declare shardability in their capabilities
#: (``shardable_ops`` + ``shard_merge``); this table exists for tests
#: and downstream packages that attach a :class:`ShardableSpec` with a
#: bespoke merge callable.  Strategies with neither declaration are
#: sound under sharding too — via coalesced evaluation on the union
#: view (see the module docstring for why each built-in exclusion is
#: necessary, not just unimplemented).
SHARDABLE_STRATEGIES: dict[str, ShardableSpec] = {}


#: Merge names whose output over a *subset* of partials is a subset of
#: the full merge — the structural half of the ``"degrade"`` gate (both
#: built-in merges are plain unions, hence monotone in their inputs).
_DEGRADABLE_MERGES = frozenset({"naive-union", "certain-possible-union"})

#: Query fragments preserved under sub-databases: for monotone queries
#: ``Q(D') ⊆ Q(D)`` whenever ``D' ⊆ D``, so answers over the surviving
#: shards alone are a sound subset of the fault-free answer.
_MONOTONE_FRAGMENTS = frozenset({"CQ", "UCQ"})


def _shardable_spec(strategy: EvaluationStrategy) -> ShardableSpec | None:
    """Resolve how a strategy distributes: override table, then capabilities."""
    spec = SHARDABLE_STRATEGIES.get(strategy.name)
    if spec is not None:
        return spec
    caps = strategy.capabilities
    if caps is None or not caps.shardable_ops or caps.shard_merge is None:
        return None
    merge = SHARD_MERGES.get(caps.shard_merge)
    if merge is None:
        return None
    return ShardableSpec(
        lineage_ops=caps.shardable_ops,
        bag_lineage_ops=caps.shardable_bag_ops,
        merge=merge,
        degradable=caps.shard_merge in _DEGRADABLE_MERGES,
    )


def _degrade_blocker(spec: ShardableSpec, normalized: NormalizedQuery) -> str | None:
    """Why ``on_shard_error="degrade"`` is not sound here (None = it is).

    Both halves of the gate must hold: the merge must be union-style
    (subset of partials ⇒ subset of the merge) *and* the query fragment
    must be monotone (subset of the data ⇒ subset of the answer).
    Non-monotone plans (difference, division) can return *wrong* rows —
    not merely fewer — when a shard's data goes missing, so they are
    never degraded.
    """
    if not spec.degradable:
        return "the strategy's shard merge does not tolerate missing shards"
    fragment = normalized.fragment
    if fragment not in _MONOTONE_FRAGMENTS:
        return (
            f"query fragment {fragment!r} is not monotone "
            "(degradation is sound only for CQ/UCQ)"
        )
    return None


# ----------------------------------------------------------------------
# Cache keys
# ----------------------------------------------------------------------
def _shard_data_fingerprint(
    database: ShardedDatabase,
    shard: int,
    plan: ShardPlan,
    full_fp: str | None,
) -> str:
    """Hash of exactly the data this shard's partial result depends on."""
    hasher = hashlib.sha1()
    for name in plan.sharded_relations:
        hasher.update(
            f"fragment:{name!r}@{shard}:"
            f"{database.fragment_fingerprint(name, shard)}\n".encode("utf-8")
        )
    for name in plan.broadcast_relations:
        hasher.update(
            f"broadcast:{name!r}:{database.relation_fingerprint(name)}\n".encode(
                "utf-8"
            )
        )
    if plan.uses_domain:
        # Dom^k ranges over the whole active domain: key conservatively
        # on the full database content.
        hasher.update(f"domain:{full_fp}\n".encode("utf-8"))
    return hasher.hexdigest()


def _task_database(
    database: ShardedDatabase, shard: int, plan: ShardPlan
) -> Database:
    """The smallest database a shard task needs (cheap to pickle).

    Plans containing ``Dom^k`` get the complete shard view so the active
    domain matches the monolithic one; everything else gets only the
    relations the rewritten plan actually reads.
    """
    if plan.uses_domain:
        return database.shard_view(shard)
    relations = {
        name: database[name] for name in plan.broadcast_relations
    }
    for name in plan.sharded_relations:
        relations[shard_relation_name(name)] = database.fragment(name, shard)
    return Database(relations)


# ----------------------------------------------------------------------
# Orchestration
# ----------------------------------------------------------------------
@dataclass
class _PlannedShardedCall:
    """A distributable call, cache-probed and ready for its executor."""

    spec: ShardableSpec
    plan: ShardPlan
    partials: list  # ShardPartial | None per shard; cached ones filled in
    tasks: list[ShardTask]
    hits: int
    start: float


def _plan_sharded_call(
    normalized: NormalizedQuery,
    database: ShardedDatabase,
    strategy: EvaluationStrategy,
    *,
    semantics: str,
    options: Mapping[str, Any],
    cache: ResultCache | None,
    database_fp: str | None,
    deadline: Deadline | None = None,
) -> "tuple[str, None] | tuple[None, _PlannedShardedCall]":
    """Plan one sharded call: ``(reason, None)`` means coalesced fallback."""
    spec = _shardable_spec(strategy)
    plan: ShardPlan | None = None
    if spec is None:
        return f"strategy {strategy.name!r} is not shard-aware", None
    if normalized.algebra is None:
        return (
            "no relational algebra plan to distribute "
            f"({'; '.join(normalized.notes) or normalized.frontend + ' frontend'})",
            None,
        )
    try:
        plan = shard_plan(normalized.algebra, spec.ops_for(semantics))
    except NonDistributableError as exc:
        return str(exc), None

    start = time.perf_counter()
    count = database.shard_count
    # Only cache keys need the canonical rendering; with caching off,
    # exotic option values stay usable (the use_cache=False escape
    # hatch canonical_option_value's error message recommends).
    options_key = canonical_options(options) if cache is not None else ()
    rewritten_fp = query_fingerprint(plan.plan)
    full_fp = None
    if plan.uses_domain and cache is not None:
        full_fp = database_fp or database_fingerprint(database)

    partials: list[ShardPartial | None] = [None] * count
    tasks: list[ShardTask] = []
    hits = 0
    # Captured once for the whole fan-out: every shard task links back
    # to the same ambient span (None when the call is untraced).
    trace_ctx = SpanContext.capture()
    with span("shard.plan", shards=count) as planning:
        for shard in range(count):
            key = None
            if cache is not None:
                key = (
                    "shard-partial",
                    rewritten_fp,
                    strategy.name,
                    semantics,
                    options_key,
                    _shard_data_fingerprint(database, shard, plan, full_fp),
                )
                cached = cache.get(key)
                if cached is not None:
                    partials[shard] = cached
                    hits += 1
                    continue
            tasks.append(
                ShardTask(
                    shard=shard,
                    plan=plan.plan,
                    database=_task_database(database, shard, plan),
                    strategy=strategy.name,
                    semantics=semantics,
                    options=tuple(options.items()),
                    cache_key=key,
                    deadline=deadline,
                    trace=trace_ctx,
                )
            )
        if hits:
            planning.incr("partial_cache_hits", hits)
        if tasks:
            planning.incr("partial_cache_misses", len(tasks))
    return None, _PlannedShardedCall(
        spec=spec, plan=plan, partials=partials, tasks=tasks, hits=hits, start=start
    )


def _call_merge(merge: MergeFn, partials, **kwargs) -> StrategyOutcome:
    """Invoke a merge function, tolerating the pre-capability signature.

    Merges written before the capability redesign take ``(partials, *,
    semantics, database)``; the new contract adds ``normalized`` and
    ``strategy``.  The signature is inspected (rather than retried on
    ``TypeError``, which would mask genuine errors inside the merge) and
    unknown keywords are dropped for legacy callables.
    """
    try:
        parameters = inspect.signature(merge).parameters
    except (TypeError, ValueError):  # builtins/C callables: pass everything
        return merge(partials, **kwargs)
    if any(p.kind is p.VAR_KEYWORD for p in parameters.values()):
        return merge(partials, **kwargs)
    accepted = {name: value for name, value in kwargs.items() if name in parameters}
    return merge(partials, **accepted)


def _coalesced_result(
    result: QueryResult, database: ShardedDatabase, reason: str | None
) -> QueryResult:
    sharding_meta = {
        "mode": "coalesced",
        "shards": database.shard_count,
        "reason": reason,
    }
    return replace(result, metadata={**result.metadata, "sharding": sharding_meta})


def _absorb_partials(
    planned: _PlannedShardedCall,
    computed: Sequence[ShardPartial | None],
    cache: ResultCache | None,
) -> None:
    # A ``None`` hole is a shard that failed under
    # ``on_shard_error="degrade"``: it contributes nothing to the merge
    # and — crucially — is never cached, so a fault can only *miss* the
    # partial cache, never poison it.
    for task, partial in zip(planned.tasks, computed):
        if partial is None:
            continue
        if partial.metadata and "trace" in partial.metadata:
            # The worker's span export is grafted into the live trace by
            # the caller; the stored partial must not carry it (cached
            # partials are shared by traced and untraced calls).
            partial = replace(
                partial,
                metadata={
                    k: v for k, v in partial.metadata.items() if k != "trace"
                },
            )
        planned.partials[task.shard] = partial
        if cache is not None and task.cache_key is not None:
            cache.put(task.cache_key, partial)


_BROKEN_POOL_NAMES = frozenset(
    {"BrokenProcessPool", "BrokenThreadPool", "BrokenExecutor", "BrokenWorkerError"}
)


def _describe_failure(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}"


def _is_broken_pool(exc: BaseException) -> bool:
    return any(cls.__name__ in _BROKEN_POOL_NAMES for cls in type(exc).__mro__)


def _retry_admissible(
    exc: BaseException,
    attempts: int,
    retry: RetryPolicy | None,
    deadline: Deadline | None,
    on_shard_error: str,
) -> bool:
    """May this shard failure be retried (rather than raised/degraded)?"""
    if on_shard_error == "raise" or retry is None:
        return False
    if isinstance(exc, DeadlineExceeded):
        return False
    if deadline is not None and deadline.expired:
        return False
    return attempts < retry.max_attempts and retry.is_retryable(exc)


def _resubmit(executor: ShardExecutor, task: ShardTask, exc: BaseException):
    """Resubmit after a transient failure, reviving a broken pool first."""
    if _is_broken_pool(exc):
        reset = getattr(executor, "reset", None)
        if reset is not None:
            reset()
    return executor.submit(task)


def _run_tasks_resilient(
    executor: ShardExecutor,
    tasks: Sequence[ShardTask],
    *,
    deadline: Deadline | None = None,
    retry: RetryPolicy | None = None,
    on_shard_error: str = "raise",
) -> tuple[list[ShardPartial | None], dict[int, str], int]:
    """Run shard tasks under the resilience contract.

    Returns ``(partials, failures, retries)``: ``partials`` aligned with
    ``tasks`` (``None`` per shard dropped by ``"degrade"``),
    ``failures`` mapping the dropped shard index to its final error, and
    the total number of retries performed.  ``"raise"`` propagates the
    first failure; ``"retry"`` retries transient failures per the
    policy, then propagates; ``"degrade"`` retries, then records the
    shard as failed and carries on.  A ``deadline`` bounds the whole
    fan-out — expiry raises :class:`DeadlineExceeded` even while shards
    are still running.
    """
    if on_shard_error == "raise" and retry is None and deadline is None:
        # The fast path: identical to the pre-resilience behaviour.
        return list(executor.run(tasks)), {}, 0
    partials: list[ShardPartial | None] = [None] * len(tasks)
    failures: dict[int, str] = {}
    retries = 0
    attempts = [0] * len(tasks)
    pending = {executor.submit(task): i for i, task in enumerate(tasks)}
    while pending:
        timeout = deadline.remaining() if deadline is not None else None
        done, not_done = concurrent.futures.wait(
            pending, timeout=timeout,
            return_when=concurrent.futures.FIRST_COMPLETED,
        )
        if not done:
            for future in not_done:
                future.cancel()
            raise DeadlineExceeded(
                f"sharded evaluation exceeded its deadline with "
                f"{len(not_done)} shard task(s) still running"
            )
        for future in done:
            index = pending.pop(future)
            try:
                partials[index] = future.result()
            except Exception as exc:
                if isinstance(exc, DeadlineExceeded):
                    raise
                attempts[index] += 1
                if _retry_admissible(
                    exc, attempts[index], retry, deadline, on_shard_error
                ):
                    retries += 1
                    pause = retry.delay(attempts[index])
                    if deadline is not None:
                        pause = min(pause, deadline.remaining())
                    if pause > 0:
                        time.sleep(pause)
                    pending[_resubmit(executor, tasks[index], exc)] = index
                    continue
                if on_shard_error == "degrade":
                    failures[tasks[index].shard] = _describe_failure(exc)
                    continue
                raise
    return partials, failures, retries


async def _run_tasks_resilient_async(
    executor: ShardExecutor,
    tasks: Sequence[ShardTask],
    *,
    deadline: Deadline | None = None,
    retry: RetryPolicy | None = None,
    on_shard_error: str = "raise",
) -> tuple[list[ShardPartial | None], dict[int, str], int]:
    """Awaitable twin of :func:`_run_tasks_resilient` (same contract)."""
    if on_shard_error == "raise" and retry is None and deadline is None:
        return list(await executor.run_async(tasks)), {}, 0
    partials: list[ShardPartial | None] = [None] * len(tasks)
    failures: dict[int, str] = {}
    retries = 0
    attempts = [0] * len(tasks)
    pending = {
        asyncio.ensure_future(asyncio.wrap_future(executor.submit(task))): i
        for i, task in enumerate(tasks)
    }
    try:
        while pending:
            timeout = deadline.remaining() if deadline is not None else None
            done, not_done = await asyncio.wait(
                pending, timeout=timeout, return_when=asyncio.FIRST_COMPLETED
            )
            if not done:
                raise DeadlineExceeded(
                    f"sharded evaluation exceeded its deadline with "
                    f"{len(not_done)} shard task(s) still running"
                )
            for future in done:
                index = pending.pop(future)
                try:
                    partials[index] = future.result()
                except Exception as exc:
                    if isinstance(exc, DeadlineExceeded):
                        raise
                    attempts[index] += 1
                    if _retry_admissible(
                        exc, attempts[index], retry, deadline, on_shard_error
                    ):
                        retries += 1
                        pause = retry.delay(attempts[index])
                        if deadline is not None:
                            pause = min(pause, deadline.remaining())
                        if pause > 0:
                            await asyncio.sleep(pause)
                        resubmitted = _resubmit(executor, tasks[index], exc)
                        pending[
                            asyncio.ensure_future(asyncio.wrap_future(resubmitted))
                        ] = index
                        continue
                    if on_shard_error == "degrade":
                        failures[tasks[index].shard] = _describe_failure(exc)
                        continue
                    raise
    finally:
        for future in pending:
            future.cancel()
    return partials, failures, retries


def _merged_backend_metadata(partials: Sequence[ShardPartial]) -> dict[str, Any]:
    """Aggregate the per-shard backend decisions into one metadata note.

    Merge functions rebuild outcome metadata from scratch, so the
    execution-backend decision each shard's strategy call recorded
    (``metadata["backend"]`` — see :mod:`repro.exec`) would be lost.
    When every shard resolved to the same backend the shared note is
    reused; shards that diverged (e.g. one fragment held a value the SQL
    compiler cannot encode) are reported as ``resolved: "mixed"``.
    """
    notes = [
        partial.metadata.get("backend")
        for partial in partials
        if partial is not None and partial.metadata
    ]
    notes = [note for note in notes if note]
    if not notes:
        return {}
    if len({note.get("resolved") for note in notes}) == 1:
        return {"backend": dict(notes[0])}
    return {
        "backend": {
            "requested": notes[0].get("requested"),
            "resolved": "mixed",
            "reason": "shards resolved different backends",
        }
    }


def _finish_sharded(
    planned: _PlannedShardedCall,
    normalized: NormalizedQuery,
    database: ShardedDatabase,
    strategy: EvaluationStrategy,
    semantics: str,
    executor_kind: str,
    *,
    failures: Mapping[int, str] | None = None,
    retries: int = 0,
) -> QueryResult:
    count = database.shard_count
    failures = failures or {}
    surviving = [p for p in planned.partials if p is not None]
    if not surviving:
        raise EngineError(
            "every shard failed; nothing to degrade to "
            f"(failures: {dict(failures)})"
        )
    with span(
        "shard.merge", merge=getattr(planned.spec.merge, "__name__", "merge")
    ) as merging:
        outcome = _call_merge(
            planned.spec.merge,
            surviving,
            semantics=semantics,
            database=database,
            normalized=normalized,
            strategy=strategy,
        )
        merging.incr("rows_out", len(outcome.answer))
    elapsed = time.perf_counter() - planned.start
    obs_metrics.incr(
        "sharding.evaluations", strategy=strategy.name, executor=executor_kind
    )
    if planned.hits:
        obs_metrics.incr("sharding.partial_cache_hits", planned.hits)
    if planned.tasks:
        obs_metrics.incr("sharding.partial_cache_misses", len(planned.tasks))
    if retries:
        obs_metrics.incr("sharding.retries", retries)
    if failures:
        obs_metrics.incr("sharding.degraded_shards", len(failures))
    sharding_meta = {
        "mode": "distributed",
        "shards": count,
        "executor": executor_kind,
        "partial_cache_hits": planned.hits,
        "sharded_relations": list(planned.plan.sharded_relations),
        "broadcast_relations": list(planned.plan.broadcast_relations),
    }
    metadata = {
        **outcome.metadata,
        **_merged_backend_metadata(surviving),
        "sharding": sharding_meta,
    }
    if retries:
        metadata["resilience"] = {"retries": retries}
    if failures:
        # A degraded merge is an under-approximation, never an exact
        # answer — and with the naïve merge the "exact" claim (Theorem
        # 4.4) only covers the full database, so it is withdrawn here.
        metadata["degraded"] = {
            "failed_shards": sorted(failures),
            "errors": {shard: failures[shard] for shard in sorted(failures)},
            "surviving_shards": count - len(failures),
            "guarantee": "sound-subset",
        }
        if metadata.get("exact"):
            metadata["exact"] = False
    return QueryResult(
        strategy=strategy.name,
        semantics=semantics,
        relation=outcome.answer,
        tuples=outcome.annotated,
        certain=outcome.certain,
        possible=outcome.possible,
        certainly_false=outcome.certainly_false,
        elapsed=elapsed,
        from_cache=not planned.tasks and count > 0,
        fingerprint=normalized.fingerprint,
        metadata=metadata,
    )


def evaluate_sharded(
    normalized: NormalizedQuery,
    database: ShardedDatabase,
    strategy: EvaluationStrategy,
    *,
    semantics: str,
    options: Mapping[str, Any],
    executor: ShardExecutor,
    cache: ResultCache | None,
    database_fp: str | None = None,
    deadline: Deadline | None = None,
    on_shard_error: str = "raise",
    retry: RetryPolicy | None = None,
    evaluate_coalesced: Callable[[], QueryResult],
) -> QueryResult:
    """Evaluate on a sharded database, falling back to coalesced evaluation.

    ``evaluate_coalesced`` is the engine's monolithic path (already
    closed over the query, database and caching arguments); it is used
    whenever the (strategy, plan, semantics) combination does not
    distribute.

    ``deadline``/``on_shard_error``/``retry`` implement the resilience
    contract (see :mod:`repro.resilience` and
    :func:`_run_tasks_resilient`).  ``"degrade"`` is capability-gated:
    when the merge or the query's fragment cannot guarantee a sound
    subset (:func:`_degrade_blocker`), shard failures are retried but a
    persistent failure raises — wrapped in an
    :class:`~repro.engine.errors.EngineError` naming the blocker, so the
    caller learns *why* degradation was unavailable.
    """
    reason, planned = _plan_sharded_call(
        normalized,
        database,
        strategy,
        semantics=semantics,
        options=options,
        cache=cache,
        database_fp=database_fp,
        deadline=deadline,
    )
    if planned is None:
        return _coalesced_result(evaluate_coalesced(), database, reason)
    failures: dict[int, str] = {}
    retries = 0
    if planned.tasks:
        blocker = (
            _degrade_blocker(planned.spec, normalized)
            if on_shard_error == "degrade"
            else None
        )
        effective = "retry" if blocker is not None else on_shard_error
        with span(
            "shard.fanout", executor=executor.kind, tasks=len(planned.tasks)
        ) as fanout:
            try:
                computed, failures, retries = _run_tasks_resilient(
                    executor,
                    planned.tasks,
                    deadline=deadline,
                    retry=retry,
                    on_shard_error=effective,
                )
            except DeadlineExceeded:
                raise
            except Exception as exc:
                if blocker is None:
                    raise
                raise EngineError(
                    f"shard failed and on_shard_error='degrade' is unavailable: "
                    f"{blocker}"
                ) from exc
            if retries:
                fanout.incr("retries", retries)
            for partial in computed:
                if partial is not None and partial.metadata:
                    exported = partial.metadata.get("trace")
                    if exported:
                        fanout.graft(exported)
        _absorb_partials(planned, computed, cache)
    return _finish_sharded(
        planned,
        normalized,
        database,
        strategy,
        semantics,
        executor.kind,
        failures=failures,
        retries=retries,
    )


async def evaluate_sharded_async(
    normalized: NormalizedQuery,
    database: ShardedDatabase,
    strategy: EvaluationStrategy,
    *,
    semantics: str,
    options: Mapping[str, Any],
    executor: ShardExecutor,
    cache: ResultCache | None,
    database_fp: str | None = None,
    deadline: Deadline | None = None,
    on_shard_error: str = "raise",
    retry: RetryPolicy | None = None,
    evaluate_coalesced: Callable[[], Any],
    limiter: Any = None,
) -> QueryResult:
    """Awaitable twin of :func:`evaluate_sharded`.

    Planning, cache probing and merging are shared with the sync path;
    only the executor hop differs — cache misses go through the
    executor's :meth:`~repro.sharding.executor.ShardExecutor.run_async`
    submit surface so several sharded evaluations can overlap on one
    event loop.  ``evaluate_coalesced`` is awaited (the async engine's
    monolithic path); ``limiter`` is an optional async context manager
    (the engine's ``max_concurrency`` semaphore) held around the
    executor hop only, so the fallback path cannot deadlock on it.
    """
    reason, planned = _plan_sharded_call(
        normalized,
        database,
        strategy,
        semantics=semantics,
        options=options,
        cache=cache,
        database_fp=database_fp,
        deadline=deadline,
    )
    if planned is None:
        return _coalesced_result(await evaluate_coalesced(), database, reason)
    failures: dict[int, str] = {}
    retries = 0
    if planned.tasks:
        blocker = (
            _degrade_blocker(planned.spec, normalized)
            if on_shard_error == "degrade"
            else None
        )
        effective = "retry" if blocker is not None else on_shard_error
        with span(
            "shard.fanout", executor=executor.kind, tasks=len(planned.tasks)
        ) as fanout:
            try:
                if limiter is not None:
                    async with limiter:
                        computed, failures, retries = await _run_tasks_resilient_async(
                            executor,
                            planned.tasks,
                            deadline=deadline,
                            retry=retry,
                            on_shard_error=effective,
                        )
                else:
                    computed, failures, retries = await _run_tasks_resilient_async(
                        executor,
                        planned.tasks,
                        deadline=deadline,
                        retry=retry,
                        on_shard_error=effective,
                    )
            except DeadlineExceeded:
                raise
            except Exception as exc:
                if blocker is None:
                    raise
                raise EngineError(
                    f"shard failed and on_shard_error='degrade' is unavailable: "
                    f"{blocker}"
                ) from exc
            if retries:
                fanout.incr("retries", retries)
            for partial in computed:
                if partial is not None and partial.metadata:
                    exported = partial.metadata.get("trace")
                    if exported:
                        fanout.graft(exported)
        _absorb_partials(planned, computed, cache)
    return _finish_sharded(
        planned,
        normalized,
        database,
        strategy,
        semantics,
        executor.kind,
        failures=failures,
        retries=retries,
    )
