"""``ShardedDatabase``: a database split into horizontal fragments.

A :class:`ShardedDatabase` *is a* :class:`~repro.datamodel.database.Database`
— the base class holds the coalesced (union) view, so every strategy,
fingerprint and exact-answer routine that takes a database keeps working
unchanged.  On top of that it maintains, per relation, a tuple of
``shard_count`` fragment relations whose bag union is the coalesced
relation, plus a cache of per-fragment content fingerprints so that
mutating one shard invalidates only that shard's cached partial results.

Shard views
-----------

The shard planner rewrites a distributable plan so that the partitioned
lineage reads ``R::shard`` while broadcast subtrees keep reading ``R``.
:meth:`shard_view` materialises the matching database for shard ``i``:
every relation under its own name (full, for broadcast) plus every
fragment under the mangled ``::shard`` name.  Views share the underlying
:class:`Relation` objects, so they are cheap.

Instances are immutable in the same sense as ``Database``: the mutators
(:meth:`with_relation`, :meth:`add_rows`, :meth:`with_fragment`) return
new instances, carrying over the fingerprint cache entries of untouched
fragments.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Mapping, Sequence

from ..datamodel.database import Database
from ..datamodel.relation import Relation
from ..engine.cache import relation_fingerprint
from .partition import HashPartitioner, Partitioner

__all__ = ["SHARD_SUFFIX", "ShardedDatabase", "shard_relation_name"]

#: Suffix appended to a relation name to address its per-shard fragment
#: inside a shard view.  Base relation names must not contain it.
SHARD_SUFFIX = "::shard"


def shard_relation_name(name: str) -> str:
    """The shard-view name of the fragment of relation ``name``."""
    return name + SHARD_SUFFIX


class ShardedDatabase(Database):
    """A database whose relations are horizontally partitioned."""

    def __init__(
        self,
        relations: Mapping[str, Relation] | None = None,
        *,
        shards: int,
        partitioner: Partitioner | None = None,
        fragments: Mapping[str, Sequence[Relation]] | None = None,
    ):
        super().__init__(relations)
        if shards < 1:
            raise ValueError("a sharded database needs at least 1 shard")
        self._shards = shards
        self.partitioner = partitioner or HashPartitioner()
        for name in self._relations:
            if SHARD_SUFFIX in name:
                raise ValueError(
                    f"relation name {name!r} contains the reserved shard "
                    f"suffix {SHARD_SUFFIX!r}"
                )
        if fragments is None:
            fragments = {
                name: self.partitioner.partition(relation, shards)
                for name, relation in self._relations.items()
            }
        self._fragments: dict[str, tuple[Relation, ...]] = {}
        for name, parts in fragments.items():
            parts = tuple(parts)
            if name not in self._relations:
                raise ValueError(f"fragments given for unknown relation {name!r}")
            if len(parts) != shards:
                raise ValueError(
                    f"relation {name!r} has {len(parts)} fragments, expected {shards}"
                )
            self._fragments[name] = parts
        missing = set(self._relations) - set(self._fragments)
        if missing:
            raise ValueError(f"missing fragments for relations {sorted(missing)}")
        self._fragment_fps: dict[tuple[str, int], str] = {}
        self._relation_fps: dict[str, str] = {}
        self._views: dict[int, Database] = {}

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_database(
        cls,
        database: Database,
        shards: int,
        partitioner: Partitioner | None = None,
    ) -> "ShardedDatabase":
        """Partition an existing database into ``shards`` fragments."""
        return cls(
            dict(database.relations()), shards=shards, partitioner=partitioner
        )

    # ------------------------------------------------------------------
    # Shard access
    # ------------------------------------------------------------------
    @property
    def shard_count(self) -> int:
        return self._shards

    def fragment(self, name: str, shard: int) -> Relation:
        """The fragment of relation ``name`` held by ``shard``."""
        return self._fragments[name][shard]

    def fragments(self, name: str) -> tuple[Relation, ...]:
        return self._fragments[name]

    def shard_database(self, shard: int) -> Database:
        """A plain database of shard ``shard``'s fragments (for inspection)."""
        return Database(
            {name: parts[shard] for name, parts in self._fragments.items()}
        )

    def shard_view(self, shard: int) -> Database:
        """The database a shard plan runs on: full relations + fragments."""
        view = self._views.get(shard)
        if view is None:
            relations = dict(self._relations)
            for name, parts in self._fragments.items():
                relations[shard_relation_name(name)] = parts[shard]
            view = Database(relations)
            self._views[shard] = view
        return view

    def verify_fragments(self) -> None:
        """Check the invariant: fragments bag-partition every relation."""
        for name, relation in self._relations.items():
            combined: Counter = Counter()
            for part in self._fragments[name]:
                if part.attributes != relation.attributes:
                    raise AssertionError(
                        f"fragment of {name!r} has attributes {part.attributes}, "
                        f"expected {relation.attributes}"
                    )
                combined.update(part.rows_bag())
            if combined != relation.rows_bag():
                raise AssertionError(
                    f"fragments of {name!r} do not union to the coalesced relation"
                )

    # ------------------------------------------------------------------
    # Fingerprints
    # ------------------------------------------------------------------
    def fragment_fingerprint(self, name: str, shard: int) -> str:
        """Content hash of one fragment (cached; keys partial results)."""
        key = (name, shard)
        fingerprint = self._fragment_fps.get(key)
        if fingerprint is None:
            fingerprint = relation_fingerprint(self._fragments[name][shard])
            self._fragment_fps[key] = fingerprint
        return fingerprint

    def relation_fingerprint(self, name: str) -> str:
        """Content hash of the coalesced relation ``name`` (cached)."""
        fingerprint = self._relation_fps.get(name)
        if fingerprint is None:
            fingerprint = relation_fingerprint(self._relations[name])
            self._relation_fps[name] = fingerprint
        return fingerprint

    # ------------------------------------------------------------------
    # Mutators (immutable style; fingerprint caches carried over)
    # ------------------------------------------------------------------
    def _derive(
        self,
        relations: Mapping[str, Relation],
        fragments: Mapping[str, Sequence[Relation]],
        *,
        touched: str | None,
        touched_shards: Iterable[int] | None = None,
    ) -> "ShardedDatabase":
        """A new instance; fingerprints survive except for ``touched``.

        With ``touched_shards`` given, only those fragments of the
        touched relation are invalidated (the incremental append path);
        otherwise every fragment of the touched relation is dropped.
        """
        new = ShardedDatabase(
            relations,
            shards=self._shards,
            partitioner=self.partitioner,
            fragments=fragments,
        )
        dropped = None if touched_shards is None else set(touched_shards)
        for (name, shard), fingerprint in self._fragment_fps.items():
            if name == touched and (dropped is None or shard in dropped):
                continue
            if name in new._fragments:
                new._fragment_fps[(name, shard)] = fingerprint
        for name, fingerprint in self._relation_fps.items():
            if name != touched and name in new._relations:
                new._relation_fps[name] = fingerprint
        return new

    def with_relation(self, name: str, relation: Relation) -> "ShardedDatabase":
        """Replace (or add) a relation, repartitioning it across shards."""
        relations = dict(self._relations)
        relations[name] = relation
        fragments = dict(self._fragments)
        fragments[name] = self.partitioner.partition(relation, self._shards)
        return self._derive(relations, fragments, touched=name)

    def without_relation(self, name: str) -> "ShardedDatabase":
        relations = dict(self._relations)
        relations.pop(name, None)
        fragments = dict(self._fragments)
        fragments.pop(name, None)
        return self._derive(relations, fragments, touched=name)

    def copy(self) -> "ShardedDatabase":
        return self._derive(dict(self._relations), dict(self._fragments), touched=None)

    def add_rows(self, name: str, rows: Iterable[Sequence]) -> "ShardedDatabase":
        """Append rows to relation ``name``.

        With an incremental partitioner (hash), only the fragments that
        receive rows are rebuilt, so the untouched shards keep their
        fingerprints — and hence their cached partial results.
        """
        relation = self[name]
        rows = [tuple(row) for row in rows]
        if not self.partitioner.supports_incremental:
            return self.with_relation(name, relation.add_rows(rows))
        per_shard: dict[int, list[tuple]] = {}
        for row in rows:
            shard = self.partitioner.shard_of(
                row, self._shards, relation.attributes
            )
            per_shard.setdefault(shard, []).append(row)
        fragments = list(self._fragments[name])
        for shard, extra in per_shard.items():
            fragments[shard] = fragments[shard].add_rows(extra)
        relations = dict(self._relations)
        relations[name] = relation.add_rows(rows)
        all_fragments = dict(self._fragments)
        all_fragments[name] = tuple(fragments)
        return self._derive(
            relations, all_fragments, touched=name, touched_shards=per_shard
        )

    def with_fragment(
        self, name: str, shard: int, fragment: Relation
    ) -> "ShardedDatabase":
        """Replace one fragment directly; the coalesced relation follows."""
        current = self._fragments[name]
        if fragment.attributes != current[shard].attributes:
            raise ValueError(
                f"fragment attributes {fragment.attributes} do not match "
                f"{current[shard].attributes}"
            )
        parts = list(current)
        parts[shard] = fragment
        combined: Counter = Counter()
        for part in parts:
            combined.update(part.rows_bag())
        relations = dict(self._relations)
        relations[name] = Relation.from_counter(fragment.attributes, combined)
        fragments = dict(self._fragments)
        fragments[name] = tuple(parts)
        return self._derive(
            relations, fragments, touched=name, touched_shards=(shard,)
        )

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}[{len(rel)}]" for name, rel in self._relations.items()
        )
        return (
            f"ShardedDatabase({parts}; shards={self._shards}, "
            f"partitioner={self.partitioner.name})"
        )
