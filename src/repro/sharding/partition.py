"""Row partitioners: how a relation is split into horizontal fragments.

A partitioner assigns every row of a relation to one of ``num_shards``
fragments.  The assignment must be deterministic across processes and
runs — the shard executor may evaluate fragments in worker processes,
and the per-shard result cache keys on fragment content — so the hash
partitioner hashes a canonical rendering of the values rather than
relying on Python's per-interpreter salted ``hash()``.

Two partitioners are provided:

* :class:`HashPartitioner` — each row goes to the shard named by a
  stable hash of the whole row (or of a configured key-attribute
  subset).  Supports incremental placement: appending rows touches only
  the fragments the new rows land in.
* :class:`RoundRobinPartitioner` — rows are dealt out cyclically in the
  relation's canonical sort order, giving near-perfectly balanced
  fragments.  Placement is a function of the whole relation, so
  appending rows repartitions it.
"""

from __future__ import annotations

import hashlib
from typing import Sequence

from ..datamodel.relation import Relation
from ..engine.cache import canonical_value

__all__ = ["Partitioner", "HashPartitioner", "RoundRobinPartitioner"]


def _stable_row_hash(values: Sequence) -> int:
    """A process-stable 64-bit hash of a tuple of database values."""
    hasher = hashlib.blake2b(digest_size=8)
    for value in values:
        hasher.update(canonical_value(value).encode("utf-8", "replace"))
        hasher.update(b"\x1f")
    return int.from_bytes(hasher.digest(), "big")


class Partitioner:
    """Base class: assigns rows of a relation to shard indices."""

    #: Short name used in reprs, fingerprints and benchmark tables.
    name: str = "abstract"
    #: True when :meth:`shard_of` places a row independently of the rest
    #: of the relation, so appended rows can be routed without
    #: repartitioning everything.
    supports_incremental: bool = False

    def shard_of(
        self, row: tuple, num_shards: int, attributes: Sequence[str]
    ) -> int:
        raise NotImplementedError

    def partition(self, relation: Relation, num_shards: int) -> tuple[Relation, ...]:
        """Split ``relation`` into ``num_shards`` fragments.

        The fragments form a bag partition: summing multiplicities over
        the fragments reproduces the original relation exactly.
        """
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        counters: list[dict] = [{} for _ in range(num_shards)]
        for row, count in relation.iter_rows(with_multiplicity=True):
            shard = self.shard_of(row, num_shards, relation.attributes)
            counters[shard][row] = counters[shard].get(row, 0) + count
        return tuple(
            Relation.from_counter(relation.attributes, counter) for counter in counters
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class HashPartitioner(Partitioner):
    """Stable hash partitioning, optionally keyed on a subset of attributes.

    Without ``attributes`` the whole row is hashed, so equal rows (and
    all their bag copies) always land in the same shard.  With
    ``attributes`` only the named columns are hashed, co-locating rows
    that share a key; attributes missing from a relation fall back to
    hashing the whole row for that relation.
    """

    name = "hash"
    supports_incremental = True

    def __init__(self, attributes: Sequence[str] | None = None):
        self.attributes = tuple(attributes) if attributes is not None else None
        # attribute tuple → key column indexes (None: hash the whole row)
        self._index_cache: dict[tuple[str, ...], tuple[int, ...] | None] = {}

    def _key_indexes(
        self, attributes: Sequence[str]
    ) -> tuple[int, ...] | None:
        if self.attributes is None:
            return None
        attributes = tuple(attributes)
        try:
            return self._index_cache[attributes]
        except KeyError:
            pass
        try:
            indexes: tuple[int, ...] | None = tuple(
                attributes.index(a) for a in self.attributes
            )
        except ValueError:
            indexes = None
        self._index_cache[attributes] = indexes
        return indexes

    def shard_of(
        self, row: tuple, num_shards: int, attributes: Sequence[str]
    ) -> int:
        indexes = self._key_indexes(attributes)
        values = row if indexes is None else tuple(row[i] for i in indexes)
        return _stable_row_hash(values) % num_shards

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.attributes is None:
            return "HashPartitioner()"
        return f"HashPartitioner(attributes={self.attributes!r})"


class RoundRobinPartitioner(Partitioner):
    """Deal rows out cyclically in canonical sort order.

    Bag copies of the same row are dealt out individually, so a row with
    multiplicity 5 spreads over 5 (cyclic) fragments.  Fragment sizes
    differ by at most one row, which makes this the best choice for the
    balanced-work benchmarks; the price is that placement depends on the
    whole relation, so appends repartition (``supports_incremental`` is
    False).
    """

    name = "round-robin"
    supports_incremental = False

    def shard_of(
        self, row: tuple, num_shards: int, attributes: Sequence[str]
    ) -> int:
        raise TypeError(
            "round-robin placement is a function of the whole relation; "
            "use partition()"
        )

    def partition(self, relation: Relation, num_shards: int) -> tuple[Relation, ...]:
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        counters: list[dict] = [{} for _ in range(num_shards)]
        index = 0
        for row in relation.sorted_rows():
            for _ in range(relation.multiplicity(row)):
                shard = index % num_shards
                counters[shard][row] = counters[shard].get(row, 0) + 1
                index += 1
        return tuple(
            Relation.from_counter(relation.attributes, counter) for counter in counters
        )
