"""Shard executors: run per-shard evaluation tasks serially or in parallel.

A :class:`ShardTask` is a self-contained unit of work — a rewritten
plan, the (trimmed) database it runs on, and the strategy to apply — so
it can be shipped to a worker process.  Three executors are provided:

* ``serial`` — evaluate shards one after another in-process (the
  default; also what the per-shard cache tests use);
* ``thread`` — a :class:`concurrent.futures.ThreadPoolExecutor`.  The
  evaluators are pure Python, so threads mostly help when strategies
  release the GIL (they rarely do) — provided for completeness and for
  I/O-bound cache backends;
* ``process`` — a :class:`concurrent.futures.ProcessPoolExecutor`; the
  strategies are pure functions of (plan, database), so fragments
  evaluate in parallel across cores.  The pool is created lazily and
  reused across calls.

Everything a task carries (plans, conditions, relations, nulls) is a
frozen dataclass or a ``__slots__`` value class, hence picklable.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import os
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Hashable, Mapping, Sequence

from ..algebra import ast as ra
from ..datamodel.database import Database
from ..datamodel.relation import Relation
from ..obs.trace import SpanContext
from ..resilience import Deadline, deadline_scope, fault_point

__all__ = [
    "ShardTask",
    "ShardPartial",
    "ShardExecutor",
    "SerialShardExecutor",
    "ThreadShardExecutor",
    "ProcessShardExecutor",
    "resolve_executor",
    "run_shard_task",
]


@dataclass(frozen=True)
class ShardTask:
    """One shard's evaluation: (plan, database, strategy, options)."""

    shard: int
    plan: ra.Query
    database: Database
    strategy: str
    semantics: str
    options: tuple[tuple[str, Any], ...] = ()
    #: Cache key the orchestrator stores the partial under (opaque here).
    cache_key: Hashable = field(default=None, compare=False)
    #: Wall-clock budget carried across the process boundary (the
    #: absolute monotonic point is system-wide on Linux).  Excluded from
    #: equality like the cache key: a deadline never changes what a task
    #: computes, only whether it finishes.
    deadline: Deadline | None = field(default=None, compare=False)
    #: Trace linkage (:class:`repro.obs.SpanContext`) when the
    #: orchestrating evaluation runs with ``trace=True``: the worker
    #: records its own span tree and ships the export back in the
    #: partial's metadata, where the orchestrator grafts it under the
    #: fan-out span.  Excluded from equality like the deadline — tracing
    #: observes, never steers.
    trace: SpanContext | None = field(default=None, compare=False)


@dataclass(frozen=True)
class ShardPartial:
    """What one shard's evaluation produced."""

    shard: int
    answer: Relation
    certain: Relation | None = None
    possible: Relation | None = None
    metadata: Mapping[str, Any] = field(default_factory=dict)


def run_shard_task(task: ShardTask) -> ShardPartial:
    """Evaluate one shard task; also the worker-process entry point."""
    # Imported here so a spawned (rather than forked) worker process
    # registers the built-in strategies before resolving by name.
    from ..engine.frontend import normalize_query
    from ..engine.registry import get_strategy

    fault_point("shard.task", shard=task.shard, strategy=task.strategy)
    strategy = get_strategy(task.strategy)
    trace_export = None
    with (
        nullcontext(None)
        if task.trace is None
        else task.trace.activate(
            f"shard[{task.shard}]", shard=task.shard, strategy=task.strategy
        )
    ) as root:
        normalized = normalize_query(task.plan, task.database.schema())
        with deadline_scope(task.deadline):
            outcome = strategy.run(
                normalized,
                task.database,
                semantics=task.semantics,
                **dict(task.options),
            )
        if root is not None:
            root.incr("rows_out", len(outcome.answer))
    if root is not None:
        trace_export = root.export()
    metadata = dict(outcome.metadata)
    if trace_export is not None:
        metadata["trace"] = trace_export
    return ShardPartial(
        shard=task.shard,
        answer=outcome.answer,
        certain=outcome.certain,
        possible=outcome.possible,
        metadata=metadata,
    )


class ShardExecutor:
    """Base class: maps shard tasks to partial results, order-preserving.

    Besides the blocking ``run``, every executor exposes an awaitable
    submit surface for :class:`~repro.engine.aio.AsyncEngine`:
    ``submit`` hands back a :class:`concurrent.futures.Future` per task
    and ``run_async`` awaits a whole batch without blocking the event
    loop (pooled executors park the work on their pools; the serial
    executor computes at submit time, which is the documented trade-off
    of choosing it).
    """

    kind: str = "abstract"

    def run(self, tasks: Sequence[ShardTask]) -> list[ShardPartial]:
        raise NotImplementedError

    def submit(self, task: ShardTask) -> "concurrent.futures.Future[ShardPartial]":
        """Start one task, returning its future (base: compute inline)."""
        future: concurrent.futures.Future = concurrent.futures.Future()
        try:
            future.set_result(run_shard_task(task))
        except BaseException as exc:
            future.set_exception(exc)
        return future

    async def run_async(self, tasks: Sequence[ShardTask]) -> list[ShardPartial]:
        """Awaitable twin of ``run``: submit everything, gather in order."""
        if not tasks:
            return []
        futures = [self.submit(task) for task in tasks]
        return list(
            await asyncio.gather(*(asyncio.wrap_future(f) for f in futures))
        )

    def close(self) -> None:
        """Release any worker pool (no-op for in-process executors)."""

    def reset(self) -> None:
        """Drop a (possibly broken) worker pool so the next submit gets a
        fresh one.  The retry path calls this after ``BrokenProcessPool``
        and friends — a crashed worker breaks the whole pool, so reviving
        it is a prerequisite for resubmitting the task."""
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class SerialShardExecutor(ShardExecutor):
    """Evaluate shards one after another in the calling process."""

    kind = "serial"

    def run(self, tasks: Sequence[ShardTask]) -> list[ShardPartial]:
        return [run_shard_task(task) for task in tasks]


class ThreadShardExecutor(ShardExecutor):
    """Evaluate shards on a thread pool."""

    kind = "thread"

    def __init__(self, max_workers: int | None = None):
        self.max_workers = max_workers
        self._pool: concurrent.futures.ThreadPoolExecutor | None = None

    def _ensure_pool(self) -> concurrent.futures.ThreadPoolExecutor:
        if self._pool is None:
            self._pool = concurrent.futures.ThreadPoolExecutor(
                max_workers=self.max_workers or (os.cpu_count() or 1)
            )
        return self._pool

    def run(self, tasks: Sequence[ShardTask]) -> list[ShardPartial]:
        if len(tasks) <= 1:
            return [run_shard_task(task) for task in tasks]
        return list(self._ensure_pool().map(run_shard_task, tasks))

    def submit(self, task: ShardTask) -> "concurrent.futures.Future[ShardPartial]":
        return self._ensure_pool().submit(run_shard_task, task)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None


class ProcessShardExecutor(ShardExecutor):
    """Evaluate shards on a process pool (true parallelism)."""

    kind = "process"

    def __init__(self, max_workers: int | None = None):
        self.max_workers = max_workers
        self._pool: concurrent.futures.ProcessPoolExecutor | None = None

    def _ensure_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        if self._pool is None:
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.max_workers or (os.cpu_count() or 1)
            )
        return self._pool

    def run(self, tasks: Sequence[ShardTask]) -> list[ShardPartial]:
        if len(tasks) <= 1:
            return [run_shard_task(task) for task in tasks]
        return list(self._ensure_pool().map(run_shard_task, tasks))

    def submit(self, task: ShardTask) -> "concurrent.futures.Future[ShardPartial]":
        return self._ensure_pool().submit(run_shard_task, task)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None


_EXECUTOR_KINDS = {
    "serial": SerialShardExecutor,
    "thread": ThreadShardExecutor,
    "threads": ThreadShardExecutor,
    "process": ProcessShardExecutor,
    "processes": ProcessShardExecutor,
}


def resolve_executor(spec: "str | ShardExecutor | None") -> ShardExecutor:
    """Turn an executor spec (name or instance) into an executor."""
    if spec is None:
        return SerialShardExecutor()
    if isinstance(spec, ShardExecutor):
        return spec
    cls = _EXECUTOR_KINDS.get(spec)
    if cls is None:
        raise ValueError(
            f"unknown shard executor {spec!r}; expected one of "
            f"{sorted(set(_EXECUTOR_KINDS))} or a ShardExecutor instance"
        )
    return cls()
