"""The six-valued epistemic logic L6v of Section 5.2, derived semantically.

The paper models incompleteness with sets of possible worlds: a
propositional interpretation assigns to each formula α the set ``t(α)``
of worlds known to satisfy it and the (disjoint) set ``f(α)`` of worlds
known to falsify it; the two need not cover all worlds.  The maximally
consistent theories of the epistemic modalities K(α), P(α), K(¬α), P(¬α)
give exactly six truth values:

======  =======================================================
``t``   α is true in all worlds
``f``   α is false in all worlds
``s``   α is true in some worlds and false in others
``st``  α is true in some world; nothing known about the rest
``sf``  α is false in some world; nothing known about the rest
``u``   nothing is known about α
======  =======================================================

We derive the connective tables *semantically*: a world can be of nine
kinds according to what it determines about α and β (true/false/unknown
each), a scenario is a non-empty set of world kinds, and the value of
α, β and α∘β in a scenario follows from which kinds are present.  The
table entry ω(τ₁, τ₂) is the most general truth value consistent with
all scenarios realising (τ₁, τ₂) — i.e. the knowledge-order greatest
lower bound of the realisable outcomes, exactly the paper's
"choose the most general one" rule.

Theorem 5.3 — Kleene's L3v is the maximal idempotent and distributive
sublogic of L6v — is verified exhaustively in
:mod:`repro.mvl.properties` and in the test suite.
"""

from __future__ import annotations

import itertools
from functools import lru_cache

from .logic import PropositionalLogic
from .truthvalues import (
    FALSE,
    SOMETIMES,
    SOMETIMES_FALSE,
    SOMETIMES_TRUE,
    TRUE,
    UNKNOWN,
    TruthValue,
)

__all__ = ["L6V", "six_valued_logic", "SIX_VALUES", "knowledge_order_6v"]

#: The six truth values in display order.
SIX_VALUES = (TRUE, FALSE, SOMETIMES, SOMETIMES_TRUE, SOMETIMES_FALSE, UNKNOWN)

#: Per-world knowledge about a single proposition: determined true,
#: determined false, or undetermined.
_WORLD_KINDS = ("1", "0", "?")


def _pattern(world_values: tuple[str, ...]) -> TruthValue:
    """The truth value of a proposition given its per-world knowledge."""
    has_true = "1" in world_values
    has_false = "0" in world_values
    all_true = all(v == "1" for v in world_values)
    all_false = all(v == "0" for v in world_values)
    if all_true:
        return TRUE
    if all_false:
        return FALSE
    if has_true and has_false:
        return SOMETIMES
    if has_true:
        return SOMETIMES_TRUE
    if has_false:
        return SOMETIMES_FALSE
    return UNKNOWN


def _combine_and(a: str, b: str) -> str:
    """Knowledge about α∧β at a world, from knowledge about α and β there."""
    if a == "0" or b == "0":
        return "0"
    if a == "1" and b == "1":
        return "1"
    return "?"


def _combine_or(a: str, b: str) -> str:
    if a == "1" or b == "1":
        return "1"
    if a == "0" and b == "0":
        return "0"
    return "?"


def _negate(a: str) -> str:
    return {"1": "0", "0": "1", "?": "?"}[a]


def knowledge_order_6v() -> frozenset[tuple[TruthValue, TruthValue]]:
    """The knowledge order of L6v: u below everything; st below t and s; sf below f and s."""
    pairs = {(v, v) for v in SIX_VALUES}
    pairs |= {(UNKNOWN, v) for v in SIX_VALUES}
    pairs |= {(SOMETIMES_TRUE, TRUE), (SOMETIMES_TRUE, SOMETIMES)}
    pairs |= {(SOMETIMES_FALSE, FALSE), (SOMETIMES_FALSE, SOMETIMES)}
    return frozenset(pairs)


def _glb(values: set[TruthValue], order: frozenset) -> TruthValue:
    lower = [
        candidate
        for candidate in SIX_VALUES
        if all((candidate, v) in order for v in values)
    ]
    for candidate in lower:
        if all((other, candidate) in order for other in lower):
            return candidate
    # The order is a meet-semilattice with bottom u, so this never happens.
    return UNKNOWN


@lru_cache(maxsize=1)
def six_valued_logic() -> PropositionalLogic:
    """Build L6v by enumerating scenarios over the nine world kinds."""
    order = knowledge_order_6v()

    # For binary connectives, a scenario is a non-empty set of world kinds,
    # each kind being a pair (knowledge about α, knowledge about β).
    binary_kinds = list(itertools.product(_WORLD_KINDS, repeat=2))
    and_outcomes: dict[tuple[TruthValue, TruthValue], set[TruthValue]] = {}
    or_outcomes: dict[tuple[TruthValue, TruthValue], set[TruthValue]] = {}
    for size in range(1, len(binary_kinds) + 1):
        for scenario in itertools.combinations(binary_kinds, size):
            alpha = _pattern(tuple(kind[0] for kind in scenario))
            beta = _pattern(tuple(kind[1] for kind in scenario))
            conj = _pattern(tuple(_combine_and(*kind) for kind in scenario))
            disj = _pattern(tuple(_combine_or(*kind) for kind in scenario))
            and_outcomes.setdefault((alpha, beta), set()).add(conj)
            or_outcomes.setdefault((alpha, beta), set()).add(disj)

    and_table = {key: _glb(outcomes, order) for key, outcomes in and_outcomes.items()}
    or_table = {key: _glb(outcomes, order) for key, outcomes in or_outcomes.items()}

    # Negation is deterministic on patterns: it swaps the true and false parts.
    not_table = {}
    neg_outcomes: dict[TruthValue, set[TruthValue]] = {}
    for size in range(1, len(_WORLD_KINDS) + 1):
        for scenario in itertools.combinations(_WORLD_KINDS, size):
            alpha = _pattern(scenario)
            negated = _pattern(tuple(_negate(kind) for kind in scenario))
            neg_outcomes.setdefault(alpha, set()).add(negated)
    for value, outcomes in neg_outcomes.items():
        not_table[value] = _glb(outcomes, order)

    return PropositionalLogic(
        name="L6v",
        values=SIX_VALUES,
        and_table=and_table,
        or_table=or_table,
        not_table=not_table,
        knowledge_order=order,
        bottom=UNKNOWN,
    )


#: The six-valued logic, constructed once at import time.
L6V = six_valued_logic()
