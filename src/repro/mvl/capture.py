"""Capturing three-valued logics in Boolean FO (Theorems 5.4 and 5.5).

Boolean FO *captures* a many-valued logic (FO(L), ⟦·⟧) if for every
formula φ and truth value τ there is a Boolean FO formula ψτ such that
``⟦φ⟧_{D, ā} = τ`` iff ``D ⊨ ψτ(ā)``.  The paper shows this holds for
FO(L3v) under every mixed semantics, and even for FO↑SQL — i.e. SQL's
three-valued logic adds no expressive power over Boolean FO.

The construction here is the standard pair translation: each three-valued
formula φ is mapped to a pair ``(φ_t, φ_f)`` of Boolean formulae
capturing "φ is true" and "φ is false"; ``φ_u`` is then ``¬φ_t ∧ ¬φ_f``.
The rules follow Kleene's tables::

    (¬φ)_t = φ_f                (¬φ)_f = φ_t
    (φ∧ψ)_t = φ_t ∧ ψ_t         (φ∧ψ)_f = φ_f ∨ ψ_f
    (φ∨ψ)_t = φ_t ∨ ψ_t         (φ∨ψ)_f = φ_f ∧ ψ_f
    (∃x φ)_t = ∃x φ_t           (∃x φ)_f = ∀x φ_f
    (∀x φ)_t = ∀x φ_t           (∀x φ)_f = ∃x φ_f
    (↑φ)_t  = φ_t               (↑φ)_f  = ¬φ_t

and, for atoms, the Boolean definition of each atom semantics:

* Boolean atoms: ``(R(x̄))_t = R(x̄)``, ``(R(x̄))_f = ¬R(x̄)``;
* null-free atoms: guarded by ``const`` tests on every term;
* unification atoms for equality: ``(x=y)_f = x≠y ∧ const(x) ∧ const(y)``;
* unification atoms for relations are supported for Codd-style use: the
  falsity formula states that no stored tuple matches the given one
  componentwise (equal or one side null), which coincides with
  unifiability whenever no null repeats inside a single stored tuple.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..calculus import ast as fo
from ..datamodel.database import Database
from .atom_semantics import (
    AtomSemantics,
    BOOL_SEMANTICS,
    NULLFREE_SEMANTICS,
    SQL_SEMANTICS,
    UNIF_SEMANTICS,
)
from .fo_eval import Assertion

__all__ = ["CapturePair", "capture", "captured_answers"]


@dataclass(frozen=True)
class CapturePair:
    """Boolean FO formulae capturing truth and falsity of a three-valued formula."""

    when_true: fo.Formula
    when_false: fo.Formula

    @property
    def when_unknown(self) -> fo.Formula:
        """The formula capturing the truth value u: neither true nor false."""
        return fo.And(fo.Not(self.when_true), fo.Not(self.when_false))


_FRESH_COUNTER = [0]


def _fresh_vars(count: int) -> list[fo.Var]:
    _FRESH_COUNTER[0] += 1
    stamp = _FRESH_COUNTER[0]
    return [fo.Var(f"_cap{stamp}_{i}") for i in range(count)]


def capture(formula: fo.Formula, atoms: AtomSemantics = SQL_SEMANTICS) -> CapturePair:
    """Translate a formula of FO(L3v)/FO↑SQL into its Boolean capture pair."""
    if isinstance(formula, fo.TrueFormula):
        return CapturePair(fo.TrueFormula(), fo.FalseFormula())
    if isinstance(formula, fo.FalseFormula):
        return CapturePair(fo.FalseFormula(), fo.TrueFormula())
    if isinstance(formula, fo.RelAtom):
        return _capture_relation_atom(formula, atoms)
    if isinstance(formula, fo.EqAtom):
        return _capture_equality_atom(formula, atoms)
    if isinstance(formula, fo.ConstTest):
        return CapturePair(formula, fo.NullTest(formula.term))
    if isinstance(formula, fo.NullTest):
        return CapturePair(formula, fo.ConstTest(formula.term))
    if isinstance(formula, fo.Not):
        inner = capture(formula.operand, atoms)
        return CapturePair(inner.when_false, inner.when_true)
    if isinstance(formula, fo.And):
        left, right = capture(formula.left, atoms), capture(formula.right, atoms)
        return CapturePair(
            fo.And(left.when_true, right.when_true),
            fo.Or(left.when_false, right.when_false),
        )
    if isinstance(formula, fo.Or):
        left, right = capture(formula.left, atoms), capture(formula.right, atoms)
        return CapturePair(
            fo.Or(left.when_true, right.when_true),
            fo.And(left.when_false, right.when_false),
        )
    if isinstance(formula, fo.Implies):
        return capture(fo.Or(fo.Not(formula.left), formula.right), atoms)
    if isinstance(formula, Assertion):
        inner = capture(formula.operand, atoms)
        return CapturePair(inner.when_true, fo.Not(inner.when_true))
    if isinstance(formula, fo.Exists):
        inner = capture(formula.body, atoms)
        return CapturePair(
            fo.Exists(formula.variables, inner.when_true),
            fo.Forall(formula.variables, inner.when_false),
        )
    if isinstance(formula, fo.Forall):
        inner = capture(formula.body, atoms)
        return CapturePair(
            fo.Forall(formula.variables, inner.when_true),
            fo.Exists(formula.variables, inner.when_false),
        )
    raise TypeError(f"cannot capture formula of type {type(formula).__name__}")


def _const_guard(terms) -> fo.Formula:
    return fo.conjunction([fo.ConstTest(t) for t in terms])


def _capture_relation_atom(atom: fo.RelAtom, atoms: AtomSemantics) -> CapturePair:
    semantics = _semantics_for(atoms, atom.relation)
    if semantics is BOOL_SEMANTICS or semantics.name == "bool":
        return CapturePair(atom, fo.Not(atom))
    if semantics is NULLFREE_SEMANTICS or semantics.name == "nullfree":
        guard = _const_guard(atom.terms)
        return CapturePair(fo.And(atom, guard), fo.And(fo.Not(atom), guard))
    if semantics is UNIF_SEMANTICS or semantics.name == "unif":
        # Falsity: no stored tuple matches the given one componentwise
        # (equal, or one of the two sides is a null).
        fresh = _fresh_vars(len(atom.terms))
        matches = fo.conjunction(
            [
                fo.Or(
                    fo.EqAtom(term, var),
                    fo.Or(fo.NullTest(term), fo.NullTest(var)),
                )
                for term, var in zip(atom.terms, fresh)
            ]
        )
        some_match = fo.Exists(fresh, fo.And(fo.RelAtom(atom.relation, fresh), matches))
        return CapturePair(atom, fo.Not(some_match))
    raise ValueError(f"cannot capture atoms under semantics {semantics.name!r}")


def _capture_equality_atom(atom: fo.EqAtom, atoms: AtomSemantics) -> CapturePair:
    # Equality uses the semantics registered for the special relation "Eq".
    semantics_name = _equality_semantics_name(atoms)
    if semantics_name == "bool":
        return CapturePair(atom, fo.Not(atom))
    guard = _const_guard((atom.left, atom.right))
    # Both the null-free and the unification semantics for equality say:
    # true iff equal (nullfree additionally requires constants, but equal
    # nulls are also certainly equal under unif); false iff distinct constants.
    if semantics_name == "nullfree":
        return CapturePair(fo.And(atom, guard), fo.And(fo.Not(atom), guard))
    if semantics_name == "unif":
        return CapturePair(atom, fo.And(fo.Not(atom), guard))
    raise ValueError(f"cannot capture equality under semantics {semantics_name!r}")


def _semantics_for(atoms: AtomSemantics, relation: str) -> AtomSemantics:
    per_relation = getattr(atoms, "per_relation", None)
    if per_relation and relation in per_relation:
        return per_relation[relation]
    if atoms.name == "sql":
        return BOOL_SEMANTICS
    default = getattr(atoms, "default", None)
    return default if default is not None else atoms


def _equality_semantics_name(atoms: AtomSemantics) -> str:
    if atoms.name == "sql":
        return "nullfree"
    if atoms.name in ("bool", "unif", "nullfree"):
        return atoms.name
    per_relation = getattr(atoms, "per_relation", {})
    if "Eq" in per_relation:
        return per_relation["Eq"].name
    default = getattr(atoms, "default", None)
    return default.name if default is not None else "bool"


def captured_answers(
    formula: fo.Formula,
    database: Database,
    free,
    atoms: AtomSemantics = SQL_SEMANTICS,
):
    """Evaluate ``Q_φ`` through its Boolean capture formula ψ_t (Theorem 5.5).

    Returns the same relation as evaluating φ in the three-valued semantics
    and keeping the tuples with value t — checked by the test suite.
    """
    from ..calculus.evaluation import FoQuery

    pair = capture(formula, atoms)
    return FoQuery(pair.when_true, free=list(free)).answers(database)
