"""Many-valued logics for incomplete information (Section 5 of the paper)."""

from .truthvalues import (
    FALSE,
    SOMETIMES,
    SOMETIMES_FALSE,
    SOMETIMES_TRUE,
    TRUE,
    UNKNOWN,
    TruthValue,
    from_bool,
    to_bool_strict,
)
from .logic import PropositionalLogic
from .kleene import L2V, L3V, kleene_and, kleene_not, kleene_or
from .sixvalued import L6V, SIX_VALUES, knowledge_order_6v, six_valued_logic
from .assertion import ASSERT_NAME, L3V_ASSERT, assertion
from .properties import (
    closed_subsets,
    is_associative,
    is_commutative,
    is_distributive,
    is_idempotent,
    is_weakly_idempotent,
    maximal_idempotent_distributive_sublogics,
    respects_knowledge_order,
)
from .atom_semantics import (
    AtomSemantics,
    BOOL_SEMANTICS,
    MixedSemantics,
    NULLFREE_SEMANTICS,
    SQL_SEMANTICS,
    UNIF_SEMANTICS,
)

# The first-order layers (fo_eval, capture) depend on repro.calculus, which in
# turn depends on repro.algebra — and the algebra imports the truth values from
# this package.  To keep `from repro.mvl import fo_sql` working without a
# circular import at package-initialisation time, those names are loaded
# lazily (PEP 562).
_LAZY_FO = {
    "Assertion": "fo_eval",
    "ManyValuedFo": "fo_eval",
    "fo_bool": "fo_eval",
    "fo_unif": "fo_eval",
    "fo_sql": "fo_eval",
    "fo_sql_assert": "fo_eval",
    "CapturePair": "capture",
    "capture": "capture",
    "captured_answers": "capture",
}


def __getattr__(name: str):
    module_name = _LAZY_FO.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.mvl' has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value

__all__ = [
    "TruthValue",
    "TRUE",
    "FALSE",
    "UNKNOWN",
    "SOMETIMES",
    "SOMETIMES_TRUE",
    "SOMETIMES_FALSE",
    "from_bool",
    "to_bool_strict",
    "PropositionalLogic",
    "L2V",
    "L3V",
    "L6V",
    "L3V_ASSERT",
    "SIX_VALUES",
    "six_valued_logic",
    "knowledge_order_6v",
    "kleene_and",
    "kleene_or",
    "kleene_not",
    "assertion",
    "ASSERT_NAME",
    "is_idempotent",
    "is_weakly_idempotent",
    "is_distributive",
    "is_commutative",
    "is_associative",
    "respects_knowledge_order",
    "closed_subsets",
    "maximal_idempotent_distributive_sublogics",
    "AtomSemantics",
    "MixedSemantics",
    "BOOL_SEMANTICS",
    "UNIF_SEMANTICS",
    "NULLFREE_SEMANTICS",
    "SQL_SEMANTICS",
    "ManyValuedFo",
    "Assertion",
    "fo_bool",
    "fo_unif",
    "fo_sql",
    "fo_sql_assert",
    "CapturePair",
    "capture",
    "captured_answers",
]
