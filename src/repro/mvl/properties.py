"""Algebraic properties of propositional many-valued logics.

Used for two results of the paper:

* Theorem 5.3 — Kleene's L3v is the *maximal* sublogic of L6v that is
  both idempotent and distributive (the two properties query optimisers
  rely on);
* Theorem 5.1's premise — the connectives must be monotone with respect
  to the knowledge order for a many-valued evaluation to have
  correctness guarantees; the assertion operator ↑ famously is not.

All checks are exhaustive over the (small) value sets.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Sequence

from .logic import PropositionalLogic
from .truthvalues import TruthValue

__all__ = [
    "is_idempotent",
    "is_distributive",
    "is_commutative",
    "is_associative",
    "respects_knowledge_order",
    "is_weakly_idempotent",
    "closed_subsets",
    "maximal_idempotent_distributive_sublogics",
]


def is_idempotent(logic: PropositionalLogic) -> bool:
    """a ∧ a = a and a ∨ a = a for every value a."""
    return all(
        logic.conj(a, a) == a and logic.disj(a, a) == a for a in logic.values
    )


def is_weakly_idempotent(logic: PropositionalLogic) -> bool:
    """a ∨ a ∨ a = a ∨ a (and dually for ∧) — the premise of Theorem 5.4's general form."""
    for a in logic.values:
        twice_or = logic.disj(a, a)
        if logic.disj(twice_or, a) != twice_or:
            return False
        twice_and = logic.conj(a, a)
        if logic.conj(twice_and, a) != twice_and:
            return False
    return True


def is_commutative(logic: PropositionalLogic) -> bool:
    """∧ and ∨ are commutative."""
    return all(
        logic.conj(a, b) == logic.conj(b, a) and logic.disj(a, b) == logic.disj(b, a)
        for a in logic.values
        for b in logic.values
    )


def is_associative(logic: PropositionalLogic) -> bool:
    """∧ and ∨ are associative."""
    for a, b, c in itertools.product(logic.values, repeat=3):
        if logic.conj(logic.conj(a, b), c) != logic.conj(a, logic.conj(b, c)):
            return False
        if logic.disj(logic.disj(a, b), c) != logic.disj(a, logic.disj(b, c)):
            return False
    return True


def is_distributive(logic: PropositionalLogic) -> bool:
    """∧ distributes over ∨ and ∨ distributes over ∧."""
    for a, b, c in itertools.product(logic.values, repeat=3):
        if logic.conj(a, logic.disj(b, c)) != logic.disj(logic.conj(a, b), logic.conj(a, c)):
            return False
        if logic.disj(a, logic.conj(b, c)) != logic.conj(logic.disj(a, b), logic.disj(a, c)):
            return False
    return True


def respects_knowledge_order(logic: PropositionalLogic, include_extra: bool = True) -> bool:
    """Every connective is monotone w.r.t. the knowledge order (condition (2) of §5.1)."""
    values = logic.values
    for a1, a2, b1, b2 in itertools.product(values, repeat=4):
        if not (logic.leq_knowledge(a1, a2) and logic.leq_knowledge(b1, b2)):
            continue
        if not logic.leq_knowledge(logic.conj(a1, b1), logic.conj(a2, b2)):
            return False
        if not logic.leq_knowledge(logic.disj(a1, b1), logic.disj(a2, b2)):
            return False
    for a1, a2 in itertools.product(values, repeat=2):
        if logic.leq_knowledge(a1, a2) and not logic.leq_knowledge(logic.neg(a1), logic.neg(a2)):
            return False
    if include_extra:
        for name in logic.extra_unary:
            for a1, a2 in itertools.product(values, repeat=2):
                if logic.leq_knowledge(a1, a2) and not logic.leq_knowledge(
                    logic.unary(name, a1), logic.unary(name, a2)
                ):
                    return False
    return True


def closed_subsets(logic: PropositionalLogic) -> list[tuple[TruthValue, ...]]:
    """All non-empty subsets of the values closed under ∧, ∨ and ¬."""
    result = []
    values = logic.values
    for size in range(1, len(values) + 1):
        for subset in itertools.combinations(values, size):
            subset_set = set(subset)
            closed = all(logic.neg(a) in subset_set for a in subset) and all(
                logic.conj(a, b) in subset_set and logic.disj(a, b) in subset_set
                for a in subset
                for b in subset
            )
            if closed:
                result.append(subset)
    return result


def maximal_idempotent_distributive_sublogics(
    logic: PropositionalLogic,
) -> list[tuple[TruthValue, ...]]:
    """The ⊆-maximal closed value subsets whose restriction is idempotent and distributive.

    Theorem 5.3: for L6v this is exactly {t, f, u}, i.e. Kleene's logic.
    """
    good: list[tuple[TruthValue, ...]] = []
    for subset in closed_subsets(logic):
        restricted = logic.restrict(subset)
        if is_idempotent(restricted) and is_distributive(restricted):
            good.append(subset)
    maximal = []
    for subset in good:
        if not any(set(subset) < set(other) for other in good):
            maximal.append(subset)
    return maximal
