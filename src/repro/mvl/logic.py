"""Propositional many-valued logics (Section 5).

A propositional many-valued logic is a pair (T, Ω) of truth values and
connectives.  :class:`PropositionalLogic` represents one with explicit
truth tables for ∧, ∨ and ¬ (plus optional extra unary connectives such
as the assertion operator ↑), together with a *knowledge order* on the
truth values (Section 5.1): ``u ⪯ t`` and ``u ⪯ f`` in Kleene's logic,
and the corresponding order for richer logics.

The property checks used by Theorem 5.3 and Theorem 5.1 — idempotency,
distributivity, monotonicity with respect to the knowledge order — live
in :mod:`repro.mvl.properties`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

from .truthvalues import TruthValue

__all__ = ["PropositionalLogic"]

BinaryTable = Mapping[tuple[TruthValue, TruthValue], TruthValue]
UnaryTable = Mapping[TruthValue, TruthValue]


@dataclass(frozen=True)
class PropositionalLogic:
    """A propositional logic given by explicit truth tables.

    Attributes
    ----------
    name:
        A short name ("L2v", "L3v", "L6v", ...).
    values:
        The truth values, in a fixed order.
    and_table, or_table, not_table:
        Truth tables of the standard connectives.
    knowledge_order:
        The set of pairs (a, b) with a ⪯ b (must contain the reflexive
        pairs).  ``bottom`` is the least element τ₀ (no-information value)
        when one exists.
    extra_unary:
        Additional unary connectives by name (e.g. ``{"assert": table}``).
    """

    name: str
    values: tuple[TruthValue, ...]
    and_table: dict[tuple[TruthValue, TruthValue], TruthValue]
    or_table: dict[tuple[TruthValue, TruthValue], TruthValue]
    not_table: dict[TruthValue, TruthValue]
    knowledge_order: frozenset[tuple[TruthValue, TruthValue]]
    bottom: TruthValue | None = None
    extra_unary: dict[str, dict[TruthValue, TruthValue]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Connectives
    # ------------------------------------------------------------------
    def conj(self, a: TruthValue, b: TruthValue) -> TruthValue:
        """a ∧ b."""
        return self.and_table[(a, b)]

    def disj(self, a: TruthValue, b: TruthValue) -> TruthValue:
        """a ∨ b."""
        return self.or_table[(a, b)]

    def neg(self, a: TruthValue) -> TruthValue:
        """¬a."""
        return self.not_table[a]

    def unary(self, name: str, a: TruthValue) -> TruthValue:
        """An extra unary connective by name (e.g. the assertion operator)."""
        try:
            table = self.extra_unary[name]
        except KeyError:
            raise KeyError(f"logic {self.name} has no unary connective {name!r}") from None
        return table[a]

    def conj_all(self, values: Iterable[TruthValue], empty: TruthValue) -> TruthValue:
        """Fold ∧ over a sequence (used for ∀ in the FO lift)."""
        result = empty
        first = True
        for value in values:
            result = value if first else self.conj(result, value)
            first = False
        return result

    def disj_all(self, values: Iterable[TruthValue], empty: TruthValue) -> TruthValue:
        """Fold ∨ over a sequence (used for ∃ in the FO lift)."""
        result = empty
        first = True
        for value in values:
            result = value if first else self.disj(result, value)
            first = False
        return result

    # ------------------------------------------------------------------
    # Knowledge order
    # ------------------------------------------------------------------
    def leq_knowledge(self, a: TruthValue, b: TruthValue) -> bool:
        """a ⪯ b in the knowledge order."""
        return (a, b) in self.knowledge_order

    def knowledge_glb(self, values: Sequence[TruthValue]) -> TruthValue | None:
        """The ⪯-greatest lower bound of a set of values, if it exists."""
        values = list(values)
        lower = [
            candidate
            for candidate in self.values
            if all(self.leq_knowledge(candidate, v) for v in values)
        ]
        for candidate in lower:
            if all(self.leq_knowledge(other, candidate) for other in lower):
                return candidate
        return None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def tabulate_binary(
        values: Sequence[TruthValue], func: Callable[[TruthValue, TruthValue], TruthValue]
    ) -> dict[tuple[TruthValue, TruthValue], TruthValue]:
        """Materialise a binary truth table from a function."""
        return {(a, b): func(a, b) for a in values for b in values}

    @staticmethod
    def tabulate_unary(
        values: Sequence[TruthValue], func: Callable[[TruthValue], TruthValue]
    ) -> dict[TruthValue, TruthValue]:
        """Materialise a unary truth table from a function."""
        return {a: func(a) for a in values}

    def restrict(self, subset: Sequence[TruthValue], name: str | None = None) -> "PropositionalLogic":
        """The sublogic over a subset of values (must be closed under the connectives)."""
        subset = tuple(subset)
        subset_set = set(subset)
        for a in subset:
            if self.neg(a) not in subset_set:
                raise ValueError(f"{subset} is not closed under ¬")
            for b in subset:
                if self.conj(a, b) not in subset_set or self.disj(a, b) not in subset_set:
                    raise ValueError(f"{subset} is not closed under ∧/∨")
        return PropositionalLogic(
            name=name or f"{self.name}|{{{', '.join(str(v) for v in subset)}}}",
            values=subset,
            and_table={k: v for k, v in self.and_table.items() if set(k) <= subset_set},
            or_table={k: v for k, v in self.or_table.items() if set(k) <= subset_set},
            not_table={k: v for k, v in self.not_table.items() if k in subset_set},
            knowledge_order=frozenset(
                (a, b) for a, b in self.knowledge_order if a in subset_set and b in subset_set
            ),
            bottom=self.bottom if self.bottom in subset_set else None,
            extra_unary={
                name: {k: v for k, v in table.items() if k in subset_set}
                for name, table in self.extra_unary.items()
                if all(v in subset_set for k, v in table.items() if k in subset_set)
            },
        )

    def truth_table_text(self) -> str:
        """Render the ∧, ∨, ¬ tables as fixed-width text (Figure 3 style)."""
        width = max(len(str(v)) for v in self.values) + 1
        lines = []
        for symbol, table in (("∧", self.and_table), ("∨", self.or_table)):
            header = symbol.ljust(width) + "".join(str(v).ljust(width) for v in self.values)
            lines.append(header)
            for a in self.values:
                row = str(a).ljust(width) + "".join(
                    str(table[(a, b)]).ljust(width) for b in self.values
                )
                lines.append(row)
            lines.append("")
        lines.append("¬".ljust(width))
        for a in self.values:
            lines.append(str(a).ljust(width) + str(self.not_table[a]).ljust(width))
        return "\n".join(line.rstrip() for line in lines)

    def __repr__(self) -> str:
        return f"PropositionalLogic({self.name}, values={[str(v) for v in self.values]})"
