"""Truth values shared across the many-valued-logic machinery.

The propositional logics of Section 5 are built over named truth values.
This module defines the :class:`TruthValue` symbol type and the standard
values used throughout the library:

* ``TRUE`` (t), ``FALSE`` (f) — the Boolean values of L2v;
* ``UNKNOWN`` (u) — Kleene's third value, SQL's ``unknown``;
* ``SOMETIMES`` (s), ``SOMETIMES_TRUE`` (st), ``SOMETIMES_FALSE`` (sf) —
  the three extra values of the epistemic six-valued logic L6v
  (Section 5.2).

Truth values are interned singletons, so identity comparison is safe.
The SQL-style three-valued evaluation in :mod:`repro.algebra.conditions`
and :mod:`repro.sql` uses ``TRUE``/``FALSE``/``UNKNOWN`` directly.
"""

from __future__ import annotations

__all__ = [
    "TruthValue",
    "TRUE",
    "FALSE",
    "UNKNOWN",
    "SOMETIMES",
    "SOMETIMES_TRUE",
    "SOMETIMES_FALSE",
    "from_bool",
    "to_bool_strict",
]


class TruthValue:
    """An interned, named truth value."""

    _interned: dict[str, "TruthValue"] = {}
    __slots__ = ("name",)

    def __new__(cls, name: str) -> "TruthValue":
        existing = cls._interned.get(name)
        if existing is not None:
            return existing
        value = super().__new__(cls)
        object.__setattr__(value, "name", name)
        cls._interned[name] = value
        return value

    def __setattr__(self, key, value):  # pragma: no cover - immutability guard
        raise AttributeError("TruthValue is immutable")

    def __repr__(self) -> str:
        return self.name

    def __str__(self) -> str:
        return self.name

    def __hash__(self) -> int:
        return hash(("TruthValue", self.name))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, TruthValue):
            return self.name == other.name
        return NotImplemented

    def __lt__(self, other: "TruthValue") -> bool:
        # Arbitrary but stable order, handy for sorting in reports.
        return self.name < other.name


TRUE = TruthValue("t")
FALSE = TruthValue("f")
UNKNOWN = TruthValue("u")
SOMETIMES = TruthValue("s")
SOMETIMES_TRUE = TruthValue("st")
SOMETIMES_FALSE = TruthValue("sf")


def from_bool(value: bool) -> TruthValue:
    """Map a Python boolean to ``TRUE``/``FALSE``."""
    return TRUE if value else FALSE


def to_bool_strict(value: TruthValue) -> bool:
    """Map ``TRUE``/``FALSE`` back to booleans; raise on any other value."""
    if value is TRUE:
        return True
    if value is FALSE:
        return False
    raise ValueError(f"cannot convert truth value {value} to bool")
