"""Atom semantics for many-valued first-order logics (Section 5).

A semantics assigns a truth value to each atomic formula given the
database and the values of its terms.  The paper discusses:

* the **Boolean** semantics (equation 12): a relational atom is t iff the
  tuple is in the relation, f otherwise; equality is t iff the values are
  equal;
* the **unification** semantics (equations 13a/13b): an atom is f only
  when no tuple of the relation unifies with the given one — the
  semantics with correctness guarantees w.r.t. cert⊥ (Corollary 5.2);
* the **null-free** semantics (equation 14): atoms involving a null are u
  — the way SQL treats comparisons;
* the **SQL mixed** semantics (equation 15): Boolean semantics for base
  relations, null-free semantics for equality — this yields FOSQL.

Equality is treated as the special relation ``Eq`` so that mixed
semantics can assign it its own behaviour, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from ..datamodel.database import Database
from ..datamodel.unification import unifiable
from ..datamodel.values import Value, is_const, is_null
from .truthvalues import FALSE, TRUE, UNKNOWN, TruthValue, from_bool

__all__ = [
    "AtomSemantics",
    "BOOL_SEMANTICS",
    "UNIF_SEMANTICS",
    "NULLFREE_SEMANTICS",
    "SQL_SEMANTICS",
    "MixedSemantics",
]

RelationAtomRule = Callable[[Database, str, tuple], TruthValue]
EqualityRule = Callable[[Database, Value, Value], TruthValue]


# ----------------------------------------------------------------------
# Relational atom rules
# ----------------------------------------------------------------------
def _bool_relation(database: Database, name: str, row: tuple) -> TruthValue:
    """Equation (12): t iff the tuple is in the relation, f otherwise."""
    relation = database.get(name)
    return from_bool(relation is not None and row in relation)


def _unif_relation(database: Database, name: str, row: tuple) -> TruthValue:
    """Equation (13a): f only when no stored tuple unifies with the given one."""
    relation = database.get(name)
    if relation is not None and row in relation:
        return TRUE
    if relation is not None and any(unifiable(row, other) for other in relation):
        return UNKNOWN
    return FALSE


def _nullfree_relation(database: Database, name: str, row: tuple) -> TruthValue:
    """Equation (14): u whenever the tuple involves a null."""
    if not all(is_const(v) for v in row):
        return UNKNOWN
    relation = database.get(name)
    return from_bool(relation is not None and row in relation)


# ----------------------------------------------------------------------
# Equality rules
# ----------------------------------------------------------------------
def _bool_equality(database: Database, left: Value, right: Value) -> TruthValue:
    return from_bool(left == right)


def _unif_equality(database: Database, left: Value, right: Value) -> TruthValue:
    """Equation (13b): f only when both sides are distinct constants."""
    if left == right:
        return TRUE
    if is_const(left) and is_const(right):
        return FALSE
    return UNKNOWN


def _nullfree_equality(database: Database, left: Value, right: Value) -> TruthValue:
    """SQL's comparison rule: u whenever a null is involved."""
    if is_null(left) or is_null(right):
        return UNKNOWN
    return from_bool(left == right)


@dataclass(frozen=True)
class AtomSemantics:
    """A semantics for atomic formulae: one rule for relations, one for equality.

    ``const``/``null`` tests are always two-valued (they inspect the kind of
    the value, which is never unknown).
    """

    name: str
    relation_rule: RelationAtomRule
    equality_rule: EqualityRule

    def relation_atom(self, database: Database, relation: str, row: Sequence[Value]) -> TruthValue:
        return self.relation_rule(database, relation, tuple(row))

    def equality_atom(self, database: Database, left: Value, right: Value) -> TruthValue:
        return self.equality_rule(database, left, right)

    def const_test(self, value: Value) -> TruthValue:
        return from_bool(is_const(value))

    def null_test(self, value: Value) -> TruthValue:
        return from_bool(is_null(value))


#: The standard two-valued semantics of atoms (equation 12).
BOOL_SEMANTICS = AtomSemantics("bool", _bool_relation, _bool_equality)

#: The unification-based three-valued semantics (equations 13a/13b).
UNIF_SEMANTICS = AtomSemantics("unif", _unif_relation, _unif_equality)

#: The null-free semantics (equation 14) for both relations and equality.
NULLFREE_SEMANTICS = AtomSemantics("nullfree", _nullfree_relation, _nullfree_equality)

#: The SQL mixed semantics (equation 15): Boolean relations, null-free equality.
SQL_SEMANTICS = AtomSemantics("sql", _bool_relation, _nullfree_equality)


@dataclass(frozen=True)
class MixedSemantics(AtomSemantics):
    """A mixed semantics: a per-relation choice among bool / unif / nullfree.

    The paper's notion of "mixed semantics" allows each base relation
    (including the equality relation ``Eq``) to use any of the three basic
    semantics.  Unspecified relations default to ``default``.
    """

    per_relation: Mapping[str, AtomSemantics] = field(default_factory=dict)
    default: AtomSemantics = BOOL_SEMANTICS

    def __init__(
        self,
        per_relation: Mapping[str, AtomSemantics],
        default: AtomSemantics = BOOL_SEMANTICS,
        equality: AtomSemantics | None = None,
        name: str = "mixed",
    ):
        equality = equality or per_relation.get("Eq", default)
        object.__setattr__(self, "per_relation", dict(per_relation))
        object.__setattr__(self, "default", default)
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "relation_rule", self._relation_rule)
        object.__setattr__(self, "equality_rule", equality.equality_rule)

    def _relation_rule(self, database: Database, relation: str, row: tuple) -> TruthValue:
        semantics = self.per_relation.get(relation, self.default)
        return semantics.relation_rule(database, relation, row)
