"""Kleene's three-valued logic L3v and the Boolean logic L2v.

The truth tables are those of Figure 3 of the paper; the knowledge order
has ``u`` below both ``t`` and ``f`` (which are incomparable), with ``u``
as the no-information bottom value τ₀.
"""

from __future__ import annotations

from .logic import PropositionalLogic
from .truthvalues import FALSE, TRUE, UNKNOWN, TruthValue

__all__ = ["L2V", "L3V", "kleene_and", "kleene_or", "kleene_not"]


def kleene_and(a: TruthValue, b: TruthValue) -> TruthValue:
    """Kleene conjunction: false dominates, unknown otherwise unless both true."""
    if a is FALSE or b is FALSE:
        return FALSE
    if a is TRUE and b is TRUE:
        return TRUE
    return UNKNOWN


def kleene_or(a: TruthValue, b: TruthValue) -> TruthValue:
    """Kleene disjunction: true dominates, unknown otherwise unless both false."""
    if a is TRUE or b is TRUE:
        return TRUE
    if a is FALSE and b is FALSE:
        return FALSE
    return UNKNOWN


def kleene_not(a: TruthValue) -> TruthValue:
    """Kleene negation: swaps t and f, fixes u."""
    if a is TRUE:
        return FALSE
    if a is FALSE:
        return TRUE
    return UNKNOWN


_BOOL_VALUES = (TRUE, FALSE)
_KLEENE_VALUES = (TRUE, FALSE, UNKNOWN)

#: The familiar two-valued Boolean logic.
L2V = PropositionalLogic(
    name="L2v",
    values=_BOOL_VALUES,
    and_table=PropositionalLogic.tabulate_binary(_BOOL_VALUES, kleene_and),
    or_table=PropositionalLogic.tabulate_binary(_BOOL_VALUES, kleene_or),
    not_table=PropositionalLogic.tabulate_unary(_BOOL_VALUES, kleene_not),
    knowledge_order=frozenset({(TRUE, TRUE), (FALSE, FALSE)}),
    bottom=None,
)

#: Kleene's three-valued logic, the logic underlying SQL (Figure 3).
L3V = PropositionalLogic(
    name="L3v",
    values=_KLEENE_VALUES,
    and_table=PropositionalLogic.tabulate_binary(_KLEENE_VALUES, kleene_and),
    or_table=PropositionalLogic.tabulate_binary(_KLEENE_VALUES, kleene_or),
    not_table=PropositionalLogic.tabulate_unary(_KLEENE_VALUES, kleene_not),
    knowledge_order=frozenset(
        {
            (TRUE, TRUE),
            (FALSE, FALSE),
            (UNKNOWN, UNKNOWN),
            (UNKNOWN, TRUE),
            (UNKNOWN, FALSE),
        }
    ),
    bottom=UNKNOWN,
)
