"""The assertion operator ↑ and the logic L3v↑ (end of Section 5.2).

SQL evaluates WHERE conditions in three-valued logic but then keeps only
the rows whose condition is *true*, collapsing f and u to f.  That
collapse is the assertion operator of Bochvar: ``↑t = t`` and
``↑f = ↑u = f``.  The logic L3v extended with ↑, written L3v↑ here,
underlies the FO↑SQL semantics that captures real SQL behaviour.

Crucially ↑ is **not** monotone with respect to the knowledge order
(u ⪯ t but ↑u = f ⋠ t = ↑t), which is why SQL can return
almost-certainly-false answers even though plain FO(L3v) cannot — the
paper's diagnosis of "the real culprit" in SQL's behaviour.
"""

from __future__ import annotations

from dataclasses import replace

from .kleene import L3V
from .logic import PropositionalLogic
from .truthvalues import FALSE, TRUE, UNKNOWN, TruthValue

__all__ = ["assertion", "L3V_ASSERT", "ASSERT_NAME"]

#: Name under which the assertion operator is registered as an extra connective.
ASSERT_NAME = "assert"


def assertion(value: TruthValue) -> TruthValue:
    """↑: collapse f and u to f, keep t."""
    return TRUE if value is TRUE else FALSE


#: Kleene's logic extended with the assertion operator (written L↑3v in the paper).
L3V_ASSERT: PropositionalLogic = replace(
    L3V,
    name="L3v↑",
    extra_unary={
        ASSERT_NAME: PropositionalLogic.tabulate_unary(L3V.values, assertion)
    },
)
