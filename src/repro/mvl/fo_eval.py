"""Many-valued first-order evaluation: the logics FO(L) of Section 5.

Given a propositional logic L and an atom semantics, a formula is
evaluated bottom-up: the connectives follow L's truth tables (equation
10) and the quantifiers fold ∨ / ∧ over the active domain (equation 11).
The assertion operator ↑ of L3v↑ is available through the
:class:`Assertion` formula wrapper, which lets us express the FO core of
SQL, FO↑SQL, and reproduce its behaviour (e.g. returning
almost-certainly-false answers on the ``R − (S − T)`` example).

The pre-built semantics:

* ``fo_bool``      — FO(L2v) with Boolean atoms: classical FO;
* ``fo_unif``      — FO(L3v) with unification atoms: the semantics with
  correctness guarantees for cert⊥ (Corollary 5.2);
* ``fo_sql``       — FOSQL = FO(L3v) with the SQL mixed atom semantics;
* ``fo_sql_assert``— FO↑SQL = FO(L3v↑) with the SQL mixed atom semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..calculus import ast as fo
from ..datamodel.database import Database
from ..datamodel.relation import Relation
from ..datamodel.values import Value, value_sort_key
from .assertion import ASSERT_NAME, L3V_ASSERT
from .atom_semantics import (
    AtomSemantics,
    BOOL_SEMANTICS,
    SQL_SEMANTICS,
    UNIF_SEMANTICS,
)
from .kleene import L2V, L3V
from .logic import PropositionalLogic
from .truthvalues import FALSE, TRUE, UNKNOWN, TruthValue

__all__ = [
    "Assertion",
    "ManyValuedFo",
    "fo_bool",
    "fo_unif",
    "fo_sql",
    "fo_sql_assert",
]


@dataclass(frozen=True)
class Assertion(fo.Formula):
    """The assertion operator ↑φ: t if φ is t, f otherwise.

    Only meaningful in logics that define the ``assert`` connective (L3v↑).
    """

    operand: fo.Formula

    def children(self) -> tuple[fo.Formula, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"↑({self.operand})"


class ManyValuedFo:
    """The many-valued first-order logic (FO(L), ⟦·⟧) for a logic and atom semantics."""

    def __init__(self, logic: PropositionalLogic, atoms: AtomSemantics, name: str | None = None):
        self.logic = logic
        self.atoms = atoms
        self.name = name or f"FO({logic.name}, {atoms.name})"

    # ------------------------------------------------------------------
    # Formula evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self,
        formula: fo.Formula,
        database: Database,
        assignment: Mapping[fo.Var, Value] | None = None,
        domain: Sequence[Value] | None = None,
    ) -> TruthValue:
        """``⟦φ⟧_{D, ā}``: the truth value of the formula under the assignment."""
        assignment = dict(assignment or {})
        if domain is None:
            domain = self._domain(formula, database)
        return self._eval(formula, database, assignment, list(domain))

    def _domain(self, formula: fo.Formula, database: Database) -> list[Value]:
        values = set(database.active_domain()) | fo.constants_mentioned(formula)
        return sorted(values, key=value_sort_key)

    def _resolve(self, term: fo.FoTerm, assignment) -> Value:
        if isinstance(term, fo.Var):
            return assignment[term]
        if isinstance(term, fo.ConstTerm):
            return term.value
        raise TypeError(f"unknown term {term!r}")

    def _eval(self, formula, database, assignment, domain) -> TruthValue:
        logic = self.logic
        if isinstance(formula, fo.TrueFormula):
            return TRUE
        if isinstance(formula, fo.FalseFormula):
            return FALSE
        if isinstance(formula, fo.RelAtom):
            row = tuple(self._resolve(t, assignment) for t in formula.terms)
            return self.atoms.relation_atom(database, formula.relation, row)
        if isinstance(formula, fo.EqAtom):
            return self.atoms.equality_atom(
                database,
                self._resolve(formula.left, assignment),
                self._resolve(formula.right, assignment),
            )
        if isinstance(formula, fo.ConstTest):
            return self.atoms.const_test(self._resolve(formula.term, assignment))
        if isinstance(formula, fo.NullTest):
            return self.atoms.null_test(self._resolve(formula.term, assignment))
        if isinstance(formula, fo.Not):
            return logic.neg(self._eval(formula.operand, database, assignment, domain))
        if isinstance(formula, fo.And):
            return logic.conj(
                self._eval(formula.left, database, assignment, domain),
                self._eval(formula.right, database, assignment, domain),
            )
        if isinstance(formula, fo.Or):
            return logic.disj(
                self._eval(formula.left, database, assignment, domain),
                self._eval(formula.right, database, assignment, domain),
            )
        if isinstance(formula, fo.Implies):
            # φ → ψ is ¬φ ∨ ψ in every logic considered here.
            return logic.disj(
                logic.neg(self._eval(formula.left, database, assignment, domain)),
                self._eval(formula.right, database, assignment, domain),
            )
        if isinstance(formula, Assertion):
            return logic.unary(
                ASSERT_NAME, self._eval(formula.operand, database, assignment, domain)
            )
        if isinstance(formula, fo.Exists):
            return self._quantify(formula, database, assignment, domain, existential=True)
        if isinstance(formula, fo.Forall):
            return self._quantify(formula, database, assignment, domain, existential=False)
        raise TypeError(f"unknown formula type {type(formula).__name__}")

    def _quantify(self, formula, database, assignment, domain, *, existential: bool) -> TruthValue:
        variables = list(formula.variables)

        def recurse(index: int) -> TruthValue:
            if index == len(variables):
                return self._eval(formula.body, database, assignment, domain)
            var = variables[index]
            saved = assignment.get(var, _MISSING)
            values = []
            for value in domain:
                assignment[var] = value
                values.append(recurse(index + 1))
            if saved is _MISSING:
                assignment.pop(var, None)
            else:
                assignment[var] = saved
            if existential:
                return self.logic.disj_all(values, FALSE)
            return self.logic.conj_all(values, TRUE)

        return recurse(0)

    # ------------------------------------------------------------------
    # Query answering: keep the tuples whose condition evaluates to t
    # ------------------------------------------------------------------
    def answers(
        self,
        formula: fo.Formula,
        database: Database,
        free: Sequence[fo.Var | str],
        *,
        keep: tuple[TruthValue, ...] = (TRUE,),
    ) -> Relation:
        """``Q_φ(D)``: the assignments whose truth value is in ``keep`` (default: t only)."""
        free_vars = tuple(fo.Var(v) if isinstance(v, str) else v for v in free)
        domain = self._domain(formula, database)
        rows = []
        for row in _tuples(domain, len(free_vars)):
            assignment = dict(zip(free_vars, row))
            if self._eval(formula, database, assignment, domain) in keep:
                rows.append(row)
        return Relation(tuple(v.name for v in free_vars), rows)


_MISSING = object()


def _tuples(domain: Sequence[Value], arity: int):
    if arity == 0:
        yield ()
        return
    import itertools

    yield from itertools.product(domain, repeat=arity)


def fo_bool() -> ManyValuedFo:
    """Classical Boolean FO: FO(L2v, ⟦·⟧_bool)."""
    return ManyValuedFo(L2V, BOOL_SEMANTICS, name="FO(L2v, bool)")


def fo_unif() -> ManyValuedFo:
    """FO(L3v) with the unification atom semantics (Corollary 5.2)."""
    return ManyValuedFo(L3V, UNIF_SEMANTICS, name="FO(L3v, unif)")


def fo_sql() -> ManyValuedFo:
    """FOSQL: FO(L3v) with the SQL mixed atom semantics (equation 15)."""
    return ManyValuedFo(L3V, SQL_SEMANTICS, name="FOSQL")


def fo_sql_assert() -> ManyValuedFo:
    """FO↑SQL: FO(L3v↑) with the SQL mixed atom semantics — the FO core of SQL."""
    return ManyValuedFo(L3V_ASSERT, SQL_SEMANTICS, name="FO↑SQL")
