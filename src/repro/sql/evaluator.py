"""SQL-semantics evaluation of the supported fragment.

This evaluator reproduces what a real SQL engine returns on a database
with nulls — including the behaviours the paper's introduction uses to
motivate the whole programme:

* comparisons involving ``NULL`` evaluate to ``unknown``;
* WHERE keeps only rows whose condition is *true* (the assertion-operator
  collapse of Section 5.2);
* ``x NOT IN (subquery)`` is false if some subquery value equals ``x``,
  unknown if none equals it but some comparison is unknown, true only
  when every comparison is definitely false — which is exactly how a
  single NULL in the subquery wipes out the "unpaid orders" answers;
* ``EXISTS`` is purely two-valued on the produced rows.

Marked nulls in the stored data are treated as SQL's single ``NULL`` for
comparisons (every comparison involving any null is unknown); this is
the ``codd`` reading discussed in Section 6.

Evaluation is bag-based (``SELECT DISTINCT`` deduplicates), matching the
SQL standard.

.. deprecated:: 1.1
   As a *public* entry point, prefer ``Engine.evaluate(sql_text, db,
   strategy="sql-3vl", semantics="bag")`` from :mod:`repro.engine`;
   this evaluator remains as the strategy's implementation.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterator, Mapping

from ..datamodel.database import Database
from ..datamodel.relation import Relation
from ..datamodel.values import Value, is_null
from ..mvl.truthvalues import FALSE, TRUE, UNKNOWN, TruthValue
from ..mvl.kleene import kleene_and, kleene_not, kleene_or
from . import ast
from .parser import parse

__all__ = ["SqlEvaluator", "run_sql"]

#: A row environment: a list of scopes (innermost first), each scope mapping
#: alias → (attributes, row values).  Column resolution searches the innermost
#: scope first, as SQL name resolution does for correlated subqueries.
Environment = list


class SqlEvaluationError(ValueError):
    """Raised when a query refers to unknown tables or ambiguous columns."""


class SqlEvaluator:
    """Evaluates parsed SQL queries over a :class:`Database` the way SQL does."""

    def __init__(self, database: Database):
        self.database = database

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def run(self, query: ast.SqlQuery | str) -> Relation:
        """Evaluate a query (AST or SQL text) and return the result relation."""
        if isinstance(query, str):
            query = parse(query)
        return self._eval_query(query, outer_env=[])

    # ------------------------------------------------------------------
    # Query evaluation
    # ------------------------------------------------------------------
    def _eval_query(self, query: ast.SqlQuery, outer_env: Environment) -> Relation:
        if isinstance(query, ast.SelectQuery):
            return self._eval_select(query, outer_env)
        if isinstance(query, ast.SetOperation):
            left = self._eval_query(query.left, outer_env)
            right = self._eval_query(query.right, outer_env)
            return self._eval_setop(query, left, right)
        raise TypeError(f"unknown query node {type(query).__name__}")

    def _eval_setop(self, query: ast.SetOperation, left: Relation, right: Relation) -> Relation:
        if left.arity != right.arity:
            raise SqlEvaluationError("set operation requires arguments of equal arity")
        left_bag, right_bag = left.rows_bag(), right.rows_bag()
        result: Counter = Counter()
        if query.op == "UNION":
            result = Counter(left_bag)
            for row, count in right_bag.items():
                result[row] += count
            if not query.all:
                result = Counter({row: 1 for row in result})
        elif query.op == "EXCEPT":
            if query.all:
                for row, count in left_bag.items():
                    remaining = count - right_bag.get(row, 0)
                    if remaining > 0:
                        result[row] = remaining
            else:
                result = Counter({row: 1 for row in left_bag if row not in right_bag})
        elif query.op == "INTERSECT":
            if query.all:
                for row, count in left_bag.items():
                    other = right_bag.get(row, 0)
                    if other:
                        result[row] = min(count, other)
            else:
                result = Counter({row: 1 for row in left_bag if row in right_bag})
        else:
            raise SqlEvaluationError(f"unknown set operation {query.op!r}")
        return Relation.from_counter(left.attributes, result)

    def _eval_select(self, query: ast.SelectQuery, outer_env: Environment) -> Relation:
        bindings = self._table_bindings(query)
        output_attrs = self._output_attributes(query, bindings)
        counter: Counter = Counter()
        for env in self._environments(bindings, outer_env):
            if query.where is not None:
                if self._eval_condition(query.where, env) is not TRUE:
                    continue
            row = self._project(query, bindings, env)
            counter[row] += 1
        if query.distinct:
            counter = Counter({row: 1 for row in counter})
        return Relation.from_counter(output_attrs, counter)

    def _table_bindings(self, query: ast.SelectQuery) -> list[tuple[str, Relation]]:
        bindings = []
        for table_ref in query.tables:
            relation = self.database.get(table_ref.table)
            if relation is None:
                raise SqlEvaluationError(f"unknown table {table_ref.table!r}")
            bindings.append((table_ref.name(), relation))
        return bindings

    def _environments(
        self, bindings: list[tuple[str, Relation]], outer_env: Environment
    ) -> Iterator[Environment]:
        local: dict = {}
        scopes: Environment = [local, *outer_env]

        def recurse(index: int) -> Iterator[Environment]:
            if index == len(bindings):
                yield scopes
                return
            alias, relation = bindings[index]
            for row in relation.iter_rows_bag():
                local[alias] = (relation.attributes, row)
                yield from recurse(index + 1)
            local.pop(alias, None)

        yield from recurse(0)

    def _output_attributes(self, query: ast.SelectQuery, bindings) -> tuple[str, ...]:
        if query.select_star:
            attrs = []
            for alias, relation in bindings:
                attrs.extend(f"{alias}.{a}" if len(bindings) > 1 else a for a in relation.attributes)
            return tuple(attrs)
        return tuple(item.output_name() for item in query.items)

    def _project(self, query: ast.SelectQuery, bindings, env: Environment) -> tuple:
        if query.select_star:
            local = env[0]
            values = []
            for alias, _relation in bindings:
                values.extend(local[alias][1])
            return tuple(values)
        return tuple(self._eval_expr(item.expr, env) for item in query.items)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _eval_expr(self, expr: ast.SqlExpr, env: Environment) -> Value:
        if isinstance(expr, ast.SqlLiteral):
            return expr.value
        if isinstance(expr, ast.SqlNull):
            from ..datamodel.values import fresh_null

            return fresh_null()
        if isinstance(expr, ast.ColumnRef):
            return self._lookup(expr, env)
        raise TypeError(f"unknown expression {type(expr).__name__}")

    def _lookup(self, ref: ast.ColumnRef, env: Environment) -> Value:
        if ref.table is not None:
            for scope in env:
                if ref.table in scope:
                    attributes, row = scope[ref.table]
                    if ref.column not in attributes:
                        raise SqlEvaluationError(f"unknown column {ref}")
                    return row[attributes.index(ref.column)]
            raise SqlEvaluationError(f"unknown table alias {ref.table!r}")
        for scope in env:
            matches = []
            for _alias, (attributes, row) in scope.items():
                if ref.column in attributes:
                    matches.append(row[attributes.index(ref.column)])
            if len(matches) > 1:
                raise SqlEvaluationError(f"ambiguous column {ref.column!r}")
            if matches:
                return matches[0]
        raise SqlEvaluationError(f"unknown column {ref.column!r}")

    # ------------------------------------------------------------------
    # Conditions (three-valued)
    # ------------------------------------------------------------------
    def _eval_condition(self, condition: ast.SqlCondition, env: Environment) -> TruthValue:
        if isinstance(condition, ast.BoolOp):
            left = self._eval_condition(condition.left, env)
            right = self._eval_condition(condition.right, env)
            return kleene_and(left, right) if condition.op == "AND" else kleene_or(left, right)
        if isinstance(condition, ast.NotOp):
            return kleene_not(self._eval_condition(condition.operand, env))
        if isinstance(condition, ast.Comparison):
            return self._compare(
                condition.op,
                self._eval_expr(condition.left, env),
                self._eval_expr(condition.right, env),
            )
        if isinstance(condition, ast.IsNull):
            value = self._eval_expr(condition.operand, env)
            result = TRUE if is_null(value) else FALSE
            return kleene_not(result) if condition.negated else result
        if isinstance(condition, ast.ExistsSubquery):
            result = TRUE if self._eval_query(condition.subquery, env) else FALSE
            return kleene_not(result) if condition.negated else result
        if isinstance(condition, ast.InSubquery):
            return self._eval_in(condition, env)
        raise TypeError(f"unknown condition {type(condition).__name__}")

    def _eval_in(self, condition: ast.InSubquery, env: Environment) -> TruthValue:
        value = self._eval_expr(condition.operand, env)
        subresult = self._eval_query(condition.subquery, env)
        if subresult.arity != 1:
            raise SqlEvaluationError("IN subquery must return a single column")
        membership = FALSE
        for (candidate,) in subresult.iter_rows_bag():
            membership = kleene_or(membership, self._compare("=", value, candidate))
            if membership is TRUE:
                break
        return kleene_not(membership) if condition.negated else membership

    @staticmethod
    def _compare(op: str, left: Value, right: Value) -> TruthValue:
        if is_null(left) or is_null(right):
            return UNKNOWN
        try:
            if op == "=":
                outcome = left == right
            elif op == "<>":
                outcome = left != right
            elif op == "<":
                outcome = left < right
            elif op == "<=":
                outcome = left <= right
            elif op == ">":
                outcome = left > right
            elif op == ">=":
                outcome = left >= right
            else:
                raise SqlEvaluationError(f"unknown comparison operator {op!r}")
        except TypeError:
            return UNKNOWN
        return TRUE if outcome else FALSE


def run_sql(database: Database, query: str) -> Relation:
    """Parse and evaluate an SQL query the way an SQL engine would."""
    return SqlEvaluator(database).run(query)
