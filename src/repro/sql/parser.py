"""Recursive-descent parser for the supported SQL fragment."""

from __future__ import annotations

from .ast import (
    BoolOp,
    ColumnRef,
    Comparison,
    ExistsSubquery,
    InSubquery,
    IsNull,
    NotOp,
    SelectItem,
    SelectQuery,
    SetOperation,
    SqlCondition,
    SqlExpr,
    SqlLiteral,
    SqlNull,
    SqlQuery,
    TableRef,
)
from .lexer import SqlSyntaxError, Token, tokenize

__all__ = ["parse"]


def parse(text: str) -> SqlQuery:
    """Parse an SQL string into a :class:`~repro.sql.ast.SqlQuery`."""
    parser = _Parser(tokenize(text))
    query = parser.parse_query()
    parser.expect_eof()
    return query


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._index = 0

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------
    def _peek(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _check_keyword(self, *keywords: str) -> bool:
        token = self._peek()
        return token.kind == "KEYWORD" and token.value in keywords

    def _accept_keyword(self, *keywords: str) -> bool:
        if self._check_keyword(*keywords):
            self._advance()
            return True
        return False

    def _expect_keyword(self, keyword: str) -> None:
        if not self._accept_keyword(keyword):
            raise SqlSyntaxError(f"expected {keyword}, found {self._peek().value!r}")

    def _check_symbol(self, symbol: str) -> bool:
        token = self._peek()
        return token.kind == "SYMBOL" and token.value == symbol

    def _accept_symbol(self, symbol: str) -> bool:
        if self._check_symbol(symbol):
            self._advance()
            return True
        return False

    def _expect_symbol(self, symbol: str) -> None:
        if not self._accept_symbol(symbol):
            raise SqlSyntaxError(f"expected {symbol!r}, found {self._peek().value!r}")

    def expect_eof(self) -> None:
        if self._peek().kind != "EOF":
            raise SqlSyntaxError(f"unexpected trailing input at {self._peek().value!r}")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def parse_query(self) -> SqlQuery:
        left = self.parse_select()
        while self._check_keyword("UNION", "EXCEPT", "INTERSECT"):
            op = self._advance().value
            all_flag = self._accept_keyword("ALL")
            right = self.parse_select()
            left = SetOperation(op=op, left=left, right=right, all=all_flag)
        return left

    def parse_select(self) -> SqlQuery:
        if self._accept_symbol("("):
            query = self.parse_query()
            self._expect_symbol(")")
            return query
        self._expect_keyword("SELECT")
        distinct = self._accept_keyword("DISTINCT")
        select_star = False
        items: list[SelectItem] = []
        if self._accept_symbol("*"):
            select_star = True
        else:
            items.append(self._parse_select_item())
            while self._accept_symbol(","):
                items.append(self._parse_select_item())
        self._expect_keyword("FROM")
        tables = [self._parse_table_ref()]
        while self._accept_symbol(","):
            tables.append(self._parse_table_ref())
        where = None
        if self._accept_keyword("WHERE"):
            where = self._parse_condition()
        return SelectQuery(
            items=items, tables=tables, where=where, distinct=distinct, select_star=select_star
        )

    def _parse_select_item(self) -> SelectItem:
        expr = self._parse_expr()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_ident()
        elif self._peek().kind == "IDENT":
            alias = self._advance().value
        return SelectItem(expr=expr, alias=alias)

    def _parse_table_ref(self) -> TableRef:
        table = self._expect_ident()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_ident()
        elif self._peek().kind == "IDENT":
            alias = self._advance().value
        return TableRef(table=table, alias=alias)

    def _expect_ident(self) -> str:
        token = self._peek()
        if token.kind != "IDENT":
            raise SqlSyntaxError(f"expected identifier, found {token.value!r}")
        return self._advance().value

    # ------------------------------------------------------------------
    # Conditions (precedence: OR < AND < NOT < atoms)
    # ------------------------------------------------------------------
    def _parse_condition(self) -> SqlCondition:
        return self._parse_or()

    def _parse_or(self) -> SqlCondition:
        left = self._parse_and()
        while self._accept_keyword("OR"):
            right = self._parse_and()
            left = BoolOp("OR", left, right)
        return left

    def _parse_and(self) -> SqlCondition:
        left = self._parse_not()
        while self._accept_keyword("AND"):
            right = self._parse_not()
            left = BoolOp("AND", left, right)
        return left

    def _parse_not(self) -> SqlCondition:
        if self._accept_keyword("NOT"):
            if self._check_keyword("EXISTS"):
                return self._parse_exists(negated=True)
            return NotOp(self._parse_not())
        return self._parse_predicate()

    def _parse_exists(self, *, negated: bool) -> SqlCondition:
        self._expect_keyword("EXISTS")
        self._expect_symbol("(")
        subquery = self.parse_query()
        self._expect_symbol(")")
        return ExistsSubquery(subquery=subquery, negated=negated)

    def _parse_predicate(self) -> SqlCondition:
        if self._check_keyword("EXISTS"):
            return self._parse_exists(negated=False)
        if self._check_symbol("("):
            # Could be a parenthesised condition.
            saved = self._index
            self._advance()
            try:
                condition = self._parse_condition()
                self._expect_symbol(")")
                return condition
            except SqlSyntaxError:
                self._index = saved
        left = self._parse_expr()
        if self._accept_keyword("IS"):
            negated = self._accept_keyword("NOT")
            self._expect_keyword("NULL")
            return IsNull(operand=left, negated=negated)
        if self._check_keyword("NOT") or self._check_keyword("IN"):
            negated = self._accept_keyword("NOT")
            self._expect_keyword("IN")
            self._expect_symbol("(")
            subquery = self.parse_query()
            self._expect_symbol(")")
            return InSubquery(operand=left, subquery=subquery, negated=negated)
        token = self._peek()
        if token.kind == "SYMBOL" and token.value in ("=", "<>", "!=", "<", "<=", ">", ">="):
            op = self._advance().value
            if op == "!=":
                op = "<>"
            right = self._parse_expr()
            return Comparison(op=op, left=left, right=right)
        raise SqlSyntaxError(f"expected a predicate, found {token.value!r}")

    # ------------------------------------------------------------------
    # Scalar expressions
    # ------------------------------------------------------------------
    def _parse_expr(self) -> SqlExpr:
        token = self._peek()
        if token.kind == "NUMBER":
            self._advance()
            value = float(token.value) if "." in token.value else int(token.value)
            return SqlLiteral(value)
        if token.kind == "STRING":
            self._advance()
            return SqlLiteral(token.value)
        if token.kind == "KEYWORD" and token.value == "NULL":
            self._advance()
            return SqlNull()
        if token.kind == "IDENT":
            name = self._advance().value
            if self._accept_symbol("."):
                column = self._expect_column()
                return ColumnRef(column=column, table=name)
            return ColumnRef(column=name)
        raise SqlSyntaxError(f"expected an expression, found {token.value!r}")

    def _expect_column(self) -> str:
        token = self._peek()
        if token.kind not in ("IDENT",):
            raise SqlSyntaxError(f"expected column name, found {token.value!r}")
        return self._advance().value
