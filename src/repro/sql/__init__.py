"""A small SQL frontend: parser, SQL-semantics evaluator, algebra compiler."""

from .lexer import SqlSyntaxError, Token, tokenize
from .parser import parse
from .evaluator import SqlEvaluator, run_sql
from .compiler import SqlCompilationError, compile_sql
from . import ast

__all__ = [
    "tokenize",
    "Token",
    "SqlSyntaxError",
    "parse",
    "SqlEvaluator",
    "run_sql",
    "compile_sql",
    "SqlCompilationError",
    "ast",
]
