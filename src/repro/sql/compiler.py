"""Compilation of simple SQL blocks to relational algebra.

Only the subquery-free fragment is compiled — ``SELECT [DISTINCT] cols
FROM tables WHERE comparisons`` plus the set operations — which is
enough to push SQL-authored workload queries through the approximation
translations of Figure 2.  Queries with (correlated) subqueries should
either be written directly against the algebra builder API or evaluated
with the SQL-semantics evaluator.
"""

from __future__ import annotations

from ..algebra import ast as ra
from ..algebra.conditions import (
    Attr,
    Condition,
    Eq,
    Ge,
    Gt,
    IsConst,
    IsNull,
    Le,
    Literal,
    Lt,
    Neq,
    Not,
    conjoin,
)
from ..datamodel.schema import DatabaseSchema
from . import ast
from .parser import parse

__all__ = ["compile_sql", "SqlCompilationError"]


class SqlCompilationError(ValueError):
    """Raised when a query uses features outside the compilable fragment."""


_COMPARISONS = {"=": Eq, "<>": Neq, "<": Lt, "<=": Le, ">": Gt, ">=": Ge}


def compile_sql(query: ast.SqlQuery | str, schema: DatabaseSchema) -> ra.Query:
    """Compile a subquery-free SQL query into a relational algebra tree."""
    if isinstance(query, str):
        query = parse(query)
    return _compile_query(query, schema)


def _compile_query(query: ast.SqlQuery, schema: DatabaseSchema) -> ra.Query:
    if isinstance(query, ast.SetOperation):
        left = _compile_query(query.left, schema)
        right = _compile_query(query.right, schema)
        operator = {"UNION": ra.Union, "EXCEPT": ra.Difference, "INTERSECT": ra.Intersection}[
            query.op
        ]
        return operator(left, right)
    if isinstance(query, ast.SelectQuery):
        return _compile_select(query, schema)
    raise SqlCompilationError(f"cannot compile query node {type(query).__name__}")


def _compile_select(query: ast.SelectQuery, schema: DatabaseSchema) -> ra.Query:
    # FROM: product of the tables, columns renamed to "alias.column".
    plan: ra.Query | None = None
    column_map: dict[tuple[str | None, str], str] = {}
    for table_ref in query.tables:
        if table_ref.table not in schema:
            raise SqlCompilationError(f"unknown table {table_ref.table!r}")
        alias = table_ref.name()
        attributes = schema[table_ref.table].attributes
        renaming = {a: f"{alias}.{a}" for a in attributes}
        node: ra.Query = ra.Rename(ra.RelationRef(table_ref.table), renaming)
        plan = node if plan is None else ra.Product(plan, node)
        for attribute in attributes:
            column_map[(alias, attribute)] = f"{alias}.{attribute}"
            column_map.setdefault((None, attribute), f"{alias}.{attribute}")
            if (None, attribute) in column_map and column_map[(None, attribute)] != f"{alias}.{attribute}":
                column_map[(None, attribute)] = column_map[(None, attribute)]
    if plan is None:
        raise SqlCompilationError("a SELECT needs at least one table")

    if query.where is not None:
        # One selection per top-level conjunct rather than one big ∧: the
        # split shape is what the plan optimizer's pushdown rules start
        # from, and even unoptimized evaluation filters earlier this way.
        condition = _compile_condition(query.where, column_map)
        from ..algebra.optimize import split_conjuncts

        for conjunct in reversed(split_conjuncts(condition)):
            plan = ra.Selection(plan, conjunct)

    if query.select_star:
        output_columns = [column for (_alias, _attr), column in sorted(column_map.items()) if _alias]
        output_names = output_columns
    else:
        output_columns = []
        output_names = []
        for item in query.items:
            if not isinstance(item.expr, ast.ColumnRef):
                raise SqlCompilationError("only column references are supported in SELECT lists")
            output_columns.append(_resolve_column(item.expr, column_map))
            output_names.append(item.output_name())
    plan = ra.Projection(plan, output_columns)
    if output_names != output_columns and len(set(output_names)) == len(output_names):
        plan = ra.Rename(plan, dict(zip(output_columns, output_names)))
    return plan


def _resolve_column(ref: ast.ColumnRef, column_map) -> str:
    key = (ref.table, ref.column)
    if key in column_map:
        return column_map[key]
    if (None, ref.column) in column_map:
        return column_map[(None, ref.column)]
    raise SqlCompilationError(f"unknown column {ref}")


def _compile_expr(expr: ast.SqlExpr, column_map):
    if isinstance(expr, ast.ColumnRef):
        return Attr(_resolve_column(expr, column_map))
    if isinstance(expr, ast.SqlLiteral):
        return Literal(expr.value)
    raise SqlCompilationError(f"unsupported expression {type(expr).__name__}")


def _compile_condition(condition: ast.SqlCondition, column_map) -> Condition:
    if isinstance(condition, ast.BoolOp):
        left = _compile_condition(condition.left, column_map)
        right = _compile_condition(condition.right, column_map)
        from ..algebra.conditions import And as CondAnd, Or as CondOr

        return CondAnd(left, right) if condition.op == "AND" else CondOr(left, right)
    if isinstance(condition, ast.NotOp):
        return Not(_compile_condition(condition.operand, column_map))
    if isinstance(condition, ast.Comparison):
        comparison = _COMPARISONS.get(condition.op)
        if comparison is None:
            raise SqlCompilationError(f"unsupported comparison {condition.op!r}")
        return comparison(
            _compile_expr(condition.left, column_map),
            _compile_expr(condition.right, column_map),
        )
    if isinstance(condition, ast.IsNull):
        term = _compile_expr(condition.operand, column_map)
        return IsConst(term) if condition.negated else IsNull(term)
    raise SqlCompilationError(
        f"{type(condition).__name__} is outside the compilable fragment "
        "(use the SQL evaluator or the algebra builder instead)"
    )
