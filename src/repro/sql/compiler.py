"""Compilation of simple SQL blocks to relational algebra.

The compilable fragment is ``SELECT [DISTINCT] cols FROM tables WHERE
conjuncts`` plus the set operations, where a WHERE conjunct is a
comparison, ``IS [NOT] NULL``, an AND/OR/NOT combination of those, or an
*uncorrelated* ``[NOT] IN (subquery)`` / ``[NOT] EXISTS (subquery)``.
Subquery membership compiles to a semijoin (``⋉``) and its negation to
an antijoin (``▷``) against the independently compiled subquery — which
is enough to push SQL-authored workload queries through the
approximation translations of Figure 2.  *Correlated* subqueries (ones
referencing the outer query's columns) are outside the fragment and
raise a :class:`SqlCompilationError` saying so; evaluate those with the
SQL-semantics evaluator or write the algebra directly.
"""

from __future__ import annotations

from ..algebra import ast as ra
from ..algebra.conditions import (
    Attr,
    Condition,
    Eq,
    Ge,
    Gt,
    IsConst,
    IsNull,
    Le,
    Literal,
    Lt,
    Neq,
    Not,
    conjoin,
)
from ..datamodel.schema import DatabaseSchema
from . import ast
from .parser import parse

__all__ = ["compile_sql", "SqlCompilationError"]


class SqlCompilationError(ValueError):
    """Raised when a query uses features outside the compilable fragment."""


_COMPARISONS = {"=": Eq, "<>": Neq, "<": Lt, "<=": Le, ">": Gt, ">=": Ge}


def compile_sql(query: ast.SqlQuery | str, schema: DatabaseSchema) -> ra.Query:
    """Compile an SQL query (uncorrelated subqueries allowed) to algebra."""
    if isinstance(query, str):
        query = parse(query)
    return _compile_query(query, schema)


def _compile_query(query: ast.SqlQuery, schema: DatabaseSchema) -> ra.Query:
    if isinstance(query, ast.SetOperation):
        left = _compile_query(query.left, schema)
        right = _compile_query(query.right, schema)
        operator = {"UNION": ra.Union, "EXCEPT": ra.Difference, "INTERSECT": ra.Intersection}[
            query.op
        ]
        return operator(left, right)
    if isinstance(query, ast.SelectQuery):
        return _compile_select(query, schema)
    raise SqlCompilationError(f"cannot compile query node {type(query).__name__}")


def _compile_select(query: ast.SelectQuery, schema: DatabaseSchema) -> ra.Query:
    # FROM: product of the tables, columns renamed to "alias.column".
    plan: ra.Query | None = None
    column_map: dict[tuple[str | None, str], str] = {}
    for table_ref in query.tables:
        if table_ref.table not in schema:
            raise SqlCompilationError(f"unknown table {table_ref.table!r}")
        alias = table_ref.name()
        attributes = schema[table_ref.table].attributes
        renaming = {a: f"{alias}.{a}" for a in attributes}
        node: ra.Query = ra.Rename(ra.RelationRef(table_ref.table), renaming)
        plan = node if plan is None else ra.Product(plan, node)
        for attribute in attributes:
            column_map[(alias, attribute)] = f"{alias}.{attribute}"
            column_map.setdefault((None, attribute), f"{alias}.{attribute}")
            if (None, attribute) in column_map and column_map[(None, attribute)] != f"{alias}.{attribute}":
                column_map[(None, attribute)] = column_map[(None, attribute)]
    if plan is None:
        raise SqlCompilationError("a SELECT needs at least one table")

    if query.where is not None:
        # One selection per top-level conjunct rather than one big ∧: the
        # split shape is what the plan optimizer's pushdown rules start
        # from, and even unoptimized evaluation filters earlier this way.
        # [NOT] IN/[NOT] EXISTS conjuncts become semijoins/antijoins and
        # are applied after the plain selections, so the (anti)semijoin
        # probes the already-filtered rows.
        plain, subqueries = _split_where(query.where)
        from ..algebra.optimize import split_conjuncts

        for part in plain:
            condition = _compile_condition(part, column_map)
            for conjunct in reversed(split_conjuncts(condition)):
                plan = ra.Selection(plan, conjunct)
        for node, negated in subqueries:
            plan = _apply_subquery(plan, node, negated, column_map, schema)

    if query.select_star:
        output_columns = sorted(
            column for (_alias, _attr), column in column_map.items() if _alias
        )
        output_names = output_columns
    else:
        output_columns = []
        output_names = []
        for item in query.items:
            if not isinstance(item.expr, ast.ColumnRef):
                raise SqlCompilationError("only column references are supported in SELECT lists")
            output_columns.append(_resolve_column(item.expr, column_map))
            output_names.append(item.output_name())
    plan = ra.Projection(plan, output_columns)
    if output_names != output_columns and len(set(output_names)) == len(output_names):
        plan = ra.Rename(plan, dict(zip(output_columns, output_names)))
    return plan


def _split_where(
    condition: ast.SqlCondition,
) -> tuple[list[ast.SqlCondition], list[tuple[ast.SqlCondition, bool]]]:
    """Split a WHERE clause into plain conjuncts and subquery conjuncts.

    Only top-level AND structure is split; each subquery conjunct is
    returned with its effective negation parity (its own ``negated``
    flag XOR any stack of enclosing ``NOT`` wrappers).
    """
    plain: list[ast.SqlCondition] = []
    subqueries: list[tuple[ast.SqlCondition, bool]] = []

    def visit(cond: ast.SqlCondition) -> None:
        if isinstance(cond, ast.BoolOp) and cond.op == "AND":
            visit(cond.left)
            visit(cond.right)
            return
        core, negated = cond, False
        while isinstance(core, ast.NotOp):
            negated = not negated
            core = core.operand
        if isinstance(core, (ast.InSubquery, ast.ExistsSubquery)):
            subqueries.append((core, negated != core.negated))
        else:
            plain.append(cond)

    visit(condition)
    return plain, subqueries


def _apply_subquery(
    plan: ra.Query,
    node: ast.SqlCondition,
    negated: bool,
    column_map,
    schema: DatabaseSchema,
) -> ra.Query:
    """Apply an uncorrelated ``[NOT] IN``/``[NOT] EXISTS`` conjunct.

    The subquery is compiled *standalone* against the database schema:
    membership becomes a semijoin on the (renamed) subquery column,
    ``EXISTS`` becomes a semijoin against the subquery's nullary
    projection (zero shared attributes: the probe only asks "is it
    non-empty?"), and the negated forms use the antijoin.  The semijoin
    keeps the outer rows' multiplicities, matching SQL.
    """
    try:
        sub = _compile_query(node.subquery, schema)
    except SqlCompilationError as exc:
        raise SqlCompilationError(
            f"cannot compile the subquery of {node}: {exc}.  Correlated "
            "subqueries — ones referencing the outer query's columns — "
            "are outside the compilable fragment; use the SQL-semantics "
            "evaluator or the algebra builder instead"
        ) from exc
    operator = ra.AntiSemiJoin if negated else ra.SemiJoin
    if isinstance(node, ast.ExistsSubquery):
        return operator(plan, ra.Projection(sub, ()))
    if not isinstance(node.operand, ast.ColumnRef):
        raise SqlCompilationError(
            "the left side of [NOT] IN must be a column reference"
        )
    column = _resolve_column(node.operand, column_map)
    sub_attrs = sub.output_attributes(schema)
    if len(sub_attrs) != 1:
        raise SqlCompilationError(
            f"the subquery of {node} must return exactly one column, "
            f"got {len(sub_attrs)}"
        )
    if sub_attrs[0] != column:
        sub = ra.Rename(sub, {sub_attrs[0]: column})
    return operator(plan, sub)


def _resolve_column(ref: ast.ColumnRef, column_map) -> str:
    key = (ref.table, ref.column)
    if key in column_map:
        return column_map[key]
    # Only an *unqualified* reference may fall back to any-table lookup;
    # a qualified one with an unknown alias must error (inside a
    # subquery it is how a correlated outer reference is detected —
    # silently resolving it against a same-named local column would
    # compile the wrong query).
    if ref.table is None and (None, ref.column) in column_map:
        return column_map[(None, ref.column)]
    raise SqlCompilationError(f"unknown column {ref}")


def _compile_expr(expr: ast.SqlExpr, column_map):
    if isinstance(expr, ast.ColumnRef):
        return Attr(_resolve_column(expr, column_map))
    if isinstance(expr, ast.SqlLiteral):
        return Literal(expr.value)
    raise SqlCompilationError(f"unsupported expression {type(expr).__name__}")


def _compile_condition(condition: ast.SqlCondition, column_map) -> Condition:
    if isinstance(condition, ast.BoolOp):
        left = _compile_condition(condition.left, column_map)
        right = _compile_condition(condition.right, column_map)
        from ..algebra.conditions import And as CondAnd, Or as CondOr

        return CondAnd(left, right) if condition.op == "AND" else CondOr(left, right)
    if isinstance(condition, ast.NotOp):
        return Not(_compile_condition(condition.operand, column_map))
    if isinstance(condition, ast.Comparison):
        comparison = _COMPARISONS.get(condition.op)
        if comparison is None:
            raise SqlCompilationError(f"unsupported comparison {condition.op!r}")
        return comparison(
            _compile_expr(condition.left, column_map),
            _compile_expr(condition.right, column_map),
        )
    if isinstance(condition, ast.IsNull):
        term = _compile_expr(condition.operand, column_map)
        return IsConst(term) if condition.negated else IsNull(term)
    if isinstance(condition, (ast.InSubquery, ast.ExistsSubquery)):
        raise SqlCompilationError(
            f"{condition} is only compilable as a top-level WHERE "
            "conjunct (optionally negated); nested under OR it has no "
            "semijoin reading — use the SQL-semantics evaluator instead"
        )
    raise SqlCompilationError(
        f"{type(condition).__name__} is outside the compilable fragment "
        "(use the SQL evaluator or the algebra builder instead)"
    )
