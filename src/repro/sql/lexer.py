"""Tokenizer for the supported SQL fragment."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

__all__ = ["Token", "SqlSyntaxError", "tokenize"]

KEYWORDS = {
    "SELECT",
    "DISTINCT",
    "FROM",
    "WHERE",
    "AND",
    "OR",
    "NOT",
    "IN",
    "IS",
    "NULL",
    "EXISTS",
    "UNION",
    "EXCEPT",
    "INTERSECT",
    "ALL",
    "AS",
}

SYMBOLS = ("<>", "<=", ">=", "!=", "=", "<", ">", "(", ")", ",", ".", "*")


class SqlSyntaxError(ValueError):
    """Raised on malformed SQL input."""


@dataclass(frozen=True)
class Token:
    """A lexical token: kind is one of KEYWORD, IDENT, NUMBER, STRING, SYMBOL, EOF."""

    kind: str
    value: str
    position: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r})"


def tokenize(text: str) -> list[Token]:
    """Tokenize an SQL string; raises :class:`SqlSyntaxError` on bad input."""
    return list(_tokens(text))


def _tokens(text: str) -> Iterator[Token]:
    position = 0
    length = len(text)
    while position < length:
        char = text[position]
        if char.isspace():
            position += 1
            continue
        if char == "-" and text[position : position + 2] == "--":
            newline = text.find("\n", position)
            position = length if newline < 0 else newline + 1
            continue
        if char == "'":
            end = position + 1
            chunks = []
            while True:
                if end >= length:
                    raise SqlSyntaxError(f"unterminated string literal at offset {position}")
                if text[end] == "'":
                    if end + 1 < length and text[end + 1] == "'":
                        chunks.append("'")
                        end += 2
                        continue
                    break
                chunks.append(text[end])
                end += 1
            yield Token("STRING", "".join(chunks), position)
            position = end + 1
            continue
        if char.isdigit():
            end = position
            seen_dot = False
            while end < length and (text[end].isdigit() or (text[end] == "." and not seen_dot)):
                if text[end] == ".":
                    # A dot not followed by a digit is a qualifier, not a decimal point.
                    if end + 1 >= length or not text[end + 1].isdigit():
                        break
                    seen_dot = True
                end += 1
            yield Token("NUMBER", text[position:end], position)
            position = end
            continue
        if char.isalpha() or char == "_":
            end = position
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            word = text[position:end]
            kind = "KEYWORD" if word.upper() in KEYWORDS else "IDENT"
            yield Token(kind, word.upper() if kind == "KEYWORD" else word, position)
            position = end
            continue
        for symbol in SYMBOLS:
            if text.startswith(symbol, position):
                yield Token("SYMBOL", symbol, position)
                position += len(symbol)
                break
        else:
            raise SqlSyntaxError(f"unexpected character {char!r} at offset {position}")
    yield Token("EOF", "", length)
