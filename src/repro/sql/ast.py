"""Abstract syntax for the supported SQL fragment.

The fragment covers the core of SQL used in the paper's examples and in
the TPC-H-lite workload: ``SELECT [DISTINCT] ... FROM ... WHERE ...``
with (correlated) ``IN`` / ``NOT IN`` / ``EXISTS`` / ``NOT EXISTS``
subqueries, ``IS [NOT] NULL``, comparisons, ``AND``/``OR``/``NOT``, and
the set operations ``UNION`` / ``EXCEPT`` / ``INTERSECT`` (with or
without ``ALL``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

__all__ = [
    "SqlExpr",
    "ColumnRef",
    "SqlLiteral",
    "SqlNull",
    "SqlCondition",
    "Comparison",
    "IsNull",
    "InSubquery",
    "ExistsSubquery",
    "BoolOp",
    "NotOp",
    "SelectItem",
    "TableRef",
    "SelectQuery",
    "SetOperation",
    "SqlQuery",
]


# ----------------------------------------------------------------------
# Scalar expressions
# ----------------------------------------------------------------------
class SqlExpr:
    """A scalar expression appearing in SELECT lists or conditions."""


@dataclass(frozen=True)
class ColumnRef(SqlExpr):
    """A (possibly qualified) column reference ``alias.column`` or ``column``."""

    column: str
    table: str | None = None

    def __str__(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass(frozen=True)
class SqlLiteral(SqlExpr):
    """A literal constant (number or string)."""

    value: Any

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class SqlNull(SqlExpr):
    """The literal ``NULL``."""

    def __str__(self) -> str:
        return "NULL"


# ----------------------------------------------------------------------
# Conditions
# ----------------------------------------------------------------------
class SqlCondition:
    """A condition in a WHERE clause (evaluated in three-valued logic)."""


@dataclass(frozen=True)
class Comparison(SqlCondition):
    """``left op right`` with op in =, <>, <, <=, >, >=."""

    op: str
    left: SqlExpr
    right: SqlExpr

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class IsNull(SqlCondition):
    """``expr IS [NOT] NULL``."""

    operand: SqlExpr
    negated: bool = False

    def __str__(self) -> str:
        return f"{self.operand} IS {'NOT ' if self.negated else ''}NULL"


@dataclass(frozen=True)
class InSubquery(SqlCondition):
    """``expr [NOT] IN (subquery)``."""

    operand: SqlExpr
    subquery: "SqlQuery"
    negated: bool = False

    def __str__(self) -> str:
        return f"{self.operand} {'NOT ' if self.negated else ''}IN (...)"


@dataclass(frozen=True)
class ExistsSubquery(SqlCondition):
    """``[NOT] EXISTS (subquery)``."""

    subquery: "SqlQuery"
    negated: bool = False

    def __str__(self) -> str:
        return f"{'NOT ' if self.negated else ''}EXISTS (...)"


@dataclass(frozen=True)
class BoolOp(SqlCondition):
    """``AND`` / ``OR`` of two conditions."""

    op: str  # "AND" or "OR"
    left: SqlCondition
    right: SqlCondition

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class NotOp(SqlCondition):
    """``NOT condition``."""

    operand: SqlCondition

    def __str__(self) -> str:
        return f"NOT ({self.operand})"


# ----------------------------------------------------------------------
# Queries
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SelectItem:
    """One item of a SELECT list: an expression with an optional output name."""

    expr: SqlExpr
    alias: str | None = None

    def output_name(self) -> str:
        if self.alias:
            return self.alias
        if isinstance(self.expr, ColumnRef):
            return self.expr.column
        return str(self.expr)


@dataclass(frozen=True)
class TableRef:
    """A FROM item: a base table with an optional alias."""

    table: str
    alias: str | None = None

    def name(self) -> str:
        return self.alias or self.table


class SqlQuery:
    """Base class of SQL queries (SELECT blocks and set operations)."""


@dataclass(frozen=True)
class SelectQuery(SqlQuery):
    """A single SELECT block."""

    items: tuple[SelectItem, ...]
    tables: tuple[TableRef, ...]
    where: SqlCondition | None = None
    distinct: bool = False
    select_star: bool = False

    def __init__(
        self,
        items: Sequence[SelectItem],
        tables: Sequence[TableRef],
        where: SqlCondition | None = None,
        distinct: bool = False,
        select_star: bool = False,
    ):
        object.__setattr__(self, "items", tuple(items))
        object.__setattr__(self, "tables", tuple(tables))
        object.__setattr__(self, "where", where)
        object.__setattr__(self, "distinct", distinct)
        object.__setattr__(self, "select_star", select_star)


@dataclass(frozen=True)
class SetOperation(SqlQuery):
    """``left UNION/EXCEPT/INTERSECT [ALL] right``."""

    op: str  # "UNION", "EXCEPT", "INTERSECT"
    left: SqlQuery
    right: SqlQuery
    all: bool = False
