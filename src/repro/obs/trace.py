"""Context-variable span trees: where did an evaluation spend its time?

The tracing layer follows the same discipline as
:mod:`repro.resilience.deadline` — an ambient context variable, never a
parameter threaded through every call site, and **zero hot-path cost
when disabled**: :func:`span` performs exactly one context-variable read
and yields a shared no-op singleton when no trace is active, so
instrumented code pays nothing until somebody asks for a trace.

A trace is a tree of :class:`Span` objects.  The engine opens a root
span per evaluation (``trace=True``), phases open children with
``with span("optimize"):``, and instrumented code attaches counters
(rows in/out, cache events, SQL statements) to :func:`current_span`.
Because tracing observes and never steers, the flag does **not** enter
evaluation options or cache keys — enabling a trace can never change an
answer, only describe how it was produced.

Crossing process pools: a :class:`Span` holds live children and cannot
be pickled, so :meth:`SpanContext.capture` snapshots just enough
identity to ride an ``EngineTask``/``ShardTask`` into a worker.  The
worker calls :meth:`SpanContext.activate` to open a *fresh local* root
(replacing, not extending, any ambient trace — under serial or thread
executors the orchestrator's trace is ambient in the same context and
would otherwise double-record), returns ``root.export()`` as plain
data, and the orchestrator grafts that export back under the parent
span with :meth:`Span.graft`.
"""

from __future__ import annotations

import contextvars
import itertools
import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator

__all__ = [
    "Span",
    "SpanContext",
    "add_span_hook",
    "current_span",
    "export_ndjson",
    "remove_span_hook",
    "span",
    "start_trace",
    "tracing_active",
]

_ACTIVE: contextvars.ContextVar["Span | None"] = contextvars.ContextVar(
    "repro_obs_active_span", default=None
)

# Span-creation hooks: the overhead-guard test registers a counter here
# to prove that a disabled trace allocates no Span objects at all.
_SPAN_HOOKS: list[Callable[["Span"], None]] = []
_TRACE_IDS = itertools.count(1)


def add_span_hook(hook: Callable[["Span"], None]) -> None:
    """Call ``hook(span)`` for every :class:`Span` constructed."""
    _SPAN_HOOKS.append(hook)


def remove_span_hook(hook: Callable[["Span"], None]) -> None:
    try:
        _SPAN_HOOKS.remove(hook)
    except ValueError:
        pass


class Span:
    """One timed node in a trace tree (wall *and* CPU time).

    Mutable by design: counters accumulate while the span is open.  A
    span is owned by the context that opened it; cross-process children
    arrive as plain exported dicts via :meth:`graft`.
    """

    __slots__ = (
        "name",
        "attrs",
        "counters",
        "events",
        "children",
        "error",
        "_wall0",
        "_cpu0",
        "wall_ms",
        "cpu_ms",
    )

    def __init__(self, name: str, attrs: dict[str, Any] | None = None):
        self.name = name
        self.attrs: dict[str, Any] = dict(attrs) if attrs else {}
        self.counters: dict[str, float] = {}
        self.events: list[dict[str, Any]] = []
        self.children: list[Any] = []  # Span | exported dict (grafted)
        self.error: str | None = None
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        self.wall_ms: float | None = None
        self.cpu_ms: float | None = None
        if _SPAN_HOOKS:
            for hook in list(_SPAN_HOOKS):
                hook(self)

    # ------------------------------------------------------------------
    # Instrumentation surface (mirrored by _NoopSpan)
    # ------------------------------------------------------------------
    def incr(self, counter: str, amount: float = 1) -> None:
        self.counters[counter] = self.counters.get(counter, 0) + amount

    def set_attr(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def add_event(self, name: str, **attrs: Any) -> None:
        event = {"event": name, "at_ms": (time.perf_counter() - self._wall0) * 1000.0}
        if attrs:
            event.update(attrs)
        self.events.append(event)

    def graft(self, exported: dict[str, Any]) -> None:
        """Attach a worker's exported subtree as a child of this span."""
        if exported:
            self.children.append(exported)

    def finish(self, error: BaseException | None = None) -> None:
        if self.wall_ms is None:
            self.wall_ms = (time.perf_counter() - self._wall0) * 1000.0
            self.cpu_ms = (time.process_time() - self._cpu0) * 1000.0
        if error is not None:
            self.error = f"{type(error).__name__}: {error}"

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def export(self) -> dict[str, Any]:
        """The whole subtree as JSON-safe plain data."""
        self.finish()
        out: dict[str, Any] = {
            "name": self.name,
            "wall_ms": round(self.wall_ms or 0.0, 3),
            "cpu_ms": round(self.cpu_ms or 0.0, 3),
        }
        if self.attrs:
            out["attrs"] = {k: _json_safe(v) for k, v in self.attrs.items()}
        if self.counters:
            out["counters"] = dict(self.counters)
        if self.events:
            out["events"] = list(self.events)
        if self.error:
            out["error"] = self.error
        if self.children:
            out["children"] = [
                child.export() if isinstance(child, Span) else child
                for child in self.children
            ]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.wall_ms is None else f"{self.wall_ms:.2f}ms"
        return f"Span({self.name!r}, {state}, {len(self.children)} children)"


class _NoopSpan:
    """The shared do-nothing span yielded when tracing is off."""

    __slots__ = ()

    def incr(self, counter: str, amount: float = 1) -> None:
        pass

    def set_attr(self, key: str, value: Any) -> None:
        pass

    def add_event(self, name: str, **attrs: Any) -> None:
        pass

    def graft(self, exported: dict[str, Any]) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<noop span>"


_NOOP = _NoopSpan()


def tracing_active() -> bool:
    """Is a trace currently collecting in this context?"""
    return _ACTIVE.get() is not None


def current_span() -> "Span | _NoopSpan":
    """The innermost open span, or the no-op singleton when untraced."""
    active = _ACTIVE.get()
    return active if active is not None else _NOOP


@contextmanager
def span(name: str, **attrs: Any) -> Iterator["Span | _NoopSpan"]:
    """Open a child span under the active trace.

    When no trace is active this is one context-variable read and a
    yield of the shared no-op singleton — no allocation, no timing
    calls.  Exceptions are recorded on the span and re-raised.
    """
    parent = _ACTIVE.get()
    if parent is None:
        yield _NOOP
        return
    child = Span(name, attrs if attrs else None)
    parent.children.append(child)
    token = _ACTIVE.set(child)
    try:
        yield child
    except BaseException as exc:
        child.finish(exc)
        raise
    finally:
        child.finish()
        _ACTIVE.reset(token)


@contextmanager
def start_trace(name: str, **attrs: Any) -> Iterator[Span]:
    """Begin collecting a trace rooted at ``name``.

    If a trace is already active (a server request tracing an engine
    call, say) the new root nests as a child span, so the subtree still
    stitches into the enclosing trace; :meth:`Span.export` on the
    yielded span covers exactly this evaluation either way.
    """
    parent = _ACTIVE.get()
    root = Span(name, attrs if attrs else None)
    if parent is not None:
        parent.children.append(root)
    token = _ACTIVE.set(root)
    try:
        yield root
    except BaseException as exc:
        root.finish(exc)
        raise
    finally:
        root.finish()
        _ACTIVE.reset(token)


# ----------------------------------------------------------------------
# Crossing process boundaries
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SpanContext:
    """A picklable marker that tracing is on, carried by pool tasks.

    Live spans hold children and clocks and cannot cross a pickle
    boundary; what a worker actually needs is (a) *whether* to collect
    and (b) a label tying its local tree back to the parent.
    """

    trace_id: int
    parent_name: str

    @classmethod
    def capture(cls) -> "SpanContext | None":
        """Snapshot the active span, or None when tracing is off."""
        active = _ACTIVE.get()
        if active is None:
            return None
        return cls(trace_id=next(_TRACE_IDS), parent_name=active.name)

    @contextmanager
    def activate(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Collect a fresh local tree in a worker.

        Deliberately *replaces* any ambient trace for the duration (see
        module docstring: serial and thread executors share the
        orchestrator's context, and extending it would double-record
        once the export is grafted).
        """
        root = Span(name, attrs if attrs else None)
        root.attrs.setdefault("pid", os.getpid())
        token = _ACTIVE.set(root)
        try:
            yield root
        except BaseException as exc:
            root.finish(exc)
            raise
        finally:
            root.finish()
            _ACTIVE.reset(token)


# ----------------------------------------------------------------------
# Serialisation helpers
# ----------------------------------------------------------------------
def _json_safe(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_json_safe(v) for v in value]
    return str(value)


def export_ndjson(exported: dict[str, Any]) -> str:
    """Flatten an exported span tree to NDJSON, one span per line.

    Each line carries ``id`` and ``parent`` fields so the tree can be
    rebuilt (or bulk-loaded into any log store) downstream.
    """
    lines: list[str] = []
    counter = itertools.count(1)

    def walk(node: dict[str, Any], parent_id: int | None) -> None:
        span_id = next(counter)
        flat = {k: v for k, v in node.items() if k != "children"}
        flat["id"] = span_id
        flat["parent"] = parent_id
        lines.append(json.dumps(flat, sort_keys=True, default=str))
        for child in node.get("children", ()):  # depth-first, parents first
            walk(child, span_id)

    walk(exported, None)
    return "\n".join(lines)
