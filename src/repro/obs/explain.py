"""EXPLAIN: render one evaluation's profile as a human-readable report.

The engine already records *what happened* in result metadata — the
``strategy="auto"`` decision (``metadata["plan"]``), the execution
backend resolution (``metadata["backend"]``), the sharding mode, the
resilience events (retries, degradations) — and, when ``trace=True``,
*where the time went* as a span tree (``metadata["trace"]``).  This
module folds all of it into one report::

    session = Session(db, shards=4)
    print(session.explain("SELECT ..."))      # evaluates with trace=True

    result = session.auto(query, trace=True)
    print(result.explain())                   # same report, existing result

No engine imports at module level: the renderer consumes plain metadata
mappings, so :mod:`repro.obs` stays importable from every engine layer
without cycles.
"""

from __future__ import annotations

from typing import Any, Mapping

__all__ = ["render_explain", "render_span_tree"]


def _scalar(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _render_mapping(mapping: Mapping[str, Any]) -> str:
    parts = []
    for key, value in mapping.items():
        if isinstance(value, Mapping):
            parts.append(f"{key}={{{_render_mapping(value)}}}")
        elif isinstance(value, (list, tuple)):
            parts.append(f"{key}=[{', '.join(_scalar(v) for v in value)}]")
        else:
            parts.append(f"{key}={_scalar(value)}")
    return ", ".join(parts)


def _span_label(node: Mapping[str, Any]) -> str:
    label = str(node.get("name", "?"))
    timing = f"{node.get('wall_ms', 0.0):.2f}ms wall / {node.get('cpu_ms', 0.0):.2f}ms cpu"
    extras = []
    attrs = node.get("attrs")
    if attrs:
        extras.append(_render_mapping(attrs))
    counters = node.get("counters")
    if counters:
        extras.append(_render_mapping(counters))
    events = node.get("events")
    if events:
        names = [str(event.get("event", "?")) for event in events]
        extras.append("events: " + ", ".join(names))
    if node.get("error"):
        extras.append(f"ERROR {node['error']}")
    suffix = f"  [{'; '.join(extras)}]" if extras else ""
    return f"{label:<28s} {timing}{suffix}"


def render_span_tree(node: Mapping[str, Any], *, indent: str = "  ") -> list[str]:
    """An exported span tree as indented report lines."""
    lines = [indent + _span_label(node)]

    def walk(children: list, depth_prefix: str) -> None:
        for position, child in enumerate(children):
            last = position == len(children) - 1
            connector = "└─ " if last else "├─ "
            lines.append(depth_prefix + connector + _span_label(child))
            walk(
                list(child.get("children", ())),
                depth_prefix + ("   " if last else "│  "),
            )

    walk(list(node.get("children", ())), indent)
    return lines


#: Metadata sections surfaced ahead of the trace, in report order.
_SECTIONS = ("plan", "backend", "sharding", "resilience", "degraded", "exact")


def render_explain(result: Any) -> str:
    """The EXPLAIN report of one :class:`~repro.engine.result.QueryResult`.

    Accepts any object with ``strategy``/``semantics``/``relation``/
    ``elapsed``/``from_cache``/``metadata`` attributes (duck-typed to
    avoid an import cycle with the engine).
    """
    metadata: Mapping[str, Any] = result.metadata or {}
    lines = [
        "EXPLAIN "
        f"strategy={result.strategy} semantics={result.semantics} "
        f"rows={len(result.relation)} elapsed={result.elapsed * 1000:.2f}ms "
        f"cached={'yes' if result.from_cache else 'no'}"
    ]
    for key in _SECTIONS:
        value = metadata.get(key)
        if value is None:
            continue
        if isinstance(value, Mapping):
            lines.append(f"{key}: {_render_mapping(value)}")
        else:
            lines.append(f"{key}: {_scalar(value)}")
    trace = metadata.get("trace")
    if isinstance(trace, Mapping):
        lines.append("trace:")
        lines.extend(render_span_tree(trace))
    else:
        lines.append(
            "trace: none collected (evaluate with trace=True, or use "
            "session.explain())"
        )
    return "\n".join(lines)
