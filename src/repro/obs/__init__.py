"""``repro.obs`` — engine-wide observability: tracing, metrics, EXPLAIN.

Three pieces, stdlib only, with the same zero-cost-when-disabled
discipline as :mod:`repro.resilience`:

* :mod:`repro.obs.trace` — context-variable span trees.  The engine
  opens a root span per ``trace=True`` evaluation; instrumented code
  opens children with ``with span("optimize"):`` and attaches counters
  to :func:`current_span`.  A picklable :class:`SpanContext` rides
  ``EngineTask``/``ShardTask`` into process pools so worker spans stitch
  back under the parent.  When no trace is active, :func:`span` is one
  context-variable read — no allocation.
* :mod:`repro.obs.metrics` — a process-wide :class:`MetricsRegistry`
  (counters, gauges, bounded-window histograms with p50/p99) fed by hook
  points in the engine, cache backends, execution backends, sharding
  orchestrator and circuit breakers; also home of the server's
  per-request aggregation (:class:`ServerMetrics`, formerly
  ``repro.server.metrics``).
* :mod:`repro.obs.explain` — folds the span tree and the decision
  metadata (``plan``/``backend``/``sharding``/``resilience``) into one
  human-readable report behind ``session.explain(query)`` and
  ``result.explain()``.

Tracing observes and never steers: the ``trace=`` flag enters neither
evaluation options nor cache keys, so enabling it can never change an
answer — only describe how it was produced.
"""

from .explain import render_explain, render_span_tree
from .metrics import (
    Histogram,
    MetricsRegistry,
    RequestRecord,
    ServerMetrics,
    global_registry,
    metrics_enabled,
    percentile,
    reset_metrics,
    set_metrics_enabled,
)
from .trace import (
    Span,
    SpanContext,
    add_span_hook,
    current_span,
    export_ndjson,
    remove_span_hook,
    span,
    start_trace,
    tracing_active,
)

__all__ = [
    # trace
    "Span",
    "SpanContext",
    "add_span_hook",
    "current_span",
    "export_ndjson",
    "remove_span_hook",
    "span",
    "start_trace",
    "tracing_active",
    # metrics
    "Histogram",
    "MetricsRegistry",
    "RequestRecord",
    "ServerMetrics",
    "global_registry",
    "metrics_enabled",
    "percentile",
    "reset_metrics",
    "set_metrics_enabled",
    # explain
    "render_explain",
    "render_span_tree",
]
