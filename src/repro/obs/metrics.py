"""Process-wide metrics: counters, gauges, bounded-window histograms.

One :class:`MetricsRegistry` per process (:func:`global_registry`)
absorbs the engine's operational signals — cache hits/misses/evictions
per backend, backend resolutions and fallback reasons, shard retries
and degradations, circuit-breaker transitions — and serves them as a
plain-data snapshot for ``GET /metrics``, ``Engine.describe()`` and
tests.  Histograms keep bounded reservoirs (same trick as the server's
latency window), so p50/p99 cost O(window log window) and memory stays
flat on a long-running server.

The hot-path helpers (:func:`incr`, :func:`observe`, :func:`gauge_set`)
check one module-level flag first, so ``set_metrics_enabled(False)``
(or ``REPRO_OBS_METRICS=0``) reduces every hook point to a single
boolean test.  Instrumentation is per *query phase*, never per row.

This module also owns the per-request aggregation that used to live in
``repro.server.metrics`` (:class:`RequestRecord` / :class:`ServerMetrics`)
— the ``/stats`` response shape is pinned by the server tests and must
not drift.
"""

from __future__ import annotations

import os
import threading
import time
from collections import Counter, deque
from dataclasses import dataclass
from typing import Any, Iterable

from ..resilience import breaker as _breaker

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "RequestRecord",
    "ServerMetrics",
    "gauge_set",
    "global_registry",
    "incr",
    "metrics_enabled",
    "observe",
    "percentile",
    "reset_metrics",
    "set_metrics_enabled",
    "snapshot",
]


def percentile(samples: list[float], q: float) -> float:
    """The q-th percentile (0..100) of ``samples``, 0.0 when empty."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


class Histogram:
    """A bounded sliding window of observations with percentile summary."""

    def __init__(self, window: int = 1024):
        self._samples: deque[float] = deque(maxlen=window)
        self._count = 0
        self._total = 0.0

    def observe(self, value: float) -> None:
        self._samples.append(float(value))
        self._count += 1
        self._total += float(value)

    def summary(self) -> dict[str, float]:
        data = list(self._samples)
        return {
            "count": self._count,
            "mean": (sum(data) / len(data)) if data else 0.0,
            "p50": percentile(data, 50),
            "p99": percentile(data, 99),
            "max": max(data) if data else 0.0,
        }


def _labels_key(name: str, labels: dict[str, Any]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Thread-safe named counters, gauges and histograms.

    Labels are flattened into the key (``cache.hits{backend=memory}``)
    so a snapshot is a plain ``str -> number`` mapping — trivially
    JSON-safe for ``/metrics`` and ``describe()``.
    """

    def __init__(self, histogram_window: int = 1024):
        self._lock = threading.Lock()
        self._histogram_window = histogram_window
        self._counters: Counter = Counter()
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}

    def incr(self, name: str, amount: float = 1, **labels: Any) -> None:
        with self._lock:
            self._counters[_labels_key(name, labels)] += amount

    def gauge_set(self, name: str, value: float, **labels: Any) -> None:
        with self._lock:
            self._gauges[_labels_key(name, labels)] = float(value)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        with self._lock:
            key = _labels_key(name, labels)
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = self._histograms[key] = Histogram(self._histogram_window)
            histogram.observe(value)

    def counter_value(self, name: str, **labels: Any) -> float:
        with self._lock:
            return self._counters.get(_labels_key(name, labels), 0)

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {
                "counters": dict(sorted(self._counters.items())),
                "gauges": dict(sorted(self._gauges.items())),
                "histograms": {
                    key: self._histograms[key].summary()
                    for key in sorted(self._histograms)
                },
            }

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


# ----------------------------------------------------------------------
# The process-global registry and its hot-path helpers
# ----------------------------------------------------------------------
_GLOBAL = MetricsRegistry()

_ENABLED = os.environ.get("REPRO_OBS_METRICS", "1").strip().lower() not in {
    "0",
    "false",
    "off",
}


def global_registry() -> MetricsRegistry:
    return _GLOBAL


def metrics_enabled() -> bool:
    return _ENABLED


def set_metrics_enabled(enabled: bool) -> None:
    global _ENABLED
    _ENABLED = bool(enabled)


def incr(name: str, amount: float = 1, **labels: Any) -> None:
    if _ENABLED:
        _GLOBAL.incr(name, amount, **labels)


def gauge_set(name: str, value: float, **labels: Any) -> None:
    if _ENABLED:
        _GLOBAL.gauge_set(name, value, **labels)


def observe(name: str, value: float, **labels: Any) -> None:
    if _ENABLED:
        _GLOBAL.observe(name, value, **labels)


def snapshot() -> dict[str, Any]:
    return _GLOBAL.snapshot()


def reset_metrics() -> None:
    _GLOBAL.reset()


# ----------------------------------------------------------------------
# Circuit-breaker transitions
# ----------------------------------------------------------------------
def _record_breaker_transition(name: str, old_state: str, new_state: str) -> None:
    incr(
        "resilience.breaker.transitions",
        breaker=name,
        transition=f"{old_state}->{new_state}",
    )


_breaker.add_transition_listener(_record_breaker_transition)


# ----------------------------------------------------------------------
# Per-request aggregation (formerly repro.server.metrics)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RequestRecord:
    """What one finished request contributes to the aggregates."""

    tenant: str
    outcome: str  # "ok" | "error" | "cancelled" | "rejected"
    queue_wait: float = 0.0
    execution: float = 0.0
    total: float = 0.0
    cache_hit: bool | None = None
    strategy: str | None = None


class ServerMetrics:
    """Thread-safe aggregation of request records for ``/stats``.

    Every admitted request records one :class:`RequestRecord` — queue
    wait (time between admission and winning an execution slot),
    execution time, whether the result came from the tenant's cache
    slice, and the strategy that actually ran (for ``strategy="auto"``
    that is the planner's choice, read off the result metadata).
    """

    def __init__(self, window: int = 4096):
        self._lock = threading.Lock()
        self._started = time.time()
        self._outcomes: Counter = Counter()
        self._tenants: Counter = Counter()
        self._strategies: Counter = Counter()
        self._cache_hits = 0
        self._cache_misses = 0
        self._latency: deque[float] = deque(maxlen=window)
        self._queue_wait: deque[float] = deque(maxlen=window)
        self._execution: deque[float] = deque(maxlen=window)

    def record(self, record: RequestRecord) -> None:
        with self._lock:
            self._outcomes[record.outcome] += 1
            self._tenants[record.tenant] += 1
            if record.strategy:
                self._strategies[record.strategy] += 1
            if record.cache_hit is not None:
                if record.cache_hit:
                    self._cache_hits += 1
                else:
                    self._cache_misses += 1
            if record.outcome == "ok":
                self._latency.append(record.total)
                self._queue_wait.append(record.queue_wait)
                self._execution.append(record.execution)

    @staticmethod
    def _summary(samples: Iterable[float]) -> dict[str, float]:
        data = list(samples)
        return {
            "count": len(data),
            "mean": sum(data) / len(data) if data else 0.0,
            "p50": percentile(data, 50),
            "p99": percentile(data, 99),
            "max": max(data) if data else 0.0,
        }

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            completed = self._outcomes.get("ok", 0)
            total_cache = self._cache_hits + self._cache_misses
            uptime = time.time() - self._started
            return {
                "uptime": uptime,
                "requests": dict(self._outcomes),
                "completed": completed,
                "qps": completed / uptime if uptime > 0 else 0.0,
                "tenants": dict(self._tenants),
                "strategies": dict(self._strategies),
                "cache": {
                    "hits": self._cache_hits,
                    "misses": self._cache_misses,
                    "hit_rate": (
                        self._cache_hits / total_cache if total_cache else 0.0
                    ),
                },
                "latency": self._summary(self._latency),
                "queue_wait": self._summary(self._queue_wait),
                "execution": self._summary(self._execution),
            }
