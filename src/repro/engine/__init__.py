"""The unified evaluation engine: one Session/Engine API over every strategy.

The paper compares evaluation regimes over incomplete databases — SQL's
three-valued semantics, naïve evaluation, exact certain answers, the
approximation schemes of Figure 2 and the c-table strategies.  This
package exposes all of them behind a single façade::

    from repro.engine import Session

    session = Session(database)
    session.evaluate("SELECT oid FROM Orders", strategy="sql-3vl")
    session.evaluate(algebra_query, strategy="approx-guagliardo16")
    session.evaluate(fo_query, strategy="exact-certain")

Layers:

* :mod:`repro.engine.frontend` — normalization of SQL / algebra /
  calculus inputs into one internal representation;
* :mod:`repro.engine.registry` — the ``@register_strategy`` registry and
  the :class:`EvaluationStrategy` extension point;
* :mod:`repro.engine.strategies` — the six built-in strategies;
* :mod:`repro.engine.result` — the unified :class:`QueryResult` with
  per-tuple certainty annotations;
* :mod:`repro.engine.cache` — the per-session result cache keyed on
  (query fingerprint, database fingerprint, strategy);
* :mod:`repro.engine.core` — :class:`Engine` and :class:`Session`;
* :mod:`repro.engine.aio` — :class:`AsyncEngine` and
  :class:`AsyncSession`, the awaitable twins with concurrent
  batch/compare fan-out over a worker pool.
"""

from .cache import (
    CacheStats,
    ResultCache,
    canonical_option_value,
    canonical_options,
    database_fingerprint,
    evaluation_cache_key,
)
from .core import Engine, Session, default_engine, evaluate
from .aio import AsyncEngine, AsyncSession, EngineTask, run_engine_task
from .errors import (
    EngineError,
    NormalizationError,
    StrategyNotApplicableError,
    UnknownStrategyError,
)
from .frontend import NormalizedQuery, normalize_query, query_fingerprint
from .registry import (
    EvaluationStrategy,
    StrategyOutcome,
    annotate,
    available_strategies,
    get_strategy,
    register_strategy,
    strategy_aliases,
    unregister_strategy,
)
from .result import AnnotatedTuple, Certainty, QueryResult

# Importing the module registers the built-in strategies.
from . import strategies as _builtin_strategies  # noqa: F401

__all__ = [
    # Core façade
    "Engine",
    "Session",
    "default_engine",
    "evaluate",
    # Async façade
    "AsyncEngine",
    "AsyncSession",
    "EngineTask",
    "run_engine_task",
    # Results
    "QueryResult",
    "AnnotatedTuple",
    "Certainty",
    # Registry
    "EvaluationStrategy",
    "StrategyOutcome",
    "register_strategy",
    "unregister_strategy",
    "get_strategy",
    "available_strategies",
    "strategy_aliases",
    "annotate",
    # Normalization
    "NormalizedQuery",
    "normalize_query",
    "query_fingerprint",
    # Cache
    "ResultCache",
    "CacheStats",
    "database_fingerprint",
    "evaluation_cache_key",
    "canonical_options",
    "canonical_option_value",
    # Errors
    "EngineError",
    "UnknownStrategyError",
    "StrategyNotApplicableError",
    "NormalizationError",
]
