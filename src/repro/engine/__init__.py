"""The unified evaluation engine: one Session/Engine API over every strategy.

The paper compares evaluation regimes over incomplete databases — SQL's
three-valued semantics, naïve evaluation, exact certain answers, the
approximation schemes of Figure 2 and the c-table strategies.  This
package exposes all of them behind a single façade::

    from repro.engine import Session

    session = Session(database)
    session.evaluate("SELECT oid FROM Orders", strategy="sql-3vl")
    session.evaluate(algebra_query, strategy="approx-guagliardo16")
    session.evaluate(fo_query, strategy="exact-certain")

Layers:

* :mod:`repro.engine.frontend` — normalization of SQL / algebra /
  calculus inputs into one internal representation (with the Theorem
  4.4 fragment classification of whichever form is richest);
* :mod:`repro.engine.registry` — the ``@register_strategy`` registry and
  the :class:`EvaluationStrategy` extension point;
* :mod:`repro.engine.capabilities` — the declarative
  :class:`StrategyCapabilities` record every strategy describes itself
  with (semantics, consumed forms, exactness/soundness, shardability,
  cost);
* :mod:`repro.engine.planner` — the ``strategy="auto"`` planner picking
  a strategy from the capability table and recording a
  :class:`PlanDecision` in the result metadata;
* :mod:`repro.engine.strategies` — the six built-in strategies;
* :mod:`repro.engine.result` — the unified :class:`QueryResult` with
  per-tuple certainty annotations;
* :mod:`repro.engine.cache` — pluggable result-cache backends
  (:class:`CacheBackend`: the in-memory LRU, or a persistent
  ``cache="disk:/path"`` backend surviving across processes) keyed on
  (query fingerprint, database fingerprint, strategy);
* :mod:`repro.engine.core` — :class:`Engine` and :class:`Session`;
* :mod:`repro.engine.aio` — :class:`AsyncEngine` and
  :class:`AsyncSession`, the awaitable twins with concurrent
  batch/compare fan-out over a worker pool.
"""

from .cache import (
    CacheBackend,
    CacheStats,
    DiskCacheBackend,
    MemoryCacheBackend,
    NamespacedCacheBackend,
    ResultCache,
    canonical_option_value,
    canonical_options,
    database_fingerprint,
    evaluation_cache_key,
    resolve_cache_backend,
)
from .capabilities import EXACT_FRAGMENTS_CWA, StrategyCapabilities
from .shm_cache import SharedMemoryCacheBackend
from .core import Engine, Session, default_engine, evaluate
from .aio import AsyncEngine, AsyncSession, EngineTask, run_engine_task
from .errors import (
    EngineError,
    NormalizationError,
    StrategyNotApplicableError,
    UnknownStrategyError,
)
from .frontend import NormalizedQuery, normalize_query, query_fingerprint
from .planner import DEFAULT_EXACT_BUDGET, PlanDecision, choose_strategy
from .registry import (
    EvaluationStrategy,
    StrategyOutcome,
    annotate,
    available_strategies,
    get_strategy,
    register_strategy,
    strategy_aliases,
    strategy_capabilities,
    unregister_strategy,
)
from .result import AnnotatedTuple, Certainty, QueryResult

# Importing the module registers the built-in strategies.
from . import strategies as _builtin_strategies  # noqa: F401

__all__ = [
    # Core façade
    "Engine",
    "Session",
    "default_engine",
    "evaluate",
    # Async façade
    "AsyncEngine",
    "AsyncSession",
    "EngineTask",
    "run_engine_task",
    # Results
    "QueryResult",
    "AnnotatedTuple",
    "Certainty",
    # Registry and capabilities
    "EvaluationStrategy",
    "StrategyOutcome",
    "StrategyCapabilities",
    "EXACT_FRAGMENTS_CWA",
    "register_strategy",
    "unregister_strategy",
    "get_strategy",
    "available_strategies",
    "strategy_capabilities",
    "strategy_aliases",
    "annotate",
    # Planner
    "PlanDecision",
    "choose_strategy",
    "DEFAULT_EXACT_BUDGET",
    # Normalization
    "NormalizedQuery",
    "normalize_query",
    "query_fingerprint",
    # Cache backends
    "CacheBackend",
    "MemoryCacheBackend",
    "DiskCacheBackend",
    "SharedMemoryCacheBackend",
    "NamespacedCacheBackend",
    "ResultCache",
    "CacheStats",
    "resolve_cache_backend",
    "database_fingerprint",
    "evaluation_cache_key",
    "canonical_options",
    "canonical_option_value",
    # Errors
    "EngineError",
    "UnknownStrategyError",
    "StrategyNotApplicableError",
    "NormalizationError",
]
