"""The ``Engine``/``Session`` façade: one call for every evaluation regime.

::

    from repro.engine import Session

    session = Session(database)
    result = session.evaluate(query, strategy="approx-guagliardo16")
    result.certain_rows()          # sound answers
    session.compare(query)         # every applicable strategy side by side

``Engine`` is the stateful dispatcher (registry lookup, normalization,
timing, result cache); ``Session`` binds an engine to one database and
memoises the database fingerprint so cache keys are cheap.  Benchmarks,
workloads and the examples all go through this module; the per-module
entry points (``incomplete.naive``, ``approx.*``, ``ctables.strategies``,
``sql.evaluator``) remain available but are deprecated as *public* API.
"""

from __future__ import annotations

import time
from typing import Any, Iterable, Mapping, Sequence

from ..datamodel.database import Database
from .cache import CacheStats, ResultCache, database_fingerprint
from .errors import EngineError, StrategyNotApplicableError
from .frontend import NormalizedQuery, normalize_query
from .registry import available_strategies, get_strategy
from .result import QueryResult

__all__ = ["Engine", "Session", "default_engine", "evaluate"]

_SEMANTICS = ("set", "bag")


class Engine:
    """Evaluates queries through registered strategies, with caching."""

    def __init__(self, *, cache_size: int = 256, default_semantics: str = "set"):
        if default_semantics not in _SEMANTICS:
            raise EngineError(
                f"unknown semantics {default_semantics!r}; expected 'set' or 'bag'"
            )
        self.default_semantics = default_semantics
        self._cache = ResultCache(cache_size)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @staticmethod
    def strategies() -> tuple[str, ...]:
        """Canonical names of every registered strategy."""
        return available_strategies()

    @property
    def cache_stats(self) -> CacheStats:
        return self._cache.stats

    @property
    def cache_enabled(self) -> bool:
        return self._cache.enabled

    def clear_cache(self) -> None:
        self._cache.clear()

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self,
        query: Any,
        database: Database,
        *,
        strategy: str = "naive",
        semantics: str | None = None,
        use_cache: bool = True,
        database_fp: str | None = None,
        **options: Any,
    ) -> QueryResult:
        """Evaluate ``query`` on ``database`` with the named strategy.

        ``query`` may be an SQL string, an SQL/algebra/calculus AST, or an
        :class:`FoQuery` — see :func:`repro.engine.normalize_query`.
        Options beyond the standard ones are passed to the strategy (e.g.
        ``variant="aware"`` for ``ctables``).
        """
        semantics = semantics or self.default_semantics
        if semantics not in _SEMANTICS:
            raise EngineError(
                f"unknown semantics {semantics!r}; expected 'set' or 'bag'"
            )
        strat = get_strategy(strategy)
        if semantics not in strat.supported_semantics:
            raise StrategyNotApplicableError(
                f"strategy {strat.name!r} supports {strat.supported_semantics} "
                f"semantics, not {semantics!r}"
            )
        normalized = normalize_query(query, database.schema())

        key = None
        if use_cache and self._cache.enabled:
            if database_fp is None:
                database_fp = database_fingerprint(database)
            key = (
                normalized.fingerprint,
                database_fp,
                strat.name,
                semantics,
                tuple(sorted((name, repr(value)) for name, value in options.items())),
            )
            cached = self._cache.get(key)
            if cached is not None:
                return cached.as_cached()

        start = time.perf_counter()
        outcome = strat.run(normalized, database, semantics=semantics, **options)
        elapsed = time.perf_counter() - start
        result = QueryResult(
            strategy=strat.name,
            semantics=semantics,
            relation=outcome.answer,
            tuples=outcome.annotated,
            certain=outcome.certain,
            possible=outcome.possible,
            certainly_false=outcome.certainly_false,
            elapsed=elapsed,
            from_cache=False,
            fingerprint=normalized.fingerprint,
            metadata=dict(outcome.metadata),
        )
        if key is not None:
            self._cache.put(key, result)
        return result

    def evaluate_batch(
        self,
        queries: Iterable[Any],
        database: Database,
        *,
        strategy: str = "naive",
        semantics: str | None = None,
        use_cache: bool = True,
        **options: Any,
    ) -> list[QueryResult]:
        """Evaluate many queries on one database, hashing the database once."""
        database_fp = (
            database_fingerprint(database)
            if use_cache and self._cache.enabled
            else None
        )
        return [
            self.evaluate(
                query,
                database,
                strategy=strategy,
                semantics=semantics,
                use_cache=use_cache,
                database_fp=database_fp,
                **options,
            )
            for query in queries
        ]

    def compare(
        self,
        query: Any,
        database: Database,
        *,
        strategies: Sequence[str] | None = None,
        semantics: str | None = None,
        use_cache: bool = True,
        skip_inapplicable: bool = True,
        database_fp: str | None = None,
        options: Mapping[str, Mapping[str, Any]] | None = None,
    ) -> dict[str, QueryResult]:
        """Run several strategies on the same query, keyed by strategy name.

        ``options`` maps a strategy name to its extra keyword options.
        With ``skip_inapplicable`` (the default), strategies that cannot
        consume the query's frontend are silently omitted — handy when
        comparing an SQL query that only some strategies can lower.
        """
        names = tuple(strategies) if strategies is not None else self.strategies()
        per_strategy = options or {}
        if database_fp is None and use_cache and self._cache.enabled:
            database_fp = database_fingerprint(database)
        results: dict[str, QueryResult] = {}
        for name in names:
            try:
                results[name] = self.evaluate(
                    query,
                    database,
                    strategy=name,
                    semantics=semantics,
                    use_cache=use_cache,
                    database_fp=database_fp,
                    **dict(per_strategy.get(name, {})),
                )
            except StrategyNotApplicableError:
                if not skip_inapplicable:
                    raise
        return results


class Session:
    """An :class:`Engine` bound to one database.

    The session owns the result cache (a fresh engine is created unless
    one is shared explicitly) and memoises the database fingerprint, so
    repeated evaluations of the same query are answered from the cache
    without re-hashing the data.
    """

    def __init__(
        self,
        database: Database,
        *,
        engine: Engine | None = None,
        cache_size: int = 256,
        default_semantics: str = "set",
    ):
        self.database = database
        self.engine = engine or Engine(
            cache_size=cache_size, default_semantics=default_semantics
        )
        self._database_fp: str | None = None

    def _fingerprint(self) -> str:
        if self._database_fp is None:
            self._database_fp = database_fingerprint(self.database)
        return self._database_fp

    def with_database(self, database: Database) -> "Session":
        """A new session on another database, sharing this session's engine."""
        return Session(database, engine=self.engine)

    # ------------------------------------------------------------------
    # Delegation
    # ------------------------------------------------------------------
    def _caching(self, kwargs: Mapping[str, Any]) -> bool:
        """Will this call touch the cache (and hence need the fingerprint)?"""
        return bool(kwargs.get("use_cache", True)) and self.engine.cache_enabled

    def evaluate(self, query: Any, **kwargs: Any) -> QueryResult:
        if self._caching(kwargs):
            kwargs.setdefault("database_fp", self._fingerprint())
        return self.engine.evaluate(query, self.database, **kwargs)

    def evaluate_batch(self, queries: Iterable[Any], **kwargs: Any) -> list[QueryResult]:
        return [self.evaluate(query, **kwargs) for query in queries]

    def compare(self, query: Any, **kwargs: Any) -> dict[str, QueryResult]:
        if self._caching(kwargs):
            kwargs.setdefault("database_fp", self._fingerprint())
        return self.engine.compare(query, self.database, **kwargs)

    # Small conveniences mirroring the paper's vocabulary.
    def sql(self, query: Any, **kwargs: Any) -> QueryResult:
        """SQL-semantics evaluation (strategy ``sql-3vl``)."""
        return self.evaluate(query, strategy="sql-3vl", **kwargs)

    def naive(self, query: Any, **kwargs: Any) -> QueryResult:
        return self.evaluate(query, strategy="naive", **kwargs)

    def certain(self, query: Any, **kwargs: Any) -> QueryResult:
        """Exact certain answers (strategy ``exact-certain``)."""
        return self.evaluate(query, strategy="exact-certain", **kwargs)

    def strategies(self) -> tuple[str, ...]:
        return self.engine.strategies()

    @property
    def cache_stats(self) -> CacheStats:
        return self.engine.cache_stats

    def clear_cache(self) -> None:
        self.engine.clear_cache()


_DEFAULT_ENGINE: Engine | None = None


def default_engine() -> Engine:
    """A process-wide engine for one-off :func:`evaluate` calls."""
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = Engine()
    return _DEFAULT_ENGINE


def evaluate(query: Any, database: Database, **kwargs: Any) -> QueryResult:
    """Module-level convenience: ``default_engine().evaluate(...)``."""
    return default_engine().evaluate(query, database, **kwargs)
