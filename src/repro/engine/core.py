"""The ``Engine``/``Session`` façade: one call for every evaluation regime.

::

    from repro.engine import Session

    session = Session(database)
    result = session.evaluate(query, strategy="approx-guagliardo16")
    result.certain_rows()          # sound answers
    session.compare(query)         # every applicable strategy side by side

``Engine`` is the stateful dispatcher (registry lookup, normalization,
timing, result cache); ``Session`` binds an engine to one database and
memoises the database fingerprint so cache keys are cheap.  Benchmarks,
workloads and the examples all go through this module; the per-module
entry points (``incomplete.naive``, ``approx.*``, ``ctables.strategies``,
``sql.evaluator``) remain available but are deprecated as *public* API.

Sharding: ``Engine(shards=4, executor="process")`` (or per call,
``evaluate(query, db, shards=4)``) partitions the database horizontally
and evaluates distributable plans shard-by-shard in parallel, unioning
the partial results — see :mod:`repro.sharding`.  Passing a
:class:`~repro.sharding.ShardedDatabase` enables the sharded path
automatically; ``shards=0`` forces monolithic evaluation.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from typing import Any, Iterable, Mapping, Sequence

from dataclasses import replace

from ..datamodel.database import Database
from ..exec import interpreter_note, validate_backend
from ..obs import metrics as obs_metrics
from ..obs.explain import render_explain
from ..obs.trace import span, start_trace
from ..resilience import (
    Deadline,
    RetryPolicy,
    breaker_snapshots,
    deadline_scope,
    resolve_deadline,
    resolve_retry,
)
from .cache import (
    CacheBackend,
    CacheStats,
    database_fingerprint,
    evaluation_cache_key,
    resolve_cache_backend,
)
from .errors import EngineError, StrategyNotApplicableError
from .frontend import NormalizedQuery, normalize_query
from .planner import AUTO, PlanDecision, choose_strategy, default_exact_budget
from .registry import available_strategies, get_strategy
from .result import QueryResult

__all__ = ["Engine", "Session", "default_engine", "evaluate"]

_SEMANTICS = ("set", "bag")
_ON_SHARD_ERROR = ("raise", "retry", "degrade")


class Engine:
    """Evaluates queries through registered strategies, with caching."""

    def __init__(
        self,
        *,
        cache_size: int = 256,
        cache: Any = None,
        default_semantics: str = "set",
        shards: int | None = None,
        executor: Any = "serial",
        partitioner: Any = None,
        optimize: bool = True,
        stats: bool = True,
        backend: str = "auto",
        auto_exact_budget: int | None = None,
        timeout: float | None = None,
        on_shard_error: str = "raise",
        retry: Any = None,
        trace: bool = False,
    ):
        if default_semantics not in _SEMANTICS:
            raise EngineError(
                f"unknown semantics {default_semantics!r}; expected 'set' or 'bag'"
            )
        validate_backend(backend)
        if shards is not None and shards < 0:
            raise EngineError("shards must be a non-negative integer or None")
        if on_shard_error not in _ON_SHARD_ERROR:
            raise EngineError(
                f"unknown on_shard_error {on_shard_error!r}; "
                f"expected one of {_ON_SHARD_ERROR}"
            )
        self.default_semantics = default_semantics
        self.default_shards = shards
        self.default_executor = executor
        self.default_partitioner = partitioner
        #: Default for the per-call ``optimize=`` option: run the plan
        #: optimizer (:mod:`repro.algebra.optimize`) inside every
        #: strategy that supports it.  ``Engine(optimize=False)`` or
        #: ``evaluate(..., optimize=False)`` is the escape hatch back to
        #: the textbook plans.
        self.default_optimize = bool(optimize)
        #: Default for the per-call ``stats=`` option: feed the optimizer
        #: per-relation statistics (:mod:`repro.algebra.stats`) so the
        #: physical plan — join order, hash build sides — is chosen by
        #: estimated cost.  ``Engine(stats=False)`` or ``evaluate(...,
        #: stats=False)`` is the escape hatch back to heuristic-only
        #: planning; stats never change answers, only costs.
        self.default_stats = bool(stats)
        #: Default for the per-call ``backend=`` option: which execution
        #: backend (:mod:`repro.exec`) runs the algebra plans of
        #: strategies that declare more than the interpreter.  ``"auto"``
        #: pushes expressible plans into SQLite and falls back to the
        #: interpreter otherwise (the decision lands in
        #: ``result.metadata["backend"]``); ``Engine(backend=
        #: "interpreter")`` or ``evaluate(..., backend="interpreter")``
        #: is the escape hatch back to the tree-walking evaluator.
        self.default_backend = backend
        #: Valuation-space budget under which ``strategy="auto"`` may
        #: pick ``exact-certain``; ``None`` uses the planner default
        #: (:data:`repro.engine.planner.DEFAULT_EXACT_BUDGET`).
        self.auto_exact_budget = auto_exact_budget
        #: Default wall-clock budget in seconds for every ``evaluate``
        #: call (``None`` = unbounded); per-call ``timeout=`` overrides.
        #: See :mod:`repro.resilience` — evaluations that blow the
        #: budget raise :class:`~repro.resilience.DeadlineExceeded`.
        self.default_timeout = timeout
        #: What a failed shard does to a sharded evaluation: ``"raise"``
        #: fails the request, ``"retry"`` retries transient failures
        #: before failing, ``"degrade"`` additionally drops failed
        #: shards and returns the surviving merge when the query's
        #: fragment makes that a sound under-approximation.
        self.default_on_shard_error = on_shard_error
        #: The engine's :class:`~repro.resilience.RetryPolicy` for
        #: transient failures (``None``/``True`` = the package default,
        #: ``False`` = no retries).
        self.default_retry = resolve_retry(retry)
        #: Default for the per-call ``trace=`` option: collect a span
        #: tree (:mod:`repro.obs`) for every evaluation and attach it as
        #: ``result.metadata["trace"]``.  Tracing observes and never
        #: steers — the flag enters neither strategy options nor cache
        #: keys, so traced and untraced calls share cache entries.
        self.default_trace = bool(trace)
        #: The result-cache backend: the in-memory LRU by default, a
        #: persistent one with ``cache="disk:/path"`` or a
        #: :class:`~repro.engine.cache.CacheBackend` instance.
        self._cache = resolve_cache_backend(cache, cache_size=cache_size)
        self._executors: dict[Any, Any] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @staticmethod
    def strategies() -> tuple[str, ...]:
        """Canonical names of every registered strategy."""
        return available_strategies()

    def describe(self) -> dict[str, Any]:
        """The engine's introspection surface, as plain data.

        Includes the full capability table (what ``strategy="auto"``
        consults — see :mod:`repro.engine.planner` for the decision
        rules), the cache backend, and the engine defaults, so "why did
        auto choose that?" is answerable without reading engine code.
        """
        table = available_strategies(verbose=True)
        strategies = {}
        for name, caps in table.items():
            strat = get_strategy(name)
            strategies[name] = {
                "description": strat.description,
                "aliases": list(strat.aliases),
                **caps.as_dict(),
            }
        return {
            "strategies": strategies,
            "cache": {
                "backend": type(self._cache).__name__,
                "enabled": self.cache_enabled,
                "stats": self.cache_stats,
            },
            "defaults": {
                "semantics": self.default_semantics,
                "optimize": self.default_optimize,
                "stats": self.default_stats,
                "backend": self.default_backend,
                "shards": self.default_shards,
                "executor": self.default_executor,
                "auto_exact_budget": (
                    default_exact_budget()
                    if self.auto_exact_budget is None
                    else self.auto_exact_budget
                ),
                "timeout": self.default_timeout,
                "on_shard_error": self.default_on_shard_error,
                "retry": (
                    None
                    if self.default_retry is None
                    else {
                        "max_attempts": self.default_retry.max_attempts,
                        "base_delay": self.default_retry.base_delay,
                        "max_delay": self.default_retry.max_delay,
                    }
                ),
                "trace": self.default_trace,
            },
            "observability": {
                "trace_default": self.default_trace,
                "metrics_enabled": obs_metrics.metrics_enabled(),
                "metrics": obs_metrics.snapshot(),
                "breakers": breaker_snapshots(),
            },
        }

    @property
    def cache(self) -> CacheBackend:
        """The result-cache backend this engine stores into."""
        return self._cache

    @property
    def cache_stats(self) -> CacheStats:
        return self._cache.stats

    @property
    def cache_enabled(self) -> bool:
        return self._cache.enabled

    def clear_cache(self) -> None:
        self._cache.clear()

    def close(self) -> None:
        """Shut down any shard-executor worker pools this engine created.

        Long-lived applications that discard engines should call this
        (or use the engine as a context manager); otherwise process
        pools live until interpreter exit.
        """
        for executor in self._executors.values():
            executor.close()
        self._executors.clear()

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self,
        query: Any,
        database: Database,
        *,
        strategy: str = "naive",
        semantics: str | None = None,
        use_cache: bool = True,
        database_fp: str | None = None,
        shards: int | None = None,
        executor: Any = None,
        partitioner: Any = None,
        optimize: bool | None = None,
        stats: bool | None = None,
        backend: str | None = None,
        timeout: float | Deadline | None = None,
        on_shard_error: str | None = None,
        retry: RetryPolicy | bool | None = None,
        trace: bool | None = None,
        **options: Any,
    ) -> QueryResult:
        """Evaluate ``query`` on ``database`` with the named strategy.

        ``query`` may be an SQL string, an SQL/algebra/calculus AST, or an
        :class:`FoQuery` — see :func:`repro.engine.normalize_query`.
        Options beyond the standard ones are passed to the strategy (e.g.
        ``variant="aware"`` for ``ctables``).

        ``shards``/``executor``/``partitioner`` control sharded
        evaluation (:mod:`repro.sharding`): ``shards=N`` partitions a
        plain database on the fly (prefer a pre-built
        :class:`~repro.sharding.ShardedDatabase` or ``Session(...,
        shards=N)`` to partition once), ``shards=0`` forces monolithic
        evaluation even on a sharded database.

        ``optimize`` toggles the plan optimizer
        (:mod:`repro.algebra.optimize`) for strategies that support it;
        ``None`` uses the engine default (on).  The resolved value is
        part of the result-cache key, so optimized and unoptimized
        results never alias.  ``stats`` likewise toggles statistics-fed
        cost-based planning (:mod:`repro.algebra.stats`) for strategies
        that declare the capability — estimates pick join orders and
        hash build sides but can never change answers.

        ``backend`` picks the execution backend (:mod:`repro.exec`) for
        strategies that run whole algebra plans: ``"auto"`` (the engine
        default) compiles expressible plans to a single SQLite statement
        and falls back to the interpreter otherwise, ``"interpreter"``
        forces the tree-walking evaluator, and ``"sqlite"`` demands
        pushdown (raising when the plan cannot be compiled).  The
        requested and resolved backends land in
        ``result.metadata["backend"]``; the resolved request is part of
        the cache key for strategies that honour it.

        ``strategy="auto"`` lets the engine pick: naïve where Theorem
        4.4 makes it exact, the sound Figure 2b approximation otherwise,
        exact certain answers under a size budget — see
        :mod:`repro.engine.planner`.  The chosen strategy evaluates
        through the ordinary path (cache keys included), and the
        decision is recorded under ``result.metadata["plan"]``.

        ``timeout`` is a wall-clock budget in seconds (or an existing
        :class:`~repro.resilience.Deadline`, so one deadline can bound a
        whole batch); when it runs out the evaluation aborts with
        :class:`~repro.resilience.DeadlineExceeded` — at evaluator plan
        nodes, inside ``Dom^k`` enumerations, in the SQLite backend's
        progress handler, and at shard fan-out boundaries.  Deadlines
        never enter cache keys: a result computed under a deadline is
        the same result.

        ``on_shard_error`` governs sharded evaluation when a shard
        fails: ``"raise"`` (default) propagates the failure,
        ``"retry"`` retries transient failures per the ``retry`` policy
        first, ``"degrade"`` additionally drops shards that still fail
        and merges the survivors — allowed only where the query's
        fragment (CQ/UCQ, monotone) makes the subset merge a sound
        under-approximation, recorded in
        ``result.metadata["degraded"]`` with guarantee
        ``"sound-subset"``.

        ``trace`` collects a span tree (:mod:`repro.obs`) covering the
        whole call — normalization, planning, cache probes, per-shard
        execution — and attaches its export as
        ``result.metadata["trace"]`` (rendered by ``result.explain()``).
        Like deadlines, the flag never enters strategy options or cache
        keys: tracing can describe an answer but never change it.
        Stored cache entries carry no trace; the returned copy does.
        """
        do_trace = self.default_trace if trace is None else bool(trace)
        with (start_trace("evaluate") if do_trace else nullcontext()) as root:
            strat, semantics, normalized, decision = self._prepare_call(
                query, database, strategy, semantics
            )
            options = self._resolve_options(strat, optimize, stats, backend, options)
            deadline = resolve_deadline(timeout, self.default_timeout)
            if on_shard_error is None:
                on_shard_error = self.default_on_shard_error
            elif on_shard_error not in _ON_SHARD_ERROR:
                raise EngineError(
                    f"unknown on_shard_error {on_shard_error!r}; "
                    f"expected one of {_ON_SHARD_ERROR}"
                )
            retry_policy = self.default_retry if retry is None else resolve_retry(retry)
            if deadline is not None:
                # Admission check: a request whose budget is already gone must
                # fail here, not race the backend (a tiny SQLite statement can
                # finish before the progress handler ever fires).
                deadline.check("evaluation admission")
            sharded = self._sharded_database(database, shards, partitioner)
            if root is not None:
                root.set_attr("strategy", strat.name)
                root.set_attr("semantics", semantics)
            if sharded is not None:
                from ..sharding.evaluate import evaluate_sharded

                result = evaluate_sharded(
                    normalized,
                    sharded,
                    strat,
                    semantics=semantics,
                    options=options,
                    executor=self._shard_executor(executor),
                    cache=self._cache if use_cache and self._cache.enabled else None,
                    database_fp=database_fp,
                    deadline=deadline,
                    on_shard_error=on_shard_error,
                    retry=retry_policy,
                    evaluate_coalesced=lambda: self._evaluate_monolithic(
                        normalized,
                        sharded,
                        strat,
                        semantics,
                        use_cache=use_cache,
                        database_fp=database_fp,
                        options=options,
                        deadline=deadline,
                    ),
                )
            else:
                result = self._evaluate_monolithic(
                    normalized,
                    database,
                    strat,
                    semantics,
                    use_cache=use_cache,
                    database_fp=database_fp,
                    options=options,
                    deadline=deadline,
                )
        obs_metrics.incr("engine.evaluations", strategy=strat.name)
        obs_metrics.observe(
            "engine.elapsed_ms", result.elapsed * 1000.0, strategy=strat.name
        )
        result = _with_plan_metadata(result, decision)
        result = _with_backend_note(result, strat, backend)
        if root is not None:
            # Attached post-hoc like the plan/backend notes: the cached
            # entry carries no trace, the returned copy does.
            result = replace(
                result, metadata={**result.metadata, "trace": root.export()}
            )
        return result

    def _prepare_call(
        self,
        query: Any,
        database: Database,
        strategy: str,
        semantics: str | None,
    ):
        """The shared evaluate prologue: validate, normalize, plan.

        Used by both this engine and :class:`~repro.engine.aio.AsyncEngine`
        so the twins cannot drift on validation, planning, or error
        wording.  Returns ``(strategy, semantics, normalized, decision)``
        where ``decision`` is the :class:`~repro.engine.planner.PlanDecision`
        for ``strategy="auto"`` calls and ``None`` for explicit ones.
        """
        semantics = semantics or self.default_semantics
        if semantics not in _SEMANTICS:
            raise EngineError(
                f"unknown semantics {semantics!r}; expected 'set' or 'bag'"
            )
        with span("normalize"):
            normalized = normalize_query(query, database.schema())
        decision: PlanDecision | None = None
        if strategy == AUTO:
            with span("plan") as planning:
                decision = choose_strategy(
                    normalized,
                    database,
                    semantics=semantics,
                    exact_budget=self.auto_exact_budget,
                )
                planning.set_attr("chosen", decision.strategy)
                planning.set_attr("reason", decision.reason)
            strategy = decision.strategy
        strat = get_strategy(strategy)
        if semantics not in strat.supported_semantics:
            raise StrategyNotApplicableError(
                f"strategy {strat.name!r} supports {strat.supported_semantics} "
                f"semantics, not {semantics!r}"
            )
        return strat, semantics, normalized, decision

    def _resolve_options(
        self,
        strat: Any,
        optimize: bool | None,
        stats: bool | None,
        backend: str | None,
        options: Mapping[str, Any],
    ) -> dict[str, Any]:
        """Fold the resolved ``optimize``/``stats``/``backend`` settings
        into the options.

        Only strategies declaring ``supports_optimize`` (respectively
        ``supports_stats``, a multi-entry ``backends`` record) receive
        the option (and hence carry it in their cache keys); for the
        others the result cannot depend on it, so leaving it out keeps
        their keys stable and their option validation strict.  Shared
        with :class:`~repro.engine.aio.AsyncEngine` so the twins agree
        on keys and worker-task options.
        """
        options = dict(options)
        if getattr(strat, "supports_optimize", False):
            resolved = self.default_optimize if optimize is None else bool(optimize)
            options.setdefault("optimize", resolved)
        if getattr(strat, "supports_stats", False):
            resolved = self.default_stats if stats is None else bool(stats)
            options.setdefault("stats", resolved)
        resolved_backend = self.default_backend if backend is None else backend
        validate_backend(resolved_backend)
        supported = getattr(strat, "supported_backends", ("interpreter",))
        if len(supported) > 1:
            options.setdefault("backend", resolved_backend)
        elif resolved_backend == "sqlite":
            # An explicit pushdown demand on an interpreter-only strategy
            # cannot be honoured; raise the skippable error so compare()
            # omits the strategy instead of silently running elsewhere.
            raise StrategyNotApplicableError(
                f"strategy {strat.name!r} supports backends {supported}, "
                "not 'sqlite'; use backend='auto' or backend='interpreter'"
            )
        return options

    def _sharded_database(
        self, database: Database, shards: int | None, partitioner: Any
    ):
        """Resolve the sharded view of this call, or None for monolithic.

        An already-sharded database is used as-is unless the *caller*
        explicitly asks for a different shard count — the engine default
        never re-partitions a database somebody partitioned on purpose.
        """
        from ..sharding.database import ShardedDatabase

        if isinstance(database, ShardedDatabase):
            if shards == 0:
                return None
            matching = (shards is None or shards == database.shard_count) and (
                partitioner is None or partitioner is database.partitioner
            )
            if matching:
                return database
            return ShardedDatabase.from_database(
                database,
                shards or database.shard_count,
                partitioner or database.partitioner,
            )
        if shards is None:
            shards = self.default_shards
        if not shards:
            return None
        return ShardedDatabase.from_database(
            database, shards, partitioner or self.default_partitioner
        )

    def _shard_executor(self, spec: Any):
        """Resolve (and memoise) the shard executor for this call."""
        from ..sharding.executor import ShardExecutor, resolve_executor

        if spec is None:
            spec = self.default_executor
        if isinstance(spec, ShardExecutor):
            return spec
        executor = self._executors.get(spec)
        if executor is None:
            executor = resolve_executor(spec)
            self._executors[spec] = executor
        return executor

    def _evaluate_monolithic(
        self,
        normalized: Any,
        database: Database,
        strat: Any,
        semantics: str,
        *,
        use_cache: bool,
        database_fp: str | None,
        options: Mapping[str, Any],
        deadline: Deadline | None = None,
    ) -> QueryResult:
        key = None
        if use_cache and self._cache.enabled:
            with span("cache.lookup") as lookup:
                if database_fp is None:
                    database_fp = database_fingerprint(database)
                key = evaluation_cache_key(
                    normalized.fingerprint, database_fp, strat.name, semantics, options
                )
                cached = self._cache.get(key)
                lookup.set_attr("outcome", "hit" if cached is not None else "miss")
            if cached is not None:
                return cached.as_cached()

        start = time.perf_counter()
        # The deadline travels implicitly (context variable), never in
        # ``options``: it must not reach strategy option validation or
        # the cache key above.  A DeadlineExceeded propagates before the
        # cache put below, so partial work never poisons the cache.
        with span("execute", strategy=strat.name) as execute:
            with deadline_scope(deadline):
                outcome = strat.run(
                    normalized, database, semantics=semantics, **options
                )
            execute.incr("rows_out", len(outcome.answer))
        elapsed = time.perf_counter() - start
        result = QueryResult(
            strategy=strat.name,
            semantics=semantics,
            relation=outcome.answer,
            tuples=outcome.annotated,
            certain=outcome.certain,
            possible=outcome.possible,
            certainly_false=outcome.certainly_false,
            elapsed=elapsed,
            from_cache=False,
            fingerprint=normalized.fingerprint,
            metadata=dict(outcome.metadata),
        )
        if key is not None:
            self._cache.put(key, result)
        return result

    def evaluate_batch(
        self,
        queries: Iterable[Any],
        database: Database,
        *,
        strategy: str = "naive",
        semantics: str | None = None,
        use_cache: bool = True,
        shards: int | None = None,
        executor: Any = None,
        partitioner: Any = None,
        **options: Any,
    ) -> list[QueryResult]:
        """Evaluate many queries on one database, hashing the database once.

        With sharding, the database is also partitioned once up front
        rather than per query.
        """
        sharded = self._sharded_database(database, shards, partitioner)
        if sharded is not None:
            database = sharded
            shards = None  # already resolved; avoid re-partitioning per query
        database_fp = (
            database_fingerprint(database)
            if use_cache and self._cache.enabled
            else None
        )
        return [
            self.evaluate(
                query,
                database,
                strategy=strategy,
                semantics=semantics,
                use_cache=use_cache,
                database_fp=database_fp,
                shards=shards,
                executor=executor,
                partitioner=partitioner,
                **options,
            )
            for query in queries
        ]

    def compare(
        self,
        query: Any,
        database: Database,
        *,
        strategies: Sequence[str] | None = None,
        semantics: str | None = None,
        use_cache: bool = True,
        skip_inapplicable: bool = True,
        database_fp: str | None = None,
        shards: int | None = None,
        executor: Any = None,
        partitioner: Any = None,
        optimize: bool | None = None,
        stats: bool | None = None,
        backend: str | None = None,
        timeout: float | Deadline | None = None,
        on_shard_error: str | None = None,
        retry: RetryPolicy | bool | None = None,
        trace: bool | None = None,
        options: Mapping[str, Mapping[str, Any]] | None = None,
    ) -> dict[str, QueryResult]:
        """Run several strategies on the same query, keyed by strategy name.

        ``options`` maps a strategy name to its extra keyword options.
        With ``skip_inapplicable`` (the default), strategies that cannot
        consume the query's frontend are silently omitted — handy when
        comparing an SQL query that only some strategies can lower.

        ``timeout`` bounds the *whole* comparison: the budget is
        resolved to one deadline up front and shared by every strategy,
        so a slow strategy cannot starve the rest of the wall clock it
        was promised.  A blown deadline raises
        :class:`~repro.resilience.DeadlineExceeded` — it is an
        operational failure, never skipped like an inapplicable
        strategy.
        """
        names = tuple(strategies) if strategies is not None else self.strategies()
        per_strategy = options or {}
        deadline = resolve_deadline(timeout, self.default_timeout)
        sharded = self._sharded_database(database, shards, partitioner)
        if sharded is not None:
            database = sharded
            shards = None
        if database_fp is None and use_cache and self._cache.enabled:
            database_fp = database_fingerprint(database)
        results: dict[str, QueryResult] = {}
        for name in names:
            extra = dict(per_strategy.get(name, {}))
            # A per-strategy {'optimize': ...} / {'stats': ...} /
            # {'backend': ...} overrides the call-level argument instead
            # of colliding with it.
            resolved_optimize = extra.pop("optimize", optimize)
            resolved_stats = extra.pop("stats", stats)
            resolved_backend = extra.pop("backend", backend)
            try:
                results[name] = self.evaluate(
                    query,
                    database,
                    strategy=name,
                    semantics=semantics,
                    use_cache=use_cache,
                    database_fp=database_fp,
                    shards=shards,
                    executor=executor,
                    partitioner=partitioner,
                    optimize=resolved_optimize,
                    stats=resolved_stats,
                    backend=resolved_backend,
                    timeout=deadline,
                    on_shard_error=on_shard_error,
                    retry=retry,
                    trace=trace,
                    **extra,
                )
            except StrategyNotApplicableError:
                if not skip_inapplicable:
                    raise
        return results


def _with_plan_metadata(
    result: QueryResult, decision: PlanDecision | None
) -> QueryResult:
    """Record an ``auto`` plan decision on the result it produced.

    Attached *after* evaluation (and after any cache hit), so auto and
    explicit calls share cache entries — the stored result carries no
    plan, the returned copy does.
    """
    if decision is None:
        return result
    return replace(result, metadata={**result.metadata, "plan": decision.as_metadata()})


def _with_backend_note(
    result: QueryResult, strat: Any, requested: str | None
) -> QueryResult:
    """Answer an explicit ``backend=`` request on interpreter-only paths.

    Strategies that route plans through :func:`repro.exec.execute_plans`
    record the requested/resolved pair themselves; for the rest, an
    explicitly requested backend still deserves an answer, so the note is
    attached post-hoc (after any cache hit — stored results carry no
    note, the returned copy does, mirroring ``_with_plan_metadata``).
    """
    if requested is None or "backend" in result.metadata:
        return result
    note = interpreter_note(
        requested, f"strategy {strat.name!r} executes on the interpreter only"
    )
    return replace(result, metadata={**result.metadata, "backend": note})


def _presharded_database(
    database: Database, shards: int | None, partitioner: Any
) -> Database:
    """Partition a session's database up front when ``shards`` asks for it."""
    if shards is None or shards <= 0:
        return database
    from ..sharding.database import ShardedDatabase

    already_matching = (
        isinstance(database, ShardedDatabase)
        and database.shard_count == shards
        and (partitioner is None or partitioner is database.partitioner)
    )
    if already_matching:
        return database
    if partitioner is None and isinstance(database, ShardedDatabase):
        partitioner = database.partitioner
    return ShardedDatabase.from_database(database, shards, partitioner)


class Session:
    """An :class:`Engine` bound to one database.

    The session owns the result cache (a fresh engine is created unless
    one is shared explicitly) and memoises the database fingerprint, so
    repeated evaluations of the same query are answered from the cache
    without re-hashing the data.

    A session is a context manager: ``with Session(db) as session:``
    closes the private engine (and hence any worker pools it spawned)
    on exit.  An engine passed in explicitly is *shared* — the session
    never closes it, and the engine-level constructor arguments
    (``cache_size``, ``cache``, ``default_semantics``, ``optimize``,
    ``stats``, ``backend``, ``auto_exact_budget``) are ignored in favour
    of the shared engine's own configuration; pass
    ``optimize=``/``stats=``/``backend=`` per ``evaluate``/``compare``
    call to override it on a shared engine.

    ``cache="disk:/path"`` (or a
    :class:`~repro.engine.cache.CacheBackend` instance) makes results
    survive this session: a later session — or another process — on the
    same directory gets cache hits for unchanged (query, database)
    pairs.
    """

    def __init__(
        self,
        database: Database,
        *,
        engine: Engine | None = None,
        cache_size: int = 256,
        cache: Any = None,
        default_semantics: str = "set",
        shards: int | None = None,
        executor: Any = None,
        partitioner: Any = None,
        optimize: bool = True,
        stats: bool = True,
        backend: str = "auto",
        auto_exact_budget: int | None = None,
        timeout: float | None = None,
        on_shard_error: str = "raise",
        retry: Any = None,
        trace: bool = False,
    ):
        self.database = _presharded_database(database, shards, partitioner)
        self._owns_engine = engine is None
        self.engine = engine or Engine(
            cache_size=cache_size,
            cache=cache,
            default_semantics=default_semantics,
            executor=executor or "serial",
            optimize=optimize,
            stats=stats,
            backend=backend,
            auto_exact_budget=auto_exact_budget,
            timeout=timeout,
            on_shard_error=on_shard_error,
            retry=retry,
            trace=trace,
        )
        # Per-session sharding config, honoured even on a shared engine
        # and carried across with_database().
        self._executor = executor
        self._shards = shards
        self._partitioner = partitioner
        self._database_fp: str | None = None

    def _fingerprint(self) -> str:
        if self._database_fp is None:
            self._database_fp = database_fingerprint(self.database)
        return self._database_fp

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the engine this session created (shared engines survive)."""
        if self._owns_engine:
            self.engine.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def with_database(self, database: Database) -> "Session":
        """A new session on another database, sharing this session's engine.

        The session's sharding configuration carries over: a plain
        database is re-partitioned to the session's shard count, while a
        database that is already sharded is respected as-is.
        """
        from ..sharding.database import ShardedDatabase

        shards = None if isinstance(database, ShardedDatabase) else self._shards
        session = Session(
            database,
            engine=self.engine,
            shards=shards,
            executor=self._executor,
            partitioner=self._partitioner,
        )
        # The chain keeps the originally configured sharding even when
        # this hop received a pre-sharded database (shards=None above
        # only avoids re-partitioning *this* database).
        session._shards = self._shards
        session._partitioner = self._partitioner
        return session

    # ------------------------------------------------------------------
    # Delegation
    # ------------------------------------------------------------------
    def _caching(self, kwargs: Mapping[str, Any]) -> bool:
        """Will this call touch the cache (and hence need the fingerprint)?"""
        return bool(kwargs.get("use_cache", True)) and self.engine.cache_enabled

    def evaluate(self, query: Any, **kwargs: Any) -> QueryResult:
        if self._caching(kwargs):
            kwargs.setdefault("database_fp", self._fingerprint())
        if self._executor is not None:
            kwargs.setdefault("executor", self._executor)
        return self.engine.evaluate(query, self.database, **kwargs)

    def evaluate_batch(self, queries: Iterable[Any], **kwargs: Any) -> list[QueryResult]:
        return [self.evaluate(query, **kwargs) for query in queries]

    def compare(self, query: Any, **kwargs: Any) -> dict[str, QueryResult]:
        if self._caching(kwargs):
            kwargs.setdefault("database_fp", self._fingerprint())
        if self._executor is not None:
            kwargs.setdefault("executor", self._executor)
        return self.engine.compare(query, self.database, **kwargs)

    # Small conveniences mirroring the paper's vocabulary.
    def sql(self, query: Any, **kwargs: Any) -> QueryResult:
        """SQL-semantics evaluation (strategy ``sql-3vl``)."""
        return self.evaluate(query, strategy="sql-3vl", **kwargs)

    def naive(self, query: Any, **kwargs: Any) -> QueryResult:
        return self.evaluate(query, strategy="naive", **kwargs)

    def certain(self, query: Any, **kwargs: Any) -> QueryResult:
        """Exact certain answers (strategy ``exact-certain``)."""
        return self.evaluate(query, strategy="exact-certain", **kwargs)

    def auto(self, query: Any, **kwargs: Any) -> QueryResult:
        """Planner-chosen evaluation (``strategy="auto"``);
        ``result.metadata["plan"]`` says what was picked and why."""
        return self.evaluate(query, strategy="auto", **kwargs)

    def explain(self, query: Any, **kwargs: Any) -> str:
        """Evaluate with ``trace=True`` and render the EXPLAIN report.

        Accepts every ``evaluate`` keyword (``strategy="auto"``,
        ``shards=...``, ``backend=...``, ...) and returns one report
        combining the plan decision, backend resolution, sharding and
        resilience notes with the span tree — see
        :mod:`repro.obs.explain`.  Tracing never changes the answer (or
        the cache keys), so explaining a query is exactly as safe as
        evaluating it.
        """
        kwargs["trace"] = True
        return render_explain(self.evaluate(query, **kwargs))

    def strategies(self) -> tuple[str, ...]:
        return self.engine.strategies()

    def describe(self) -> dict[str, Any]:
        """The engine's capability table and configuration."""
        return self.engine.describe()

    @property
    def cache_stats(self) -> CacheStats:
        return self.engine.cache_stats

    def clear_cache(self) -> None:
        self.engine.clear_cache()


_DEFAULT_ENGINE: Engine | None = None


def default_engine() -> Engine:
    """A process-wide engine for one-off :func:`evaluate` calls."""
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = Engine()
    return _DEFAULT_ENGINE


def evaluate(query: Any, database: Database, **kwargs: Any) -> QueryResult:
    """Module-level convenience: ``default_engine().evaluate(...)``."""
    return default_engine().evaluate(query, database, **kwargs)
