"""The strategy registry: named evaluation strategies behind one interface.

A strategy adapts one of the repo's evaluation pipelines to the engine's
contract: consume a :class:`~repro.engine.frontend.NormalizedQuery` and
a database, produce a :class:`StrategyOutcome` (the engine wraps it into
a timed, cache-aware :class:`~repro.engine.result.QueryResult`).

Registration is by decorator; a strategy describes itself through one
declarative :class:`~repro.engine.capabilities.StrategyCapabilities`
record::

    @register_strategy("naive", aliases=("direct",))
    class NaiveStrategy(EvaluationStrategy):
        capabilities = StrategyCapabilities(
            semantics=("set", "bag"),
            requires=("algebra", "calculus"),
            optimize=True,
        )

        def run(self, query, database, *, semantics, **options):
            ...

Third-party backends (sharded, cached, async — see ROADMAP) register the
same way; nothing in the engine core knows the built-in strategy names.
A strategy class *must* declare a capability record: registration
rejects classes without one (the legacy shim that synthesized records
from plain ``supported_semantics`` / ``supports_optimize`` class
attributes has been removed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from ..datamodel.database import Database
from ..datamodel.relation import Relation
from .capabilities import StrategyCapabilities
from .errors import EngineError, StrategyNotApplicableError, UnknownStrategyError
from .frontend import NormalizedQuery
from .result import AnnotatedTuple, Certainty

__all__ = [
    "EvaluationStrategy",
    "StrategyOutcome",
    "register_strategy",
    "unregister_strategy",
    "get_strategy",
    "available_strategies",
    "strategy_capabilities",
    "strategy_aliases",
    "annotate",
]


@dataclass(frozen=True)
class StrategyOutcome:
    """What a strategy hands back to the engine core."""

    answer: Relation
    annotated: tuple[AnnotatedTuple, ...] = ()
    certain: Relation | None = None
    possible: Relation | None = None
    certainly_false: Relation | None = None
    metadata: Mapping[str, Any] = field(default_factory=dict)


def annotate(
    relation: Relation, status: Certainty, *, bag: bool = False
) -> tuple[AnnotatedTuple, ...]:
    """Annotate every distinct row of a relation with one status."""
    return tuple(
        AnnotatedTuple(row, status, multiplicity=count if bag else 1)
        for row, count in relation.iter_rows(with_multiplicity=True)
    )


class EvaluationStrategy:
    """Base class of registered strategies."""

    #: Canonical registry name; set by :func:`register_strategy`.
    name: str = ""
    #: Alternative lookup names.
    aliases: tuple[str, ...] = ()
    #: The strategy's declarative self-description — semantics, consumed
    #: query forms, exactness/soundness bounds, optimizer support,
    #: execution backends, shard lineage operators, cost hint.
    #: Subclasses must declare one; registration rejects classes
    #: without a record.
    capabilities: StrategyCapabilities | None = None
    #: One line for ``Engine.strategies()`` listings and docs.
    description: str = ""

    # Convenience views of the capability record.
    @property
    def supported_semantics(self) -> tuple[str, ...]:
        """Which of ``"set"`` / ``"bag"`` the strategy can honour."""
        caps = self.capabilities
        return caps.semantics if caps is not None else ("set",)

    @property
    def supports_optimize(self) -> bool:
        """Whether the strategy understands the engine's ``optimize=``
        option (plan optimization via :mod:`repro.algebra.optimize`).
        The engine only forwards the option — and only includes it in
        cache keys — for strategies that declare it."""
        caps = self.capabilities
        return bool(caps is not None and caps.optimize)

    @property
    def supports_stats(self) -> bool:
        """Whether the strategy understands the engine's ``stats=`` option
        (statistics-driven cost-based planning via
        :mod:`repro.algebra.stats`).  Forwarded and cache-keyed on
        declaration, like ``optimize``."""
        caps = self.capabilities
        return bool(caps is not None and caps.stats)

    @property
    def supported_backends(self) -> tuple[str, ...]:
        """The execution backends the strategy can run plans on.

        Every strategy runs on the interpreter; strategies that route
        algebra plans through :func:`repro.exec.execute_plans` also
        declare ``"sqlite"``.  The engine forwards the ``backend=``
        option — and folds it into cache keys — only for strategies
        declaring more than the interpreter."""
        caps = self.capabilities
        return caps.backends if caps is not None else ("interpreter",)

    def run(
        self,
        query: NormalizedQuery,
        database: Database,
        *,
        semantics: str,
        **options: Any,
    ) -> StrategyOutcome:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Helpers for pulling the required lowered form out of the query
    # ------------------------------------------------------------------
    def require_algebra(self, query: NormalizedQuery):
        """The algebra plan, or a precise error explaining what is missing."""
        if query.algebra is not None:
            return query.algebra
        hint = "; ".join(query.notes) if query.notes else (
            f"the {query.frontend} frontend provides no relational algebra plan"
        )
        raise StrategyNotApplicableError(
            f"strategy {self.name!r} needs a relational algebra plan ({hint}); "
            "write the query with repro.algebra.builder, or use SQL in the "
            "subquery-free fragment"
        )

    def require_executable(self, query: NormalizedQuery):
        """An algebra plan if available, else an FO query."""
        if query.algebra is not None:
            return query.algebra
        if query.fo is not None:
            return query.fo
        hint = "; ".join(query.notes) if query.notes else "no evaluable form"
        raise StrategyNotApplicableError(
            f"strategy {self.name!r} needs an algebra plan or an FO query ({hint})"
        )

    def reject_unknown_options(self, options: Mapping[str, Any]) -> None:
        if options:
            raise EngineError(
                f"strategy {self.name!r} does not understand options "
                f"{sorted(options)}"
            )


_REGISTRY: dict[str, EvaluationStrategy] = {}
_ALIASES: dict[str, str] = {}


def register_strategy(name: str, *, aliases: Iterable[str] = ()):
    """Class decorator registering an :class:`EvaluationStrategy`.

    The class is instantiated once (strategies must be stateless) and
    becomes reachable by ``name`` or any alias.  Re-registering a name
    replaces the previous strategy, which lets tests and downstream
    packages override built-ins.
    """

    aliases = tuple(aliases)

    def decorator(cls: type) -> type:
        if not issubclass(cls, EvaluationStrategy):
            raise TypeError(
                f"{cls.__name__} must subclass EvaluationStrategy to be registered"
            )
        for alias in aliases:
            if alias in _REGISTRY and alias != name:
                raise EngineError(
                    f"alias {alias!r} collides with the registered strategy of that name"
                )
            owner = _ALIASES.get(alias)
            if owner is not None and owner != name:
                raise EngineError(
                    f"alias {alias!r} is already registered for strategy {owner!r}"
                )
        instance = cls()
        instance.name = name
        instance.aliases = aliases
        if instance.capabilities is None:
            raise EngineError(
                f"strategy class {cls.__name__} declares no "
                "StrategyCapabilities record; set the 'capabilities' "
                "class attribute (the legacy supported_semantics/"
                "supports_optimize shim has been removed)"
            )
        unregister_strategy(name)
        _REGISTRY[name] = instance
        for alias in aliases:
            _ALIASES[alias] = name
        return cls

    return decorator


def unregister_strategy(name: str) -> None:
    """Remove a strategy (and its aliases) from the registry, if present."""
    instance = _REGISTRY.pop(name, None)
    if instance is not None:
        for alias in instance.aliases:
            _ALIASES.pop(alias, None)


def get_strategy(name: str) -> EvaluationStrategy:
    """Resolve a strategy by canonical name or alias.

    Canonical names win over aliases, so an alias can never shadow a
    registered strategy's own name.
    """
    strategy = _REGISTRY.get(name)
    if strategy is not None:
        return strategy
    canonical = _ALIASES.get(name)
    if canonical is not None and canonical in _REGISTRY:
        return _REGISTRY[canonical]
    raise UnknownStrategyError(name, available_strategies())


def available_strategies(
    verbose: bool = False,
) -> tuple[str, ...] | dict[str, StrategyCapabilities]:
    """The registered canonical strategy names, sorted.

    With ``verbose=True``, returns the full capability table instead — a
    ``{name: StrategyCapabilities}`` mapping, which is what the
    ``strategy="auto"`` planner consults and what ``Engine.describe()``
    renders, so users can see *why* auto chose what it chose.
    """
    if verbose:
        return {
            name: _REGISTRY[name].capabilities for name in sorted(_REGISTRY)
        }
    return tuple(sorted(_REGISTRY))


def strategy_capabilities(name: str) -> StrategyCapabilities:
    """The capability record of one strategy (by name or alias)."""
    return get_strategy(name).capabilities


def strategy_aliases() -> dict[str, str]:
    """A copy of the alias → canonical-name table."""
    return dict(_ALIASES)
