"""Query normalization: one internal form for every query frontend.

The engine accepts a query written against any of the repo's frontends —

* an SQL string (or a pre-parsed :mod:`repro.sql.ast` tree),
* a relational algebra tree (:mod:`repro.algebra.ast`, including
  anything produced by the :mod:`repro.algebra.builder` fluent API),
* a relational calculus formula (:mod:`repro.calculus.ast`) or a
  ready-made :class:`~repro.calculus.evaluation.FoQuery` —

and lowers it to a :class:`NormalizedQuery` carrying every derived form
the strategies can consume:

* ``sql_ast`` — the parsed SQL tree (SQL frontend only);
* ``algebra`` — a relational algebra plan.  SQL is compiled through
  :func:`repro.sql.compiler.compile_sql` when it falls in the
  subquery-free fragment; otherwise ``algebra`` is ``None`` and
  ``notes`` records why;
* ``fo`` — an :class:`FoQuery` (calculus frontend only).

Whatever the frontend, ``fragment`` records the Theorem 4.4
classification of the richest available form — calculus formulae through
:mod:`repro.calculus.fragments`, algebra plans (including SQL compiled
to algebra) through :mod:`repro.algebra.fragments` — so the
``strategy="auto"`` planner and the naïve strategy's exactness claim
read one field regardless of how the query was written.

Strategies pick the richest form they support and raise
:class:`~repro.engine.errors.StrategyNotApplicableError` with a precise
message when none is available.  The ``fingerprint`` is a stable hash of
the *source* form, used (with a database fingerprint) as the result
cache key.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any

from ..algebra import ast as ra
from ..algebra.fragments import classify_plan
from ..calculus import ast as fo
from ..calculus.evaluation import FoQuery
from ..calculus.fragments import classify
from ..datamodel.schema import DatabaseSchema
from ..sql import ast as sqlast
from ..sql.compiler import SqlCompilationError, compile_sql
from ..sql.parser import parse as parse_sql
from .errors import NormalizationError

__all__ = ["NormalizedQuery", "normalize_query", "query_fingerprint"]


@dataclass(frozen=True)
class NormalizedQuery:
    """The engine's common internal representation of a query."""

    source: Any
    frontend: str  # "sql" | "algebra" | "calculus"
    fingerprint: str
    sql_ast: sqlast.SqlQuery | None = None
    sql_text: str | None = None
    algebra: ra.Query | None = None
    fo: FoQuery | None = None
    fragment: str | None = None
    notes: tuple[str, ...] = field(default_factory=tuple)

    def forms(self) -> tuple[str, ...]:
        """The lowered forms available to strategies."""
        available = []
        if self.sql_ast is not None:
            available.append("sql")
        if self.algebra is not None:
            available.append("algebra")
        if self.fo is not None:
            available.append("calculus")
        return tuple(available)

    def describe(self) -> str:
        forms = ", ".join(self.forms()) or "none"
        return f"{self.frontend} query (lowered forms: {forms})"


def query_fingerprint(query: Any) -> str:
    """A stable hex digest identifying a query's source form.

    SQL strings hash their whitespace-normalised text; AST and formula
    inputs hash their ``repr`` (all node classes are frozen dataclasses,
    so ``repr`` is canonical for structurally equal trees).
    """
    if isinstance(query, NormalizedQuery):
        return query.fingerprint
    if isinstance(query, str):
        canonical = "sql:" + " ".join(query.split())
    elif isinstance(query, FoQuery):
        canonical = f"fo:{query.free!r}:{query.formula!r}"
    else:
        canonical = f"{type(query).__name__}:{query!r}"
    return hashlib.sha1(canonical.encode("utf-8", "replace")).hexdigest()


def normalize_query(
    query: Any, schema: DatabaseSchema | None = None
) -> NormalizedQuery:
    """Lower any frontend input to a :class:`NormalizedQuery`.

    ``schema`` enables the SQL → algebra compilation step (the compiler
    needs the base relation attributes); without it, SQL queries are
    normalised with ``algebra=None``.
    """
    if isinstance(query, NormalizedQuery):
        return query
    fingerprint = query_fingerprint(query)

    if isinstance(query, (str, sqlast.SqlQuery)):
        sql_text = query if isinstance(query, str) else None
        sql_tree = parse_sql(query) if isinstance(query, str) else query
        algebra = None
        notes: tuple[str, ...] = ()
        if schema is not None:
            try:
                algebra = compile_sql(sql_tree, schema)
            except SqlCompilationError as exc:
                notes = (f"not compiled to algebra: {exc}",)
        else:
            notes = ("not compiled to algebra: no schema provided",)
        return NormalizedQuery(
            source=query,
            frontend="sql",
            fingerprint=fingerprint,
            sql_ast=sql_tree,
            sql_text=sql_text,
            algebra=algebra,
            fragment=classify_plan(algebra) if algebra is not None else None,
            notes=notes,
        )

    if isinstance(query, ra.Query):
        return NormalizedQuery(
            source=query,
            frontend="algebra",
            fingerprint=fingerprint,
            algebra=query,
            fragment=classify_plan(query),
        )

    if isinstance(query, FoQuery):
        return NormalizedQuery(
            source=query,
            frontend="calculus",
            fingerprint=fingerprint,
            fo=query,
            fragment=classify(query.formula),
        )

    if isinstance(query, fo.Formula):
        fo_query = FoQuery(query)
        return NormalizedQuery(
            source=query,
            frontend="calculus",
            fingerprint=fingerprint,
            fo=fo_query,
            fragment=classify(query),
        )

    raise NormalizationError(
        f"cannot normalise object of type {type(query).__name__}: expected an SQL "
        "string, an repro.sql.ast tree, an repro.algebra.ast tree, an "
        "repro.calculus.ast formula, or an FoQuery"
    )
