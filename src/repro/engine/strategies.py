"""The built-in evaluation strategies behind ``Engine.evaluate``.

Each class adapts one of the repo's evaluation pipelines to the registry
contract, so the paper's whole comparison matrix is reachable through a
single call:

==========================  ====================================================
``sql-3vl``                 SQL's three-valued semantics
                            (:mod:`repro.sql.evaluator`; :func:`repro.mvl.fo_sql`
                            for calculus input)
``naive``                   naïve evaluation, nulls as values
                            (:mod:`repro.incomplete.naive`)
``exact-certain``           brute-force certain answers
                            (:mod:`repro.incomplete.certain`)
``approx-libkin16``         the (Qt, Qf) rewriting of Figure 2a
                            (:mod:`repro.approx.libkin16`)
``approx-guagliardo16``     the (Q+, Q?) rewriting of Figure 2b
                            (:mod:`repro.approx.guagliardo16`)
``ctables``                 the grounding strategies over c-tables
                            (:mod:`repro.ctables.strategies`)
==========================  ====================================================
"""

from __future__ import annotations

from typing import Any

from ..ctables.strategies import STRATEGIES as CTABLE_VARIANTS
from ..ctables.strategies import run_strategy as run_ctable_strategy
from ..datamodel.database import Database
from ..incomplete.certain import (
    certain_answers_intersection,
    certain_answers_with_nulls,
    possible_answers,
)
from ..exec import InterpreterBackend, execute_plans, interpreter_note
from ..incomplete.naive import naive_evaluate, naive_evaluate_direct
from ..approx.guagliardo16 import translate_guagliardo16
from ..approx.libkin16 import translate_libkin16
from ..mvl.fo_eval import fo_sql
from ..sql.evaluator import SqlEvaluator
from .capabilities import EXACT_FRAGMENTS_CWA, StrategyCapabilities
from .errors import EngineError, StrategyNotApplicableError
from .frontend import NormalizedQuery
from .registry import (
    EvaluationStrategy,
    StrategyOutcome,
    annotate,
    register_strategy,
)
from .result import AnnotatedTuple, Certainty

#: Operators the shard planner may keep on the partitioned lineage for a
#: literal (naïve) evaluator under set semantics; see
#: :mod:`repro.sharding.planner` for the distribution argument per rule.
_NAIVE_SHARD_OPS = frozenset(
    {
        "Selection",
        "Projection",
        "Rename",
        "Product",
        "Union",
        "Intersection",
        "NaturalJoin",
        "SemiJoin",
    }
)

#: Under bag semantics ``min``-intersection does not distribute.
_NAIVE_BAG_SHARD_OPS = _NAIVE_SHARD_OPS - {"Intersection"}

#: Operators preserved one-to-one by the Figure 2 translations.
_TRANSLATION_SHARD_OPS = frozenset(
    {"Selection", "Projection", "Rename", "Product", "Union"}
)

#: Plan operators the Figure 2 translations are defined on: the core
#: algebra plus what :func:`repro.approx.normalize.normalize_for_translation`
#: rewrites into it (∩ → −).  Division and the join conveniences raise
#: there, so the ``auto`` planner must not route such plans here.
_TRANSLATION_PLAN_OPS = frozenset(
    {
        "RelationRef",
        "ConstantRelation",
        "DomainRelation",
        "Selection",
        "Projection",
        "Rename",
        "Product",
        "Union",
        "Difference",
        "Intersection",
    }
)

#: Plan operators the conditional (c-table) evaluator implements — the
#: core algebra without ``DomainRelation`` (grounding would have to
#: enumerate it symbolically) and without the join/semijoin
#: conveniences.
_CTABLES_PLAN_OPS = frozenset(
    {
        "RelationRef",
        "ConstantRelation",
        "Selection",
        "Projection",
        "Rename",
        "Product",
        "Union",
        "Difference",
        "Intersection",
    }
)

def _require_plan_ops(name: str, algebra, allowed: frozenset[str], what: str):
    """Reject plans using operators outside a strategy's implemented set.

    The ``auto`` planner already skips these strategies via their
    declared ``plan_ops``; this is the same gate for *explicitly* named
    strategies, raising the skippable not-applicable error instead of
    letting the pipeline crash mid-way.  (SQL-compiled
    ``[NOT] IN``/``[NOT] EXISTS`` plans land here: their
    semijoins/antijoins have no Figure 2 or c-table reading.)
    """
    from ..algebra.ast import walk

    used = {type(node).__name__ for node in walk(algebra)}
    unsupported = sorted(used - allowed)
    if unsupported:
        raise StrategyNotApplicableError(
            f"strategy {name!r} {what}; this plan uses {unsupported}"
        )


__all__ = [
    "SqlThreeValuedStrategy",
    "NaiveStrategy",
    "ExactCertainStrategy",
    "Libkin16Strategy",
    "Guagliardo16Strategy",
    "CTablesStrategy",
]


@register_strategy("sql-3vl", aliases=("sql", "3vl"))
class SqlThreeValuedStrategy(EvaluationStrategy):
    """What a real SQL engine returns: three-valued WHERE, bag semantics."""

    capabilities = StrategyCapabilities(
        semantics=("set", "bag"),
        requires=("sql", "calculus"),
        bag_requires=("sql",),  # the FO evaluator is set-based
        cost="polynomial",
        # No certainty bounds: SQL answers may miss certain answers and
        # include certainly-false ones (Section 1).
    )
    description = "SQL three-valued evaluation (the paper's Section 1 baseline)"

    def run(self, query: NormalizedQuery, database: Database, *, semantics: str, **options):
        self.reject_unknown_options(options)
        if query.sql_ast is not None:
            relation = SqlEvaluator(database).run(query.sql_ast)
            evaluator = "sql-evaluator"
            if semantics == "set":
                relation = relation.distinct()
        elif query.fo is not None:
            if semantics == "bag":
                raise StrategyNotApplicableError(
                    "sql-3vl over a calculus query supports set semantics only"
                )
            relation = fo_sql().answers(query.fo.formula, database, query.fo.free)
            evaluator = "fo-sql"
        else:
            raise StrategyNotApplicableError(
                "strategy 'sql-3vl' needs an SQL query or an FO formula; a bare "
                "algebra plan has no three-valued reading (use 'naive' or the "
                "approximation strategies)"
            )
        # SQL's answers carry no guarantee on incomplete data: they may miss
        # certain answers and include certainly-false ones (Section 1).
        status = Certainty.CERTAIN if database.is_complete() else Certainty.UNKNOWN
        return StrategyOutcome(
            answer=relation,
            annotated=annotate(relation, status, bag=semantics == "bag"),
            metadata={"evaluator": evaluator},
        )


@register_strategy("naive", aliases=("naive-direct",))
class NaiveStrategy(EvaluationStrategy):
    """Naïve evaluation: nulls as ordinary values (Section 4.1)."""

    capabilities = StrategyCapabilities(
        semantics=("set", "bag"),
        requires=("algebra", "calculus"),
        bag_requires=("algebra",),  # the FO evaluator is set-based
        exact_on=EXACT_FRAGMENTS_CWA,
        optimize=True,
        stats=True,
        backends=("interpreter", "sqlite"),
        shardable_ops=_NAIVE_SHARD_OPS,
        shardable_bag_ops=_NAIVE_BAG_SHARD_OPS,
        shard_merge="naive-union",
        cost="polynomial",
    )
    description = "naïve evaluation; exact on the fragments of Theorem 4.4"

    def run(self, query: NormalizedQuery, database: Database, *, semantics: str, **options):
        textbook = bool(options.pop("textbook", False))
        optimize = bool(options.pop("optimize", False))
        stats = bool(options.pop("stats", False))
        backend = str(options.pop("backend", "interpreter"))
        self.reject_unknown_options(options)
        target = self.require_executable(query)
        bag = semantics == "bag"
        if bag and query.algebra is None:
            raise StrategyNotApplicableError(
                "naïve bag semantics needs a relational algebra plan; the FO "
                "evaluator is set-based"
            )
        if textbook:
            backend_meta = interpreter_note(
                backend, "textbook valuation evaluation is interpreter-only"
            )
            relation = naive_evaluate(
                target, database, bag=bag, optimize=optimize, stats=stats
            )
        elif query.algebra is None:
            backend_meta = interpreter_note(
                backend, "no algebra plan (direct FO evaluation)"
            )
            relation = naive_evaluate_direct(
                target, database, bag=bag, optimize=optimize, stats=stats
            )
        else:
            execution = execute_plans(
                [target],
                database,
                backend=backend,
                bag=bag,
                condition_mode="naive",
                optimize=optimize,
                stats=stats,
                strategy=self.name,
            )
            relation = execution.relations[0]
            backend_meta = execution.as_metadata()
        # Theorem 4.4 (CWA): on the declared fragments — classified for
        # calculus and algebra/SQL frontends alike by normalize_query —
        # the naïve answer is exactly the set of certain answers.
        exact = database.is_complete() or self.capabilities.exact_on_fragment(
            query.fragment
        )
        status = Certainty.CERTAIN if exact else Certainty.POSSIBLE
        return StrategyOutcome(
            answer=relation,
            annotated=annotate(relation, status, bag=bag),
            certain=relation if exact else None,
            metadata={
                "fragment": query.fragment,
                "exact": exact,
                "backend": backend_meta,
            },
        )


@register_strategy("exact-certain", aliases=("certain", "exact"))
class ExactCertainStrategy(EvaluationStrategy):
    """Exact certain answers by valuation enumeration (Section 3.2)."""

    capabilities = StrategyCapabilities(
        semantics=("set",),
        requires=("algebra", "calculus"),
        sound=True,
        complete=True,
        optimize=True,
        cost="exponential",
    )
    description = "brute-force cert⊥ / cert∩; exponential, small instances only"

    def run(self, query: NormalizedQuery, database: Database, *, semantics: str, **options):
        variant = options.pop("variant", "with-nulls")
        extra_fresh = options.pop("extra_fresh", None)
        with_possible = bool(options.pop("with_possible", False))
        optimize = bool(options.pop("optimize", False))
        self.reject_unknown_options(options)
        target = self.require_executable(query)
        if variant == "with-nulls":
            relation = certain_answers_with_nulls(
                target, database, extra_fresh=extra_fresh, optimize=optimize
            )
        elif variant == "intersection":
            relation = certain_answers_intersection(
                target, database, extra_fresh=extra_fresh, optimize=optimize
            )
        else:
            raise EngineError(
                f"unknown exact-certain variant {variant!r}; "
                "expected 'with-nulls' or 'intersection'"
            )
        annotated = annotate(relation, Certainty.CERTAIN)
        possible = None
        if with_possible:
            possible = possible_answers(
                target, database, extra_fresh=extra_fresh, optimize=optimize
            )
            annotated += tuple(
                AnnotatedTuple(row, Certainty.POSSIBLE)
                for row in possible.sorted_rows()
                if row not in relation
            )
        return StrategyOutcome(
            answer=relation,
            annotated=annotated,
            certain=relation,
            possible=possible,
            metadata={"variant": variant},
        )


@register_strategy("approx-libkin16", aliases=("libkin16", "qt-qf", "figure2a"))
class Libkin16Strategy(EvaluationStrategy):
    """The (Qt, Qf) rewriting of Figure 2a [51]."""

    capabilities = StrategyCapabilities(
        semantics=("set",),
        requires=("algebra",),
        sound=True,
        plan_ops=_TRANSLATION_PLAN_OPS,
        optimize=True,
        stats=True,
        cost="exponential",  # Qf materialises Dom^k complements
    )
    description = "(Qt, Qf) rewriting; sound but materialises Dom^k products"

    def run(self, query: NormalizedQuery, database: Database, *, semantics: str, **options):
        annotate_false_positives = bool(options.pop("annotate_false_positives", True))
        optimize = bool(options.pop("optimize", False))
        stats = bool(options.pop("stats", False))
        self.reject_unknown_options(options)
        algebra = self.require_algebra(query)
        _require_plan_ops(
            self.name,
            algebra,
            _TRANSLATION_PLAN_OPS,
            "translates core-operator plans only (σ, π, ρ, ×, ∪, −, ∩)",
        )
        pair = translate_libkin16(algebra, database.schema())
        # One interpreter batch for all three plans: Qt, Qf (and the naïve
        # check) share large subtrees almost verbatim, so the per-database
        # sub-plan memo pays off across the pair.  The Qf side materialises
        # Dom^k complements, which no SQL compilation expresses, so this
        # strategy stays interpreter-only.
        plans = [pair.certainly_true, pair.certainly_false]
        if annotate_false_positives:
            plans.append(algebra)
        relations = InterpreterBackend().run(
            plans, database, optimize=optimize, stats=stats
        )
        certainly_true, certainly_false = relations[0], relations[1]
        annotated = annotate(certainly_true, Certainty.CERTAIN)
        false_positive_count = 0
        if annotate_false_positives:
            naive = relations[2]
            false_rows = naive.rows_set() & certainly_false.rows_set()
            false_positive_count = len(false_rows)
            annotated += tuple(
                AnnotatedTuple(row, Certainty.FALSE_POSITIVE)
                for row in sorted(false_rows, key=str)
            )
        return StrategyOutcome(
            answer=certainly_true,
            annotated=annotated,
            certain=certainly_true,
            certainly_false=certainly_false,
            metadata={
                "scheme": "figure-2a",
                "false_positives": false_positive_count,
            },
        )


@register_strategy(
    "approx-guagliardo16", aliases=("guagliardo16", "q-plus", "figure2b")
)
class Guagliardo16Strategy(EvaluationStrategy):
    """The (Q+, Q?) rewriting of Figure 2b [37]."""

    capabilities = StrategyCapabilities(
        semantics=("set",),
        requires=("algebra",),
        sound=True,
        plan_ops=_TRANSLATION_PLAN_OPS,
        optimize=True,
        stats=True,
        backends=("interpreter", "sqlite"),
        shardable_ops=_TRANSLATION_SHARD_OPS,
        shard_merge="certain-possible-union",
        cost="polynomial",
    )
    description = "(Q+, Q?) rewriting; sound with small overhead (experiment E4)"

    def run(self, query: NormalizedQuery, database: Database, *, semantics: str, **options):
        optimize = bool(options.pop("optimize", False))
        stats = bool(options.pop("stats", False))
        backend = str(options.pop("backend", "interpreter"))
        self.reject_unknown_options(options)
        algebra = self.require_algebra(query)
        _require_plan_ops(
            self.name,
            algebra,
            _TRANSLATION_PLAN_OPS,
            "translates core-operator plans only (σ, π, ρ, ×, ∪, −, ∩)",
        )
        pair = translate_guagliardo16(algebra, database.schema())
        execution = execute_plans(
            [pair.certain, pair.possible],
            database,
            backend=backend,
            optimize=optimize,
            stats=stats,
            strategy=self.name,
        )
        certain, possible = execution.relations
        annotated = annotate(certain, Certainty.CERTAIN) + tuple(
            AnnotatedTuple(row, Certainty.POSSIBLE)
            for row in possible.sorted_rows()
            if row not in certain
        )
        return StrategyOutcome(
            answer=certain,
            annotated=annotated,
            certain=certain,
            possible=possible,
            metadata={"scheme": "figure-2b", "backend": execution.as_metadata()},
        )


@register_strategy("ctables", aliases=("c-tables",))
class CTablesStrategy(EvaluationStrategy):
    """The grounding-based c-table strategies of [36] (Section 4.2)."""

    capabilities = StrategyCapabilities(
        semantics=("set",),
        requires=("algebra",),
        sound=True,
        plan_ops=_CTABLES_PLAN_OPS,
        optimize=True,
        cost="exponential",  # grounding enumerates condition valuations
    )
    description = "conditional evaluation over c-tables (eager/semi_eager/lazy/aware)"

    def run(self, query: NormalizedQuery, database: Database, *, semantics: str, **options):
        variant = options.pop("variant", "lazy")
        optimize = bool(options.pop("optimize", False))
        self.reject_unknown_options(options)
        if variant not in CTABLE_VARIANTS:
            raise EngineError(
                f"unknown c-table variant {variant!r}; expected one of {CTABLE_VARIANTS}"
            )
        algebra = self.require_algebra(query)
        _require_plan_ops(
            self.name,
            algebra,
            _CTABLES_PLAN_OPS,
            "conditionally evaluates core-operator plans only",
        )
        if optimize:
            # Logical rules only: the conditional evaluator manipulates
            # symbolic conditions and cannot execute the physical
            # EquiJoin/ConstrainedDomainRelation nodes.  The naïve-only
            # trivial-self-equality rule is excluded too — a symbolic
            # ``x = x`` is true under every valuation, but keeping the
            # selection keeps the produced c-table conditions identical.
            from ..algebra.optimize import optimize_plan

            algebra = optimize_plan(
                algebra, database.schema(), condition_mode="3vl", physical=False
            )
        result = run_ctable_strategy(variant, algebra, database)
        annotated = annotate(result.certain, Certainty.CERTAIN) + tuple(
            AnnotatedTuple(row, Certainty.POSSIBLE)
            for row in result.possible.sorted_rows()
            if row not in result.certain
        )
        return StrategyOutcome(
            answer=result.certain,
            annotated=annotated,
            certain=result.certain,
            possible=result.possible,
            metadata={"variant": variant, "ctable_rows": len(result.ctable)},
        )
