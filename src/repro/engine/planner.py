"""The ``strategy="auto"`` planner: pick a strategy from the capability table.

Theorem 4.4 is an API fact, not just a theory fact: on the CQ/UCQ/Pos∀G
fragments naïve evaluation *is* the certain answers, so the engine can
pick the right strategy per query instead of making the caller guess.
:func:`choose_strategy` consults the query's fragment classification
(:attr:`~repro.engine.frontend.NormalizedQuery.fragment`, computed for
calculus, algebra and compiled-SQL inputs alike) and the declarative
capability table (:func:`repro.engine.registry.available_strategies`
with ``verbose=True``) and returns a :class:`PlanDecision`, which the
engine records under ``QueryResult.metadata["plan"]``.

The decision table (first applicable row wins)::

    condition                                    chosen          guarantee
    ------------------------------------------   -------------   ------------------
    fragment ∈ exact_on(naive)  [CQ/UCQ/Pos∀G]   naive           exact (Thm 4.4)
    database is complete                         naive           exact (trivially)
    bag semantics                                naive/sql-3vl   none (best effort)
    a sound polynomial strategy applies          approx-g16      sound (Fig. 2b)
    valuation-space estimate ≤ exact budget      exact-certain   exact (cert⊥)
    otherwise                                    naive/sql-3vl   none (best effort)

Applicability respects each strategy's declared ``plan_ops``: the
Figure 2 translations are only defined on the core operators, so a plan
containing e.g. division skips them and falls through to the next row
instead of crashing mid-translation.

Rows three through six only differ in *which guarantee is affordable*:
the sound approximation needs an algebra plan, so e.g. a calculus query
with negation falls through to exact certain answers — but those
enumerate valuations, so they are only picked while the estimated
valuation space ``(|adom| + 1) ^ |nulls|`` stays under a budget
(default ``10**4``; override per call or with the
``REPRO_AUTO_EXACT_BUDGET`` environment variable).

``auto`` is resolved *before* dispatch: the engine evaluates the chosen
strategy through its ordinary path, so the result — including its cache
key — is identical to naming the strategy explicitly, and an ``auto``
evaluation shares cache entries with the explicit one.  The randomized
harness in ``tests/test_planner.py`` pins this tuple-for-tuple.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Mapping

from ..algebra.ast import walk as _walk_plan
from ..datamodel.database import Database
from .capabilities import StrategyCapabilities
from .errors import StrategyNotApplicableError
from .frontend import NormalizedQuery
from .registry import available_strategies

__all__ = [
    "PlanDecision",
    "choose_strategy",
    "DEFAULT_EXACT_BUDGET",
    "default_exact_budget",
]

#: Reserved strategy name that triggers planning in the engine façade.
AUTO = "auto"

#: Largest estimated valuation space for which ``exact-certain`` is an
#: acceptable automatic choice (it enumerates valuations of the nulls
#: over the active domain plus fresh values, so its cost is roughly
#: ``(|adom| + 1) ^ |nulls|``).
DEFAULT_EXACT_BUDGET = 10_000


def default_exact_budget() -> int:
    """The budget used when no explicit one is configured.

    Read from ``REPRO_AUTO_EXACT_BUDGET`` at *call* time, so setting the
    environment variable after import (or in a test via monkeypatch)
    takes effect.
    """
    return int(os.environ.get("REPRO_AUTO_EXACT_BUDGET", DEFAULT_EXACT_BUDGET))


@dataclass(frozen=True)
class PlanDecision:
    """Why ``strategy="auto"`` picked what it picked.

    ``strategy`` is the canonical name the engine then evaluates;
    ``guarantee`` is the certainty contract of the choice (``"exact"``,
    ``"sound"`` or ``"none"``); ``considered`` records the candidates
    that were inspected and why each non-chosen one was passed over.
    """

    strategy: str
    reason: str
    fragment: str | None
    semantics: str
    guarantee: str = "none"
    considered: tuple[tuple[str, str], ...] = ()
    #: Numeric cost estimates the decision was based on, as
    #: ``(label, value)`` pairs — e.g. the statistics-derived C_out cost
    #: of each Figure 2 translation pair, or the valuation-space size
    #: behind an ``exact-certain`` (non-)choice.  Empty when the decision
    #: needed no numbers (fragment exactness, completeness, bag fallback).
    estimates: tuple[tuple[str, float], ...] = ()

    def as_metadata(self) -> dict[str, Any]:
        """The rendering stored under ``QueryResult.metadata["plan"]``."""
        return {
            "strategy": self.strategy,
            "reason": self.reason,
            "fragment": self.fragment,
            "semantics": self.semantics,
            "guarantee": self.guarantee,
            "considered": [list(pair) for pair in self.considered],
            "estimates": {name: value for name, value in self.estimates},
        }


def _approximation_costs(
    normalized: NormalizedQuery, database: Database
) -> dict[str, float] | None:
    """Statistics-derived C_out costs of the two Figure 2 translations.

    Translates the algebra plan both ways and sums
    :func:`repro.algebra.stats.estimate_cost` over each pair's members
    (Qt+Qf for Figure 2a, Q+ and Q? for Figure 2b).  Returns
    ``None`` when the plan cannot be translated or estimated — the
    caller then falls back to the static cost hints.
    """
    if normalized.algebra is None:
        return None
    try:
        from ..algebra.stats import Stats, estimate_cost
        from ..approx.guagliardo16 import translate_guagliardo16
        from ..approx.libkin16 import translate_libkin16

        schema = database.schema()
        stats = Stats(database)
        g_pair = translate_guagliardo16(normalized.algebra, schema)
        l_pair = translate_libkin16(normalized.algebra, schema)
        return {
            "approx-guagliardo16": (
                estimate_cost(g_pair.certain, schema, stats)
                + estimate_cost(g_pair.possible, schema, stats)
            ),
            "approx-libkin16": (
                estimate_cost(l_pair.certainly_true, schema, stats)
                + estimate_cost(l_pair.certainly_false, schema, stats)
            ),
        }
    except Exception:  # translation/estimation failure must never block planning
        return None


def _estimated_valuations(database: Database) -> int:
    """A coarse upper-bound estimate of the valuation space of ``cert⊥``."""
    nulls = len(database.nulls())
    if nulls == 0:
        return 1
    domain = len(database.active_domain()) + 1  # + one fresh value
    estimate = 1
    for _ in range(nulls):
        estimate *= domain
        if estimate > 10**18:  # avoid giant bignums; it is over any budget
            break
    return estimate


def choose_strategy(
    normalized: NormalizedQuery,
    database: Database,
    *,
    semantics: str,
    exact_budget: int | None = None,
) -> PlanDecision:
    """Pick an evaluation strategy for one (query, database) call.

    Consults only the declarative capability table — never strategy
    code — so the decision is explainable (``PlanDecision.considered``)
    and testable against ``available_strategies(verbose=True)``.

    Raises :class:`~repro.engine.errors.StrategyNotApplicableError` when
    no registered strategy can consume the query's lowered forms at all.
    """
    budget = default_exact_budget() if exact_budget is None else exact_budget
    table: Mapping[str, StrategyCapabilities] = available_strategies(verbose=True)
    forms = normalized.forms()
    fragment = normalized.fragment
    considered: list[tuple[str, str]] = []
    plan_op_names = (
        None
        if normalized.algebra is None
        else frozenset(
            type(node).__name__ for node in _walk_plan(normalized.algebra)
        )
    )

    def applicable(name: str) -> bool:
        caps = table.get(name)
        if caps is None:
            considered.append((name, "not registered"))
            return False
        if not caps.applicable(forms, semantics):
            considered.append(
                (
                    name,
                    f"needs {'/'.join(caps.requires_for(semantics)) or '?'} "
                    f"under {semantics} semantics; query offers "
                    f"{'/'.join(forms) or 'nothing'}",
                )
            )
            return False
        # A strategy with declared plan_ops (the Figure 2 translations
        # raise on division and the join conveniences) must not be
        # handed a plan outside them — unless the query also offers a
        # non-algebra form the strategy consumes, in which case it can
        # take that path instead.
        if (
            caps.plan_ops is not None
            and plan_op_names is not None
            and not plan_op_names <= caps.plan_ops
        ):
            other_forms = [
                form
                for form in caps.requires_for(semantics)
                if form != "algebra" and form in forms
            ]
            if not other_forms:
                unsupported = sorted(plan_op_names - caps.plan_ops)
                considered.append(
                    (name, f"plan uses unsupported operators {unsupported}")
                )
                return False
        return True

    estimates: list[tuple[str, float]] = []

    def decision(name: str, reason: str, guarantee: str) -> PlanDecision:
        deduped = tuple(dict.fromkeys(considered))  # keep first occurrence
        return PlanDecision(
            strategy=name,
            reason=reason,
            fragment=fragment,
            semantics=semantics,
            guarantee=guarantee,
            considered=deduped,
            estimates=tuple(dict.fromkeys(estimates)),
        )

    # 1. The Theorem 4.4 fragments: naïve evaluation is exact.  Checked
    #    before completeness, which costs a data scan — on these
    #    fragments the choice is naïve either way.
    naive_caps = table.get("naive")
    if naive_caps is not None and naive_caps.exact_on_fragment(fragment):
        if applicable("naive"):
            return decision(
                "naive",
                f"naïve evaluation is exact on the {fragment} fragment "
                "(Theorem 4.4, CWA)",
                "exact",
            )
    elif database.is_complete() and applicable("naive"):
        # 2. Complete database: every strategy is exact; take the
        #    cheapest literal evaluator.  (Relation.is_complete
        #    short-circuits at the first null, and the fragment check
        #    above already decided for the Theorem 4.4 queries, so this
        #    scan is cheap on the common paths.)
        return decision(
            "naive", "complete database: every strategy is exact", "exact"
        )
    elif naive_caps is not None:
        considered.append(
            (
                "naive",
                f"fragment {fragment or 'unknown'} is outside "
                f"{'/'.join(sorted(naive_caps.exact_on))}: no exactness "
                "guarantee",
            )
        )

    # 3. Bag semantics: no approximation or exact strategy speaks bags;
    #    fall back to a literal evaluator, guarantee-free.
    if semantics == "bag":
        for name in ("naive", "sql-3vl"):
            if applicable(name):
                return decision(
                    name,
                    "bag semantics: certainty-bounded strategies are "
                    "set-only; best-effort literal evaluation",
                    "none",
                )
        raise StrategyNotApplicableError(
            "strategy 'auto' found no bag-capable strategy for this query; "
            f"candidates rejected: {considered}"
        )

    # 4. A sound approximation, picked by estimated cost.  Both Figure 2
    #    rewritings are sound; with statistics available their translated
    #    pairs get numeric C_out estimates and the cheaper one wins.
    #    Ties — and estimation failures — resolve to Figure 2b, whose
    #    static cost hint is polynomial (Qf of Figure 2a materialises
    #    Dom^k complements, so it only wins when the estimates say its
    #    σ-pruned Dom side is genuinely smaller).
    g_ok = applicable("approx-guagliardo16")
    l_ok = applicable("approx-libkin16")
    if g_ok or l_ok:
        costs = _approximation_costs(normalized, database) if (g_ok and l_ok) else None
        if costs is not None:
            estimates.extend(sorted(costs.items()))
            g_cost = costs["approx-guagliardo16"]
            l_cost = costs["approx-libkin16"]
            if l_cost < g_cost:
                considered.append(
                    (
                        "approx-guagliardo16",
                        f"estimated cost {g_cost:.0f} > Figure 2a's {l_cost:.0f}",
                    )
                )
                return decision(
                    "approx-libkin16",
                    "no exactness guarantee for naïve evaluation on this "
                    f"query; (Qt, Qf) is sound and its estimated cost "
                    f"{l_cost:.0f} undercuts (Q+, Q?)'s {g_cost:.0f} "
                    "(Figure 2a)",
                    "sound",
                )
            if g_ok:
                if l_ok:
                    considered.append(
                        (
                            "approx-libkin16",
                            f"estimated cost {l_cost:.0f} ≥ Figure 2b's "
                            f"{g_cost:.0f}",
                        )
                    )
                return decision(
                    "approx-guagliardo16",
                    "no exactness guarantee for naïve evaluation on this "
                    f"query; (Q+, Q?) is sound and its estimated cost "
                    f"{g_cost:.0f} is no worse than (Qt, Qf)'s "
                    f"{l_cost:.0f} (Figure 2b)",
                    "sound",
                )
        if g_ok:
            return decision(
                "approx-guagliardo16",
                "no exactness guarantee for naïve evaluation on this query; "
                "(Q+, Q?) is sound with polynomial overhead (Figure 2b)",
                "sound",
            )

    # 5. Exact certain answers, affordable only under a size budget.
    if applicable("exact-certain"):
        estimate = _estimated_valuations(database)
        estimates.append(("exact-certain-valuations", float(estimate)))
        if estimate <= budget:
            return decision(
                "exact-certain",
                f"no algebra plan for the sound approximation; the "
                f"valuation-space estimate {estimate} fits the exact "
                f"budget {budget}",
                "exact",
            )
        considered.append(
            (
                "exact-certain",
                f"valuation-space estimate {estimate} exceeds the exact "
                f"budget {budget}",
            )
        )

    # 6. Best effort: answer the query even without a guarantee.
    for name in ("naive", "sql-3vl"):
        if applicable(name):
            return decision(
                name,
                "no certainty-bounded strategy applies within budget; "
                "best-effort literal evaluation",
                "none",
            )
    raise StrategyNotApplicableError(
        "strategy 'auto' found no applicable strategy for this query; "
        f"candidates rejected: {considered}"
    )
