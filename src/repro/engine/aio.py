"""The async twin of the engine façade: concurrent batch/compare fan-out.

The paper's central workload is *comparison*: run six evaluation regimes
(``sql-3vl``, ``naive``, ``exact-certain``, ``approx-libkin16``,
``approx-guagliardo16``, ``ctables``) on the same (query, database)
pairs.  Every strategy is a pure function of its inputs, so the shape is
embarrassingly parallel — :class:`AsyncEngine` exploits that::

    from repro.engine import AsyncSession

    async with AsyncSession(database) as session:
        results = await session.compare(query)          # strategies overlap
        batch = await session.evaluate_batch(queries)   # queries overlap

Design:

* **Shared frontend and cache.**  ``AsyncEngine`` composes a sync
  :class:`~repro.engine.core.Engine` (pass one in to share it, or let
  the async engine create and own a private one).  Normalization, the
  strategy registry, sharding resolution and the (thread-safe)
  :class:`~repro.engine.cache.ResultCache` are the sync engine's —
  results computed by either twin are cache hits for the other, under
  the same :func:`~repro.engine.cache.evaluation_cache_key`.
* **Worker dispatch.**  Strategy runs are shipped to a
  ``concurrent.futures`` pool through ``loop.run_in_executor`` over the
  picklable :func:`run_engine_task` entry point — the same pattern as
  :func:`repro.sharding.executor.run_shard_task`.  ``pool="process"``
  (the default) gives true parallelism across cores; ``"thread"`` keeps
  everything in-process (useful when results are large or workers are
  expensive to fork); ``"serial"`` computes inline on the event loop
  (deterministic debugging); an existing ``concurrent.futures.Executor``
  instance is used as-is and never shut down by the engine.
* **Bounded fan-out.**  ``max_concurrency`` caps in-flight dispatches
  with an :class:`asyncio.Semaphore`.  The semaphore is held only
  around the executor hop (never while awaiting another engine call),
  so nested paths — e.g. a sharded evaluation falling back to the
  monolithic one — cannot deadlock on it.
* **Single-flight.**  Concurrent evaluations of the same cache key
  coalesce onto one computation; followers get the shared result marked
  ``from_cache=True``.  The in-flight group is reference-counted:
  cancelling one awaiter (the leader included) leaves the computation
  running for the remaining awaiters, while cancelling the *last*
  awaiter cancels the shared computation itself — the cancellation
  reaches the dispatch future (and, with an executor whose futures
  support running-cancel such as
  :class:`repro.server.pool.CancellableProcessExecutor`, the worker
  process), and the abandoned result is **never** inserted into the
  result cache.
* **Sharding.**  A :class:`~repro.sharding.ShardedDatabase` (or
  ``shards=N``) takes the async sharded path —
  :func:`repro.sharding.evaluate.evaluate_sharded_async` — reusing the
  sync engine's :class:`~repro.sharding.executor.ShardExecutor`s through
  their awaitable ``run_async`` surface, so per-shard partial caching
  and invalidation behave exactly as in the sync engine.

Custom strategies registered at runtime exist only in the parent
process; with the default ``fork`` start method on Linux they are
inherited by pool workers created *after* registration, otherwise use
``pool="thread"`` or make the strategy importable.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import contextlib
import os
import time
from dataclasses import dataclass, field, replace
from typing import Any, Hashable, Iterable, Mapping, Sequence

from ..datamodel.database import Database
from ..obs import metrics as obs_metrics
from ..obs.explain import render_explain
from ..obs.trace import SpanContext, current_span, span, start_trace
from ..resilience import (
    Deadline,
    DeadlineExceeded,
    RetryPolicy,
    deadline_scope,
    resolve_deadline,
    resolve_retry,
)
from .cache import CacheStats, database_fingerprint, evaluation_cache_key
from .core import (
    _ON_SHARD_ERROR,
    Engine,
    _presharded_database,
    _with_backend_note,
    _with_plan_metadata,
)
from .errors import EngineError, StrategyNotApplicableError
from .registry import StrategyOutcome, get_strategy
from .result import QueryResult

__all__ = ["AsyncEngine", "AsyncSession", "EngineTask", "run_engine_task"]

_POOL_KINDS = ("process", "thread", "serial")


class _InFlight:
    """One coalesced in-flight computation plus its awaiter refcount.

    ``waiters`` counts the evaluations currently awaiting ``task``
    through :func:`asyncio.shield`.  A cancelled awaiter decrements the
    count and leaves the computation running for the others; when the
    count reaches zero with the task still pending, nobody wants the
    result any more, so the task itself is cancelled — which unwinds
    :meth:`AsyncEngine._compute` *before* its cache insert, closing the
    "cancelled await still populates the cache" gap.
    """

    __slots__ = ("task", "waiters")

    def __init__(self, task: asyncio.Task):
        self.task = task
        self.waiters = 0


@dataclass(frozen=True)
class EngineTask:
    """One monolithic evaluation, self-contained and picklable.

    Everything a worker needs: the normalized query (frozen dataclasses
    all the way down), the database, and the strategy resolved by name
    inside the worker — mirroring
    :class:`~repro.sharding.executor.ShardTask`.
    """

    normalized: Any
    database: Database
    strategy: str
    semantics: str
    options: tuple[tuple[str, Any], ...] = ()
    #: Wall-clock budget carried to the worker (compare=False like
    #: :class:`~repro.sharding.executor.ShardTask`: a deadline changes
    #: whether a task finishes, never what it computes).
    deadline: Deadline | None = field(default=None, compare=False)
    #: Trace linkage (:class:`repro.obs.SpanContext`) when the caller
    #: evaluates with ``trace=True``: the worker records its own span
    #: tree and ships the export back on the task result, where the
    #: caller grafts it into the live trace.  Excluded from equality
    #: like the deadline — tracing observes, never steers.
    trace: SpanContext | None = field(default=None, compare=False)


@dataclass(frozen=True)
class EngineTaskResult:
    """A strategy outcome plus the worker-side wall-clock time."""

    outcome: StrategyOutcome
    elapsed: float
    #: The worker's exported span tree (None when the task was untraced).
    trace: Any = None


def run_engine_task(task: EngineTask) -> EngineTaskResult:
    """Evaluate one engine task; also the worker-process entry point.

    Unpickling the task in a spawned worker imports this module, which
    runs ``repro.engine.__init__`` and thereby registers the built-in
    strategies before the lookup by name (the ``run_shard_task``
    pattern).
    """
    strategy = get_strategy(task.strategy)
    with (
        contextlib.nullcontext(None)
        if task.trace is None
        else task.trace.activate("worker", strategy=task.strategy)
    ) as root:
        start = time.perf_counter()
        with deadline_scope(task.deadline):
            outcome = strategy.run(
                task.normalized,
                task.database,
                semantics=task.semantics,
                **dict(task.options),
            )
        elapsed = time.perf_counter() - start
        if root is not None:
            root.incr("rows_out", len(outcome.answer))
    return EngineTaskResult(
        outcome=outcome,
        elapsed=elapsed,
        trace=None if root is None else root.export(),
    )


class AsyncEngine:
    """Evaluates queries concurrently on an asyncio event loop.

    Accepts every argument :class:`~repro.engine.core.Engine` does, plus
    the async-specific ``pool``/``max_workers``/``max_concurrency``.
    Pass ``engine=`` to share an existing sync engine (and its cache);
    otherwise a private engine is created and closed with this one.
    """

    def __init__(
        self,
        *,
        engine: Engine | None = None,
        pool: Any = "process",
        max_workers: int | None = None,
        max_concurrency: int | None = None,
        cache_size: int = 256,
        cache: Any = None,
        default_semantics: str = "set",
        shards: int | None = None,
        executor: Any = "serial",
        partitioner: Any = None,
        optimize: bool = True,
        stats: bool = True,
        backend: str = "auto",
        auto_exact_budget: int | None = None,
        timeout: float | Deadline | None = None,
        on_shard_error: str = "raise",
        retry: RetryPolicy | bool | None = None,
        trace: bool = False,
    ):
        self._owns_engine = engine is None
        self._engine = engine or Engine(
            cache_size=cache_size,
            cache=cache,
            default_semantics=default_semantics,
            shards=shards,
            executor=executor,
            partitioner=partitioner,
            optimize=optimize,
            stats=stats,
            backend=backend,
            auto_exact_budget=auto_exact_budget,
            timeout=timeout,
            on_shard_error=on_shard_error,
            retry=retry,
            trace=trace,
        )
        if isinstance(pool, concurrent.futures.Executor):
            self._pool: concurrent.futures.Executor | None = pool
            self._owns_pool = False
            self._pool_kind = type(pool).__name__
        elif pool in _POOL_KINDS:
            self._pool = None
            self._owns_pool = True
            self._pool_kind = pool
        else:
            raise EngineError(
                f"unknown worker pool {pool!r}; expected one of {_POOL_KINDS} "
                "or a concurrent.futures.Executor instance"
            )
        if max_concurrency is not None and max_concurrency < 1:
            raise EngineError("max_concurrency must be a positive integer or None")
        self.max_workers = max_workers
        self.max_concurrency = max_concurrency
        # Loop-bound state, (re)created by _bind_loop so one AsyncEngine
        # survives successive asyncio.run() invocations.
        self._loop: asyncio.AbstractEventLoop | None = None
        self._semaphore: asyncio.Semaphore | None = None
        self._pending: dict[Hashable, _InFlight] = {}

    # ------------------------------------------------------------------
    # Introspection and delegation to the sync twin
    # ------------------------------------------------------------------
    @property
    def engine(self) -> Engine:
        """The sync twin this engine shares its cache and config with."""
        return self._engine

    @staticmethod
    def strategies() -> tuple[str, ...]:
        return Engine.strategies()

    def describe(self) -> dict[str, Any]:
        """The capability table and configuration of the sync twin."""
        return self._engine.describe()

    @property
    def cache_stats(self) -> CacheStats:
        return self._engine.cache_stats

    @property
    def cache_enabled(self) -> bool:
        return self._engine.cache_enabled

    def clear_cache(self) -> None:
        self._engine.clear_cache()

    @property
    def default_semantics(self) -> str:
        return self._engine.default_semantics

    @property
    def pool_kind(self) -> str:
        return self._pool_kind

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the worker pool and, if owned, the inner engine."""
        if self._owns_pool and self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        if self._owns_engine:
            self._engine.close()

    async def aclose(self) -> None:
        """Awaitable ``close``: pool shutdown happens off the event loop."""
        await asyncio.get_running_loop().run_in_executor(None, self.close)

    async def __aenter__(self) -> "AsyncEngine":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    # ------------------------------------------------------------------
    # Loop-bound plumbing
    # ------------------------------------------------------------------
    def _bind_loop(self) -> asyncio.AbstractEventLoop:
        loop = asyncio.get_running_loop()
        if self._loop is not loop:
            self._loop = loop
            self._semaphore = (
                asyncio.Semaphore(self.max_concurrency)
                if self.max_concurrency is not None
                else None
            )
            self._pending = {}
        return loop

    def _limit(self):
        """The dispatch limiter: the semaphore, or a reusable no-op."""
        if self._semaphore is not None:
            return self._semaphore
        return contextlib.nullcontext()

    def _pool_executor(self) -> concurrent.futures.Executor:
        if self._pool is None:
            workers = self.max_workers or (os.cpu_count() or 1)
            if self._pool_kind == "process":
                self._pool = concurrent.futures.ProcessPoolExecutor(
                    max_workers=workers
                )
            else:  # "thread"
                self._pool = concurrent.futures.ThreadPoolExecutor(
                    max_workers=workers
                )
        return self._pool

    async def _dispatch(self, task: EngineTask) -> EngineTaskResult:
        """Run one task on the pool, holding a semaphore slot meanwhile."""
        async with self._limit():
            if self._pool_kind == "serial":
                return run_engine_task(task)
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(
                self._pool_executor(), run_engine_task, task
            )

    def _reset_pool(self) -> None:
        """Discard a broken owned pool so the next dispatch respawns it."""
        if self._owns_pool and self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    async def _dispatch_resilient(
        self,
        task: EngineTask,
        *,
        deadline: Deadline | None,
        retry: RetryPolicy | None,
    ) -> tuple[EngineTaskResult, int]:
        """Dispatch with a deadline-bounded wait and transient retries.

        The worker honours ``task.deadline`` itself (via the evaluator's
        loop checks), but a worker stuck in native code — or a pool whose
        process died mid-task — would never come back; ``asyncio.wait_for``
        caps the wait from the caller's side.  Transient dispatch
        failures (a killed pool worker raises ``BrokenProcessPool``) are
        retried under ``retry``, respawning an owned pool first.
        """
        attempts = 0
        while True:
            try:
                if deadline is None:
                    return await self._dispatch(task), attempts
                try:
                    return (
                        await asyncio.wait_for(
                            self._dispatch(task), timeout=deadline.remaining()
                        ),
                        attempts,
                    )
                except DeadlineExceeded:
                    raise
                except TimeoutError:
                    raise DeadlineExceeded(
                        f"evaluation exceeded its {deadline.budget:.3f}s "
                        "deadline (async dispatch)"
                    ) from None
            except DeadlineExceeded:
                raise
            except Exception as exc:
                attempts += 1
                if (
                    retry is None
                    or attempts >= retry.max_attempts
                    or not retry.is_retryable(exc)
                    or (deadline is not None and deadline.expired)
                ):
                    raise
                if any(
                    klass.__name__ in ("BrokenProcessPool", "BrokenExecutor")
                    for klass in type(exc).__mro__
                ):
                    self._reset_pool()
                pause = retry.delay(attempts)
                if deadline is not None:
                    pause = min(pause, max(0.0, deadline.remaining()))
                await asyncio.sleep(pause)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    async def evaluate(
        self,
        query: Any,
        database: Database,
        *,
        strategy: str = "naive",
        semantics: str | None = None,
        use_cache: bool = True,
        database_fp: str | None = None,
        shards: int | None = None,
        executor: Any = None,
        partitioner: Any = None,
        optimize: bool | None = None,
        stats: bool | None = None,
        backend: str | None = None,
        timeout: float | Deadline | None = None,
        on_shard_error: str | None = None,
        retry: RetryPolicy | bool | None = None,
        trace: bool | None = None,
        **options: Any,
    ) -> QueryResult:
        """Awaitable :meth:`repro.engine.Engine.evaluate`, same contract.

        The result is identical to the sync engine's (worker-measured
        ``elapsed`` aside); concurrent calls overlap up to
        ``max_concurrency`` and the pool's worker count.  ``timeout``,
        ``on_shard_error``, ``retry`` and ``trace`` behave exactly as on
        the sync engine; the deadline additionally bounds the wait on
        the worker pool, so a wedged worker cannot hold the caller past
        its budget.  With ``trace=True``, worker-side spans (the
        strategy run happens in the pool) are stitched back under this
        call's root span via the task's
        :class:`~repro.obs.SpanContext`.
        """
        self._bind_loop()
        engine = self._engine
        do_trace = engine.default_trace if trace is None else bool(trace)
        with (
            start_trace("evaluate") if do_trace else contextlib.nullcontext()
        ) as root:
            deadline = resolve_deadline(timeout, engine.default_timeout)
            if on_shard_error is None:
                on_shard_error = engine.default_on_shard_error
            elif on_shard_error not in _ON_SHARD_ERROR:
                raise EngineError(
                    f"unknown on_shard_error {on_shard_error!r}; "
                    f"expected one of {_ON_SHARD_ERROR}"
                )
            retry_policy = (
                engine.default_retry if retry is None else resolve_retry(retry)
            )
            strat, semantics, normalized, decision = engine._prepare_call(
                query, database, strategy, semantics
            )
            options = engine._resolve_options(strat, optimize, stats, backend, options)
            sharded = engine._sharded_database(database, shards, partitioner)
            if root is not None:
                root.set_attr("strategy", strat.name)
                root.set_attr("semantics", semantics)
            if sharded is not None:
                from ..sharding.evaluate import evaluate_sharded_async

                cache = (
                    engine._cache if use_cache and engine._cache.enabled else None
                )

                async def coalesced() -> QueryResult:
                    return await self._evaluate_monolithic(
                        normalized,
                        sharded,
                        strat,
                        semantics,
                        use_cache=use_cache,
                        database_fp=database_fp,
                        options=options,
                        deadline=deadline,
                        retry=retry_policy,
                    )

                result = await evaluate_sharded_async(
                    normalized,
                    sharded,
                    strat,
                    semantics=semantics,
                    options=options,
                    executor=engine._shard_executor(executor),
                    cache=cache,
                    database_fp=database_fp,
                    evaluate_coalesced=coalesced,
                    limiter=self._limit(),
                    deadline=deadline,
                    on_shard_error=on_shard_error,
                    retry=retry_policy,
                )
            else:
                result = await self._evaluate_monolithic(
                    normalized,
                    database,
                    strat,
                    semantics,
                    use_cache=use_cache,
                    database_fp=database_fp,
                    options=options,
                    deadline=deadline,
                    retry=retry_policy,
                )
        obs_metrics.incr("engine.evaluations", strategy=strat.name)
        obs_metrics.observe(
            "engine.elapsed_ms", result.elapsed * 1000.0, strategy=strat.name
        )
        result = _with_plan_metadata(result, decision)
        result = _with_backend_note(result, strat, backend)
        if root is not None:
            # Attached post-hoc like the plan/backend notes: the cached
            # entry carries no trace, the returned copy does.
            result = replace(
                result, metadata={**result.metadata, "trace": root.export()}
            )
        return result

    async def _evaluate_monolithic(
        self,
        normalized: Any,
        database: Database,
        strat: Any,
        semantics: str,
        *,
        use_cache: bool,
        database_fp: str | None,
        options: Mapping[str, Any],
        deadline: Deadline | None = None,
        retry: RetryPolicy | None = None,
    ) -> QueryResult:
        key = None
        if use_cache and self._engine._cache.enabled:
            with span("cache.lookup") as lookup:
                if database_fp is None:
                    database_fp = database_fingerprint(database)
                # The deadline and retry policy are deliberately not part of
                # the cache (or coalescing) key: they change whether a
                # computation finishes, never what it computes.
                key = evaluation_cache_key(
                    normalized.fingerprint, database_fp, strat.name, semantics, options
                )
                cached = self._engine._cache.get(key)
                lookup.set_attr("outcome", "hit" if cached is not None else "miss")
            if cached is not None:
                return cached.as_cached()

        if key is None:
            return await self._compute(
                normalized, database, strat, semantics, options, None,
                deadline=deadline, retry=retry,
            )

        # Single-flight: concurrent evaluations of one key share one
        # computation.  The shared computation runs in its own task
        # behind asyncio.shield, so a cancelled awaiter does not kill it
        # for the others; the _InFlight refcount cancels the shared task
        # only when the *last* awaiter is gone, so an abandoned worker
        # result is never inserted into the cache.
        created = False
        flight = self._pending.get(key)
        if flight is None or flight.task.cancelled():
            created = True
            flight = _InFlight(
                asyncio.get_running_loop().create_task(
                    self._compute(
                        normalized, database, strat, semantics, options, key,
                        deadline=deadline, retry=retry,
                    )
                )
            )
            self._pending[key] = flight
            flight.task.add_done_callback(
                lambda _task, _key=key, _flight=flight: self._discard_flight(
                    _key, _flight
                )
            )
        flight.waiters += 1
        try:
            result = await asyncio.shield(flight.task)
        finally:
            flight.waiters -= 1
            if flight.waiters == 0 and not flight.task.done():
                # Every awaiter has been cancelled: abandon the shared
                # computation.  Discarding the flight first keeps a new
                # arrival (in the same event-loop step) from joining a
                # task that is about to unwind.
                self._discard_flight(key, flight)
                flight.task.cancel()
        return result if created else result.as_cached()

    def _discard_flight(self, key: Hashable, flight: "_InFlight") -> None:
        """Drop one in-flight entry, never clobbering a newer one."""
        if self._pending.get(key) is flight:
            del self._pending[key]

    async def _compute(
        self,
        normalized: Any,
        database: Database,
        strat: Any,
        semantics: str,
        options: Mapping[str, Any],
        key: Hashable,
        *,
        deadline: Deadline | None = None,
        retry: RetryPolicy | None = None,
    ) -> QueryResult:
        task = EngineTask(
            normalized=normalized,
            database=database,
            strategy=strat.name,
            semantics=semantics,
            options=tuple(options.items()),
            deadline=deadline,
            # None when the caller is untraced.  The computation task's
            # context was copied from the (leader) caller, so the graft
            # below lands under that caller's live span.
            trace=SpanContext.capture(),
        )
        computed, retries = await self._dispatch_resilient(
            task, deadline=deadline, retry=retry
        )
        if computed.trace is not None:
            # Into the live trace only — never into the metadata below,
            # which may be inserted into the shared result cache.
            current_span().graft(computed.trace)
        outcome = computed.outcome
        metadata = dict(outcome.metadata)
        if retries:
            resilience = dict(metadata.get("resilience") or {})
            resilience["dispatch_retries"] = retries
            metadata["resilience"] = resilience
        result = QueryResult(
            strategy=strat.name,
            semantics=semantics,
            relation=outcome.answer,
            tuples=outcome.annotated,
            certain=outcome.certain,
            possible=outcome.possible,
            certainly_false=outcome.certainly_false,
            elapsed=computed.elapsed,
            from_cache=False,
            fingerprint=normalized.fingerprint,
            metadata=metadata,
        )
        if key is not None:
            self._engine._cache.put(key, result)
        return result

    async def evaluate_batch(
        self,
        queries: Iterable[Any],
        database: Database,
        *,
        strategy: str = "naive",
        semantics: str | None = None,
        use_cache: bool = True,
        database_fp: str | None = None,
        shards: int | None = None,
        executor: Any = None,
        partitioner: Any = None,
        **options: Any,
    ) -> list[QueryResult]:
        """Evaluate many queries concurrently on one database.

        The database is fingerprinted (and, with sharding, partitioned)
        once up front; the per-query evaluations then overlap, bounded
        by ``max_concurrency`` and the pool size.  Results come back in
        input order.
        """
        self._bind_loop()
        engine = self._engine
        sharded = engine._sharded_database(database, shards, partitioner)
        if sharded is not None:
            database = sharded
            shards = None  # already resolved; avoid re-partitioning per query
        if database_fp is None and use_cache and engine._cache.enabled:
            database_fp = database_fingerprint(database)
        return list(
            await asyncio.gather(
                *(
                    self.evaluate(
                        query,
                        database,
                        strategy=strategy,
                        semantics=semantics,
                        use_cache=use_cache,
                        database_fp=database_fp,
                        shards=shards,
                        executor=executor,
                        partitioner=partitioner,
                        **options,
                    )
                    for query in queries
                )
            )
        )

    async def compare(
        self,
        query: Any,
        database: Database,
        *,
        strategies: Sequence[str] | None = None,
        semantics: str | None = None,
        use_cache: bool = True,
        skip_inapplicable: bool = True,
        database_fp: str | None = None,
        shards: int | None = None,
        executor: Any = None,
        partitioner: Any = None,
        optimize: bool | None = None,
        stats: bool | None = None,
        backend: str | None = None,
        timeout: float | Deadline | None = None,
        on_shard_error: str | None = None,
        retry: RetryPolicy | bool | None = None,
        trace: bool | None = None,
        options: Mapping[str, Mapping[str, Any]] | None = None,
    ) -> dict[str, QueryResult]:
        """Run every applicable strategy concurrently on one query.

        Same contract as :meth:`repro.engine.Engine.compare`; the
        strategy runs fan out together instead of one after another.
        Inapplicable strategies (raised either before dispatch or inside
        a worker) are silently omitted under ``skip_inapplicable``.
        ``timeout`` is one shared wall-clock budget: every strategy runs
        under the same deadline, as in the sync ``compare``.
        """
        self._bind_loop()
        engine = self._engine
        # One deadline for the whole comparison, resolved up front so
        # strategies racing concurrently still share a single budget.
        deadline = resolve_deadline(timeout, engine.default_timeout)
        names = tuple(strategies) if strategies is not None else self.strategies()
        per_strategy = options or {}
        sharded = engine._sharded_database(database, shards, partitioner)
        if sharded is not None:
            database = sharded
            shards = None
        if database_fp is None and use_cache and engine._cache.enabled:
            database_fp = database_fingerprint(database)

        async def run_one(name: str) -> tuple[str, QueryResult | None]:
            extra = dict(per_strategy.get(name, {}))
            # A per-strategy {'optimize': ...} / {'stats': ...} /
            # {'backend': ...} overrides the call-level argument instead
            # of colliding with it.
            resolved_optimize = extra.pop("optimize", optimize)
            resolved_stats = extra.pop("stats", stats)
            resolved_backend = extra.pop("backend", backend)
            try:
                result = await self.evaluate(
                    query,
                    database,
                    strategy=name,
                    semantics=semantics,
                    use_cache=use_cache,
                    database_fp=database_fp,
                    shards=shards,
                    executor=executor,
                    partitioner=partitioner,
                    optimize=resolved_optimize,
                    stats=resolved_stats,
                    backend=resolved_backend,
                    timeout=deadline,
                    on_shard_error=on_shard_error,
                    retry=retry,
                    trace=trace,
                    **extra,
                )
            except StrategyNotApplicableError:
                if not skip_inapplicable:
                    raise
                return name, None
            return name, result

        pairs = await asyncio.gather(*(run_one(name) for name in names))
        return {name: result for name, result in pairs if result is not None}


class AsyncSession:
    """An :class:`AsyncEngine` bound to one database.

    The async mirror of :class:`~repro.engine.core.Session`: memoises
    the database fingerprint, carries per-session sharding config, and —
    as an *async* context manager — closes the engine it created (a
    shared engine survives session exit; as with the sync session, a
    shared engine also keeps its own ``cache_size``/``default_semantics``/
    ``optimize``/``stats``/``backend`` configuration — use the per-call
    ``optimize=``/``stats=``/``backend=`` to override)::

        async with AsyncSession(database) as session:
            results = await session.compare(query)
    """

    def __init__(
        self,
        database: Database,
        *,
        engine: AsyncEngine | None = None,
        cache_size: int = 256,
        cache: Any = None,
        default_semantics: str = "set",
        shards: int | None = None,
        executor: Any = None,
        partitioner: Any = None,
        pool: Any = "process",
        max_workers: int | None = None,
        max_concurrency: int | None = None,
        optimize: bool = True,
        stats: bool = True,
        backend: str = "auto",
        auto_exact_budget: int | None = None,
        timeout: float | Deadline | None = None,
        on_shard_error: str = "raise",
        retry: RetryPolicy | bool | None = None,
        trace: bool = False,
    ):
        self.database = _presharded_database(database, shards, partitioner)
        self._owns_engine = engine is None
        self.engine = engine or AsyncEngine(
            cache_size=cache_size,
            cache=cache,
            default_semantics=default_semantics,
            executor=executor or "serial",
            pool=pool,
            max_workers=max_workers,
            max_concurrency=max_concurrency,
            optimize=optimize,
            stats=stats,
            backend=backend,
            auto_exact_budget=auto_exact_budget,
            timeout=timeout,
            on_shard_error=on_shard_error,
            retry=retry,
            trace=trace,
        )
        self._executor = executor
        self._shards = shards
        self._partitioner = partitioner
        self._database_fp: str | None = None

    def _fingerprint(self) -> str:
        if self._database_fp is None:
            self._database_fp = database_fingerprint(self.database)
        return self._database_fp

    def with_database(self, database: Database) -> "AsyncSession":
        """A new session on another database, sharing this session's engine."""
        from ..sharding.database import ShardedDatabase

        shards = None if isinstance(database, ShardedDatabase) else self._shards
        session = AsyncSession(
            database,
            engine=self.engine,
            shards=shards,
            executor=self._executor,
            partitioner=self._partitioner,
        )
        session._shards = self._shards
        session._partitioner = self._partitioner
        return session

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the engine this session created (shared engines survive)."""
        if self._owns_engine:
            self.engine.close()

    async def aclose(self) -> None:
        if self._owns_engine:
            await self.engine.aclose()

    async def __aenter__(self) -> "AsyncSession":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    # ------------------------------------------------------------------
    # Delegation
    # ------------------------------------------------------------------
    def _caching(self, kwargs: Mapping[str, Any]) -> bool:
        return bool(kwargs.get("use_cache", True)) and self.engine.cache_enabled

    async def evaluate(self, query: Any, **kwargs: Any) -> QueryResult:
        if self._caching(kwargs):
            kwargs.setdefault("database_fp", self._fingerprint())
        if self._executor is not None:
            kwargs.setdefault("executor", self._executor)
        return await self.engine.evaluate(query, self.database, **kwargs)

    async def evaluate_batch(
        self, queries: Iterable[Any], **kwargs: Any
    ) -> list[QueryResult]:
        if self._caching(kwargs):
            kwargs.setdefault("database_fp", self._fingerprint())
        if self._executor is not None:
            kwargs.setdefault("executor", self._executor)
        return await self.engine.evaluate_batch(queries, self.database, **kwargs)

    async def compare(self, query: Any, **kwargs: Any) -> dict[str, QueryResult]:
        if self._caching(kwargs):
            kwargs.setdefault("database_fp", self._fingerprint())
        if self._executor is not None:
            kwargs.setdefault("executor", self._executor)
        return await self.engine.compare(query, self.database, **kwargs)

    # Small conveniences mirroring the sync session's vocabulary.
    async def sql(self, query: Any, **kwargs: Any) -> QueryResult:
        return await self.evaluate(query, strategy="sql-3vl", **kwargs)

    async def naive(self, query: Any, **kwargs: Any) -> QueryResult:
        return await self.evaluate(query, strategy="naive", **kwargs)

    async def certain(self, query: Any, **kwargs: Any) -> QueryResult:
        return await self.evaluate(query, strategy="exact-certain", **kwargs)

    async def auto(self, query: Any, **kwargs: Any) -> QueryResult:
        """Planner-chosen evaluation (``strategy="auto"``)."""
        return await self.evaluate(query, strategy="auto", **kwargs)

    async def explain(self, query: Any, **kwargs: Any) -> str:
        """Evaluate with ``trace=True`` and render the EXPLAIN report.

        The async mirror of :meth:`repro.engine.Session.explain`:
        accepts every ``evaluate`` keyword and returns one report
        combining plan/backend/sharding/resilience notes with the span
        tree (worker spans included).
        """
        kwargs["trace"] = True
        return render_explain(await self.evaluate(query, **kwargs))

    def strategies(self) -> tuple[str, ...]:
        return self.engine.strategies()

    @property
    def cache_stats(self) -> CacheStats:
        return self.engine.cache_stats

    def clear_cache(self) -> None:
        self.engine.clear_cache()
