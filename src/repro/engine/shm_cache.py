"""A result-cache backend over ``multiprocessing.shared_memory``.

:class:`~repro.engine.cache.DiskCacheBackend` made results survive
process boundaries, but every hop pays pickle-to-disk-and-back — for the
sharded evaluator's per-shard partials that means re-serialising whole
fragment relations through the filesystem on every pool round trip.
:class:`SharedMemoryCacheBackend` keeps the exact same contract (content
fingerprints in, opaque pickled values out, misses never errors) while
storing each entry in a named POSIX shared-memory segment, so a server
process and its pool workers exchange cached partials through RAM.

Layout: one segment per entry, named ``<prefix>-<digest16>`` where the
digest hashes the canonical key ``repr`` (the same scheme as the disk
backend's file names — segment names must stay short, some platforms cap
them around 30 characters).  The first 8 bytes hold the payload length,
written *after* the payload: a freshly created segment is zero-filled,
so a concurrent reader that attaches mid-write sees length 0 and counts
a miss rather than unpickling a torn entry.

Ownership: the creating process unlinks its segments on ``clear()`` /
``close()`` (and, via ``atexit``, at interpreter exit — POSIX segments
outlive processes, so a crashed benchmark must not leak them into the
next run).  Attaching readers deliberately *unregister* from
``multiprocessing.resource_tracker``: on CPython < 3.13 the tracker
records every attach as ownership and unlinks the segment when the
reader exits, destroying entries other processes still use (bpo-38119).
"""

from __future__ import annotations

import atexit
import hashlib
import pickle
import re
import struct
import threading
from collections import OrderedDict
from typing import Any, Hashable

from multiprocessing import shared_memory

from ..resilience import InjectedFault, fault_point
from .cache import CacheBackend, CacheStats

__all__ = ["SharedMemoryCacheBackend"]

_LEN = struct.Struct("<Q")

# Segment names created (and so tracker-registered) by THIS process.  An
# attach to one of these must not unregister it — the owner's eventual
# ``unlink`` does, and a double unregister makes the tracker print a
# KeyError traceback.  Only attaches to *foreign* segments untrack.
_PROCESS_OWNED: set[str] = set()
_PROCESS_OWNED_LOCK = threading.Lock()


def _untrack(segment: shared_memory.SharedMemory) -> None:
    """Undo the resource tracker's attach-is-ownership bookkeeping."""
    try:  # pragma: no cover - depends on interpreter internals
        from multiprocessing import resource_tracker

        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:
        pass


class SharedMemoryCacheBackend(CacheBackend):
    """A cross-process result cache: one shared-memory segment per entry.

    ``name`` prefixes every segment so independent caches coexist;
    ``max_entries`` bounds how many segments this *instance* keeps
    alive, evicted LRU by access order.  Entries written by another
    process with the same prefix are readable here (``get`` attaches by
    deterministic name), but only the creating instance evicts and
    unlinks what it created.
    """

    def __init__(self, name: str = "repro", max_entries: int = 1024):
        if max_entries < 0:
            raise ValueError("cache size must be non-negative")
        cleaned = re.sub(r"[^A-Za-z0-9_]", "", str(name))
        if not cleaned:
            raise ValueError(f"unusable shared-memory cache name {name!r}")
        # Segment name budget (~30 chars on the tightest platforms):
        # prefix ≤ 8 + "-" + 16 digest hex chars.
        self.name = cleaned[:8]
        self.max_entries = max_entries
        self._owned: OrderedDict[str, shared_memory.SharedMemory] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._lifetime_hits = 0
        self._lifetime_misses = 0
        self._lock = threading.Lock()
        self._closed = False
        atexit.register(self.close)

    # ------------------------------------------------------------------
    # Key → segment mapping
    # ------------------------------------------------------------------
    def _segment_name(self, key: Hashable) -> str:
        digest = hashlib.sha256(repr(key).encode("utf-8")).hexdigest()[:16]
        return f"{self.name}-{digest}"

    @staticmethod
    def _read(segment: shared_memory.SharedMemory) -> Any | None:
        try:
            (length,) = _LEN.unpack_from(segment.buf, 0)
            if length == 0 or length + _LEN.size > segment.size:
                return None  # mid-write or corrupt: a miss, never an error
            payload = bytes(segment.buf[_LEN.size:_LEN.size + length])
        except (struct.error, ValueError, IndexError, OSError):
            # Racing the owner: a segment unlinked (or still zero-sized)
            # between attach and read leaves a dead or undersized buffer.
            return None
        try:
            return pickle.loads(payload)
        except Exception:  # noqa: BLE001 - torn payloads raise anything
            return None

    # ------------------------------------------------------------------
    # CacheBackend surface
    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self.max_entries > 0 and not self._closed

    def get(self, key: Hashable) -> Any | None:
        name = self._segment_name(key)
        value = None
        try:
            fault_point("cache.get", backend="shm")
        except InjectedFault:
            with self._lock:
                self._misses += 1
            return None
        with self._lock:
            segment = self._owned.get(name)
            if segment is not None:
                value = self._read(segment)
                if value is not None:
                    self._owned.move_to_end(name)
        if value is None and not self._closed:
            # Not ours (or torn): attach by name — another process with
            # the same prefix may have written it.  The attach itself can
            # race the owner's unlink (FileNotFoundError) or catch a
            # zero-sized segment mid-create (ValueError from mmap); both
            # are misses, never errors.
            try:
                segment = shared_memory.SharedMemory(name=name)
            except (FileNotFoundError, OSError, ValueError):
                segment = None
            if segment is not None:
                with _PROCESS_OWNED_LOCK:
                    foreign = name not in _PROCESS_OWNED
                if foreign:
                    _untrack(segment)
                try:
                    value = self._read(segment)
                finally:
                    try:
                        segment.close()
                    except (OSError, BufferError):
                        pass
        with self._lock:
            if value is None:
                self._misses += 1
            else:
                self._hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        if not self.enabled:
            return
        try:
            fault_point("cache.put", backend="shm")
        except InjectedFault:
            return  # best-effort store: an injected fault drops the entry
        name = self._segment_name(key)
        try:
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except (pickle.PickleError, TypeError, AttributeError):
            return  # unpicklable results simply stay uncached
        with self._lock:
            if name in self._owned:
                self._owned.move_to_end(name)
                return  # content-keyed: same key ⇒ same value
        try:
            segment = shared_memory.SharedMemory(
                name=name, create=True, size=_LEN.size + len(payload)
            )
        except FileExistsError:
            return  # another process already cached this key
        except OSError:
            return  # shm exhausted: best-effort store, like a full disk
        with _PROCESS_OWNED_LOCK:
            _PROCESS_OWNED.add(name)
        segment.buf[_LEN.size:_LEN.size + len(payload)] = payload
        _LEN.pack_into(segment.buf, 0, len(payload))  # commit last
        evicted: list[shared_memory.SharedMemory] = []
        with self._lock:
            if self._closed:
                evicted.append(segment)
            else:
                self._owned[name] = segment
                while len(self._owned) > self.max_entries:
                    _, stale = self._owned.popitem(last=False)
                    evicted.append(stale)
        for stale in evicted:
            self._unlink(stale)

    @staticmethod
    def _unlink(segment: shared_memory.SharedMemory) -> None:
        with _PROCESS_OWNED_LOCK:
            _PROCESS_OWNED.discard(segment.name)
        try:
            segment.close()
            segment.unlink()
        except OSError:  # pragma: no cover - already gone
            pass

    def clear(self) -> None:
        with self._lock:
            owned = list(self._owned.values())
            self._owned.clear()
            self._lifetime_hits += self._hits
            self._lifetime_misses += self._misses
            self._hits = 0
            self._misses = 0
        for segment in owned:
            self._unlink(segment)

    def close(self) -> None:
        """Unlink every owned segment; the backend then stays disabled."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            owned = list(self._owned.values())
            self._owned.clear()
        for segment in owned:
            self._unlink(segment)

    def __len__(self) -> int:
        with self._lock:
            return len(self._owned)

    def _stats(self, hits: int, misses: int) -> CacheStats:
        return CacheStats(
            hits=hits, misses=misses, size=len(self._owned), max_size=self.max_entries
        )

    @property
    def stats(self) -> CacheStats:
        with self._lock:
            return self._stats(self._hits, self._misses)

    @property
    def lifetime_stats(self) -> CacheStats:
        with self._lock:
            return self._stats(
                self._lifetime_hits + self._hits,
                self._lifetime_misses + self._misses,
            )
