"""The declarative capability contract of an evaluation strategy.

One :class:`StrategyCapabilities` record replaces the per-strategy
booleans that used to be scattered across the engine (the
``supported_semantics`` tuple, the ``supports_optimize`` flag) and the
sharding planner's hardcoded operator allowlists.  Everything the engine
needs to *decide* on behalf of a strategy — which semantics it honours,
which query forms it consumes, on which fragments its answer is exact,
whether its answers are sound/complete bounds on the certain answers,
how it distributes over shards, how expensive it is — lives in this one
frozen record, so the ``strategy="auto"`` planner
(:mod:`repro.engine.planner`), the sharded evaluator
(:mod:`repro.sharding.evaluate`) and the introspection surface
(``available_strategies(verbose=True)``, ``Engine.describe()``) all read
the same declaration instead of each keeping their own table.

The record is *declarative*: plain strings and frozensets only, no
callables and no references to strategy code.  Shardable operators are
named by their :mod:`repro.algebra.ast` class names and merge functions
by their registered names (see
:func:`repro.sharding.evaluate.register_shard_merge`), which keeps a
capability record printable, picklable, and comparable in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any

__all__ = [
    "StrategyCapabilities",
    "EXACT_FRAGMENTS_CWA",
]

#: The fragments of Theorem 4.4 on which naïve evaluation computes the
#: certain answers exactly (under the closed-world assumption): unions of
#: conjunctive queries and positive formulae with universally guarded
#: quantification.  ``CQ ⊆ UCQ ⊆ Pos∀G`` as classified by
#: :func:`repro.calculus.fragments.classify` and
#: :func:`repro.algebra.fragments.classify_plan`.
EXACT_FRAGMENTS_CWA = frozenset({"CQ", "UCQ", "Pos∀G"})


@dataclass(frozen=True)
class StrategyCapabilities:
    """What one evaluation strategy declares about itself.

    * ``semantics`` — which of ``"set"`` / ``"bag"`` the strategy honours.
    * ``requires`` — the lowered query forms it can consume, any-of
      (``"sql"`` / ``"algebra"`` / ``"calculus"``; see
      :meth:`repro.engine.frontend.NormalizedQuery.forms`).  Empty means
      "unknown", which the planner treats as not auto-selectable.
    * ``bag_requires`` — override of ``requires`` under bag semantics
      (e.g. naïve bag evaluation needs an algebra plan; ``None`` means
      the same forms as ``requires``).
    * ``exact_on`` — fragment names on which the primary answer *is* the
      set of certain answers (Theorem 4.4 fragments for naïve
      evaluation; the engine treats a complete database as exact for
      every strategy separately).
    * ``sound`` / ``complete`` — bounds on incomplete data everywhere
      (not just on ``exact_on``): sound means every returned tuple is a
      certain answer; complete means every certain answer is returned.
      ``exact-certain`` declares both; the Figure 2 approximations are
      sound; SQL's three-valued evaluation is neither (Section 1).
    * ``plan_ops`` — when not ``None``, the algebra operator class names
      the strategy can consume in a plan (the Figure 2 translations are
      defined on the core operators only); the ``auto`` planner skips
      the strategy for plans using anything else.  ``None`` declares no
      restriction (a literal evaluator).
    * ``optimize`` — understands the engine's ``optimize=`` option
      (plan optimization via :mod:`repro.algebra.optimize`).  The engine
      only forwards the option — and only includes it in cache keys —
      for strategies that declare it.
    * ``stats`` — understands the engine's ``stats=`` option
      (statistics-driven cost-based planning via
      :mod:`repro.algebra.stats`; implies the strategy also honours
      ``optimize``).  Forwarded and cache-keyed on declaration, like
      ``optimize``.  Strategies that re-plan per possible world (the
      exact-certain expansion) deliberately do *not* declare it: each
      world carries different statistics, so per-world stats would
      defeat the one-plan-many-worlds memoisation.
    * ``backends`` — the execution backends the strategy can run its
      plans on (:data:`repro.exec.BACKEND_NAMES` minus ``"auto"``).
      Every strategy runs on ``"interpreter"``; strategies that hand
      whole algebra plans to :func:`repro.exec.execute_plans` also
      declare ``"sqlite"``, and only for those does the engine forward
      (and cache-key) the ``backend=`` option.
    * ``shardable_ops`` / ``shardable_bag_ops`` — operator class names
      allowed on the partitioned lineage of a shard plan
      (:func:`repro.sharding.planner.shard_plan`); empty means the
      strategy always evaluates coalesced on a sharded database.
    * ``shard_merge`` — registered name of the function merging per-shard
      partial outcomes (:data:`repro.sharding.evaluate.SHARD_MERGES`).
    * ``cost`` — a coarse hint ordering strategies for the planner:
      ``"polynomial"`` or ``"exponential"`` (data complexity of a single
      evaluation; ``"unknown"`` sorts last).
    """

    semantics: tuple[str, ...] = ("set",)
    requires: tuple[str, ...] = ()
    bag_requires: tuple[str, ...] | None = None
    exact_on: frozenset[str] = frozenset()
    sound: bool = False
    complete: bool = False
    plan_ops: frozenset[str] | None = None
    optimize: bool = False
    stats: bool = False
    backends: tuple[str, ...] = ("interpreter",)
    shardable_ops: frozenset[str] = frozenset()
    shardable_bag_ops: frozenset[str] | None = None
    shard_merge: str | None = None
    cost: str = "unknown"

    def __post_init__(self) -> None:
        # Normalise mutable/iterable inputs so records compare by value.
        object.__setattr__(self, "semantics", tuple(self.semantics))
        object.__setattr__(self, "requires", tuple(self.requires))
        if self.bag_requires is not None:
            object.__setattr__(self, "bag_requires", tuple(self.bag_requires))
        object.__setattr__(self, "exact_on", frozenset(self.exact_on))
        object.__setattr__(self, "backends", tuple(self.backends))
        if self.plan_ops is not None:
            object.__setattr__(self, "plan_ops", _op_names(self.plan_ops))
        object.__setattr__(self, "shardable_ops", _op_names(self.shardable_ops))
        if self.shardable_bag_ops is not None:
            object.__setattr__(
                self, "shardable_bag_ops", _op_names(self.shardable_bag_ops)
            )

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @property
    def exact_everywhere(self) -> bool:
        """Sound and complete: the answer is exactly the certain answers."""
        return self.sound and self.complete

    def requires_for(self, semantics: str) -> tuple[str, ...]:
        """The query forms needed under the given semantics."""
        if semantics == "bag" and self.bag_requires is not None:
            return self.bag_requires
        return self.requires

    def applicable(self, forms: tuple[str, ...], semantics: str) -> bool:
        """Can the strategy consume a query offering ``forms``?

        Conservative: an empty ``requires`` declaration answers False —
        the planner never auto-selects a strategy whose input contract
        it does not know.
        """
        if semantics not in self.semantics:
            return False
        needed = self.requires_for(semantics)
        return bool(needed) and any(form in forms for form in needed)

    def exact_on_fragment(self, fragment: str | None) -> bool:
        """Is the answer exactly the certain answers on this fragment?"""
        if self.exact_everywhere:
            return True
        return fragment is not None and fragment in self.exact_on

    def ops_for(self, semantics: str) -> frozenset[str]:
        """Shard-lineage operator names under the given semantics."""
        if semantics == "bag" and self.shardable_bag_ops is not None:
            return self.shardable_bag_ops
        return self.shardable_ops

    def as_dict(self) -> dict[str, Any]:
        """A plain-data rendering for ``Engine.describe()`` and docs."""
        return {
            "semantics": list(self.semantics),
            "requires": list(self.requires),
            "bag_requires": (
                None if self.bag_requires is None else list(self.bag_requires)
            ),
            "exact_on": sorted(self.exact_on),
            "sound": self.sound,
            "complete": self.complete,
            "plan_ops": None if self.plan_ops is None else sorted(self.plan_ops),
            "optimize": self.optimize,
            "stats": self.stats,
            "backends": list(self.backends),
            "shardable_ops": sorted(self.shardable_ops),
            "shardable_bag_ops": (
                None
                if self.shardable_bag_ops is None
                else sorted(self.shardable_bag_ops)
            ),
            "shard_merge": self.shard_merge,
            "cost": self.cost,
        }


def _op_names(ops) -> frozenset[str]:
    """Normalise operator classes or names to a frozenset of names."""
    return frozenset(op if isinstance(op, str) else op.__name__ for op in ops)


def capability_fields() -> tuple[str, ...]:
    """The record's field names, in declaration order (for table docs)."""
    return tuple(f.name for f in fields(StrategyCapabilities))
