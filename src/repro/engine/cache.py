"""Result-cache backends and the database fingerprint.

Results are cached under ``(query fingerprint, database fingerprint,
strategy, semantics, options)``.  Databases carry no version counter, so
the fingerprint is a content hash: a canonical serialisation of every
relation (name, attributes, rows with multiplicities, nulls rendered by
label).  Hashing is linear in the data but orders of magnitude cheaper
than any of the evaluation strategies; sessions additionally memoise the
fingerprint of their bound database so repeated calls pay it once.

Storage is pluggable behind the :class:`CacheBackend` protocol
(``get``/``put``/``clear``/``stats``):

* :class:`MemoryCacheBackend` (the historical :class:`ResultCache`,
  which remains as an alias) — a thread-safe in-process LRU;
* :class:`DiskCacheBackend` — one pickle file per entry under a
  directory, so results survive across sessions *and processes*.  Keys
  are the same content fingerprints, so no invalidation semantics
  change: mutating the database changes its fingerprint and simply
  misses.
* :class:`~repro.engine.shm_cache.SharedMemoryCacheBackend`
  (``cache="shm:<name>"``) — one ``multiprocessing.shared_memory``
  segment per entry, crossing process boundaries without the
  pickle-to-disk round trip (used by :mod:`repro.server` for per-shard
  partials).
* :class:`NamespacedCacheBackend` — a per-namespace view over any of
  the above, isolating tenants that share one physical backend.

Engines accept a backend spec anywhere a cache is configured:
``Engine(cache="disk:/path/to/dir")``, ``Session(db, cache=backend)``;
see :func:`resolve_cache_backend`.
"""

from __future__ import annotations

import enum
import hashlib
import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from collections.abc import Mapping
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Hashable

from ..datamodel.database import Database
from ..datamodel.relation import Relation
from ..datamodel.values import Null
from ..obs import metrics as obs_metrics
from ..resilience import InjectedFault, fault_point
from .errors import EngineError

__all__ = [
    "CacheStats",
    "CacheBackend",
    "MemoryCacheBackend",
    "DiskCacheBackend",
    "NamespacedCacheBackend",
    "ResultCache",
    "resolve_cache_backend",
    "canonical_value",
    "canonical_option_value",
    "canonical_options",
    "evaluation_cache_key",
    "relation_fingerprint",
    "database_fingerprint",
]


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss counters of a :class:`ResultCache`."""

    hits: int
    misses: int
    size: int
    max_size: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class CacheBackend:
    """The storage protocol every result cache implements.

    The engine (sync and async twins, and the sharded evaluator's
    partial-result cache) only ever calls this surface:

    * ``get(key) -> value | None`` — ``None`` is a miss;
    * ``put(key, value)`` — best-effort store (a disabled or full
      backend may drop the entry);
    * ``clear()`` — drop every entry, reset the stats epoch;
    * ``stats`` / ``lifetime_stats`` — :class:`CacheStats` counters;
    * ``enabled`` — a disabled backend is skipped entirely;
    * ``__len__`` — current entry count.

    Implementations must be thread-safe: the thread shard executor and
    :class:`~repro.engine.aio.AsyncEngine` worker callbacks share one
    backend.  Values must be treated as opaque (the engine stores
    :class:`~repro.engine.result.QueryResult` objects and shard
    partials under distinct key shapes).
    """

    @property
    def enabled(self) -> bool:
        return True

    def get(self, key: Hashable) -> Any | None:
        raise NotImplementedError

    def put(self, key: Hashable, value: Any) -> None:
        raise NotImplementedError

    def clear(self) -> None:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    @property
    def stats(self) -> CacheStats:
        raise NotImplementedError

    @property
    def lifetime_stats(self) -> CacheStats:
        raise NotImplementedError


class MemoryCacheBackend(CacheBackend):
    """A small in-process LRU cache mapping evaluation keys to results.

    The cache is thread-safe: ``get``/``put``/``clear`` and the stats
    views take an internal lock, so it can be shared by the thread shard
    executor and by :class:`~repro.engine.aio.AsyncEngine` worker
    callbacks without corrupting the LRU order or losing counter
    updates.  ``stats`` covers the current epoch (reset by ``clear``);
    ``lifetime_stats`` accumulates across clears.
    """

    def __init__(self, max_size: int = 256):
        if max_size < 0:
            raise ValueError("cache size must be non-negative")
        self.max_size = max_size
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._lifetime_hits = 0
        self._lifetime_misses = 0
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self.max_size > 0

    def get(self, key: Hashable) -> Any | None:
        try:
            fault_point("cache.get", backend="memory")
        except InjectedFault:
            # The cache contract is best-effort: a failing backend is a
            # miss, never an error — the evaluation recomputes.
            with self._lock:
                self._misses += 1
            return None
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                obs_metrics.incr("cache.misses", backend="memory")
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            obs_metrics.incr("cache.hits", backend="memory")
            return entry

    def put(self, key: Hashable, value: Any) -> None:
        if not self.enabled:
            return
        try:
            fault_point("cache.put", backend="memory")
        except InjectedFault:
            return  # best-effort store: a failing backend drops the entry
        evicted = 0
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_size:
                self._entries.popitem(last=False)
                evicted += 1
        if evicted:
            obs_metrics.incr("cache.evictions", evicted, backend="memory")

    def clear(self) -> None:
        """Drop every entry and reset the current-epoch counters.

        ``hit_rate`` after a clear describes the new workload, not the
        previous one; the pre-clear counters stay visible through
        ``lifetime_stats``.
        """
        with self._lock:
            self._entries.clear()
            self._lifetime_hits += self._hits
            self._lifetime_misses += self._misses
            self._hits = 0
            self._misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                size=len(self._entries),
                max_size=self.max_size,
            )

    @property
    def lifetime_stats(self) -> CacheStats:
        """Counters accumulated across every ``clear()`` since creation."""
        with self._lock:
            return CacheStats(
                hits=self._lifetime_hits + self._hits,
                misses=self._lifetime_misses + self._misses,
                size=len(self._entries),
                max_size=self.max_size,
            )


#: Historical name of the in-memory backend; kept as the default and for
#: the many call sites (and third-party code) created before the
#: :class:`CacheBackend` split.
ResultCache = MemoryCacheBackend


class DiskCacheBackend(CacheBackend):
    """A persistent result cache: one pickle file per entry.

    Results survive across sessions and *processes* — two engines (or
    two interpreter runs) pointed at the same directory share entries,
    which is safe because keys are content fingerprints: the same key
    can only ever name the same (query, database, strategy, semantics,
    options) evaluation, so no invalidation semantics change relative to
    the in-memory backend.

    Layout: ``<path>/<sha256 of the canonical key>.pkl``.  Writes go
    through a temporary file and ``os.replace`` so concurrent readers
    (other processes included) never observe a torn entry.  Eviction is
    LRU by file modification time, enforced at ``put`` when the entry
    count exceeds ``max_entries``; ``get`` touches the file's mtime.

    Hit/miss counters are in-process (two processes each see their own
    ``stats``); sizes are read from the directory, so they reflect other
    writers.
    """

    def __init__(self, path: str | os.PathLike, max_entries: int = 4096):
        if max_entries < 0:
            raise ValueError("cache size must be non-negative")
        self.path = Path(path)
        self.max_entries = max_entries
        self.path.mkdir(parents=True, exist_ok=True)
        self._hits = 0
        self._misses = 0
        self._lifetime_hits = 0
        self._lifetime_misses = 0
        self._lock = threading.Lock()
        # Approximate entry count, so the common put() stays O(1): the
        # directory is only listed when this estimate crosses the cap
        # (other processes writing concurrently make any count
        # approximate anyway; eviction re-counts exactly when it runs).
        self._approx_count: int | None = None

    @property
    def enabled(self) -> bool:
        return self.max_entries > 0

    # ------------------------------------------------------------------
    # Key → file mapping
    # ------------------------------------------------------------------
    def _entry_path(self, key: Hashable) -> Path:
        # Engine keys are nested tuples of canonical strings (query and
        # database fingerprints, strategy/semantics names, rendered
        # options), so their repr is stable across processes.
        digest = hashlib.sha256(repr(key).encode("utf-8")).hexdigest()
        return self.path / f"{digest}.pkl"

    def _entry_files(self) -> list[Path]:
        try:
            return [p for p in self.path.iterdir() if p.suffix == ".pkl"]
        except OSError:
            return []

    # ------------------------------------------------------------------
    # CacheBackend surface
    # ------------------------------------------------------------------
    def get(self, key: Hashable) -> Any | None:
        entry = self._entry_path(key)
        try:
            fault_point("cache.get", backend="disk")
            payload = entry.read_bytes()
            value = pickle.loads(payload)
        except InjectedFault:
            with self._lock:
                self._misses += 1
            return None
        except (OSError, pickle.PickleError, EOFError, AttributeError, ImportError):
            # Missing, torn, or written by an incompatible version
            # (including classes whose module has moved or vanished):
            # every one of these is a miss, never an error.
            with self._lock:
                self._misses += 1
            obs_metrics.incr("cache.misses", backend="disk")
            return None
        try:
            os.utime(entry)  # LRU touch; best-effort
        except OSError:
            pass
        with self._lock:
            self._hits += 1
        obs_metrics.incr("cache.hits", backend="disk")
        return value

    def put(self, key: Hashable, value: Any) -> None:
        if not self.enabled:
            return
        entry = self._entry_path(key)
        try:
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except (pickle.PickleError, TypeError, AttributeError):
            return  # unpicklable results simply stay uncached
        tmp_name = None
        try:
            fault_point("cache.put", backend="disk")
            fd, tmp_name = tempfile.mkstemp(dir=self.path, suffix=".tmp")
            with os.fdopen(fd, "wb") as tmp:
                tmp.write(payload)
            fresh = not entry.exists()
            os.replace(tmp_name, entry)
            tmp_name = None
        except (OSError, InjectedFault):
            return
        finally:
            if tmp_name is not None:  # replace failed: don't leak the temp
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
        with self._lock:
            if self._approx_count is None:
                self._approx_count = len(self._entry_files())
            elif fresh:
                self._approx_count += 1
            over = self._approx_count > self.max_entries
        if over:
            self._evict()

    def _evict(self) -> None:
        files = self._entry_files()
        excess = len(files) - self.max_entries
        if excess > 0:
            def mtime(path: Path) -> float:
                try:
                    return path.stat().st_mtime
                except OSError:
                    return 0.0

            evicted = 0
            for stale in sorted(files, key=mtime)[:excess]:
                try:
                    stale.unlink()
                    evicted += 1
                except OSError:
                    pass
            if evicted:
                obs_metrics.incr("cache.evictions", evicted, backend="disk")
        with self._lock:
            self._approx_count = min(len(files), self.max_entries)

    def clear(self) -> None:
        for entry in self._entry_files():
            try:
                entry.unlink()
            except OSError:
                pass
        # Sweep temp files orphaned by writers that died mid-put.
        for stale in self.path.glob("*.tmp"):
            try:
                stale.unlink()
            except OSError:
                pass
        with self._lock:
            self._approx_count = 0
            self._lifetime_hits += self._hits
            self._lifetime_misses += self._misses
            self._hits = 0
            self._misses = 0

    def __len__(self) -> int:
        return len(self._entry_files())

    def _stats(self, hits: int, misses: int) -> CacheStats:
        return CacheStats(
            hits=hits,
            misses=misses,
            size=len(self._entry_files()),
            max_size=self.max_entries,
        )

    @property
    def stats(self) -> CacheStats:
        with self._lock:
            return self._stats(self._hits, self._misses)

    @property
    def lifetime_stats(self) -> CacheStats:
        with self._lock:
            return self._stats(
                self._lifetime_hits + self._hits,
                self._lifetime_misses + self._misses,
            )


class NamespacedCacheBackend(CacheBackend):
    """A namespaced *view* of another backend, for multi-tenant isolation.

    Every key is wrapped as ``("ns", namespace, key)`` before it reaches
    the underlying backend, so two views with different namespaces can
    never observe each other's entries — even for identical (query,
    database, strategy, semantics, options) fingerprints.  This is how
    :mod:`repro.server` gives each tenant a private slice of one shared
    backend (memory, disk, or shared-memory alike: the wrapped key's
    ``repr`` is what keyed-by-digest backends hash, so the namespace
    lands in the digest).

    Hit/miss counters are kept per view, so a tenant's ``stats`` reflect
    that tenant's workload only; ``size``/``max_size`` mirror the shared
    underlying backend.  ``clear()`` clears the **whole** underlying
    backend (per-namespace deletion is not expressible through the
    ``CacheBackend`` surface) — servers should therefore not expose it
    to tenants.
    """

    def __init__(self, backend: CacheBackend, namespace: str):
        self.backend = backend
        self.namespace = str(namespace)
        self._hits = 0
        self._misses = 0
        self._lifetime_hits = 0
        self._lifetime_misses = 0
        self._lock = threading.Lock()

    def _wrap(self, key: Hashable) -> Hashable:
        return ("ns", self.namespace, key)

    @property
    def enabled(self) -> bool:
        return self.backend.enabled

    def get(self, key: Hashable) -> Any | None:
        value = self.backend.get(self._wrap(key))
        with self._lock:
            if value is None:
                self._misses += 1
            else:
                self._hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        self.backend.put(self._wrap(key), value)

    def clear(self) -> None:
        self.backend.clear()
        with self._lock:
            self._lifetime_hits += self._hits
            self._lifetime_misses += self._misses
            self._hits = 0
            self._misses = 0

    def __len__(self) -> int:
        return len(self.backend)

    def _stats(self, hits: int, misses: int) -> CacheStats:
        underlying = self.backend.stats
        return CacheStats(
            hits=hits, misses=misses, size=underlying.size, max_size=underlying.max_size
        )

    @property
    def stats(self) -> CacheStats:
        with self._lock:
            return self._stats(self._hits, self._misses)

    @property
    def lifetime_stats(self) -> CacheStats:
        with self._lock:
            return self._stats(
                self._lifetime_hits + self._hits,
                self._lifetime_misses + self._misses,
            )


def resolve_cache_backend(cache: Any, *, cache_size: int = 256) -> CacheBackend:
    """Turn an engine's ``cache=`` argument into a backend instance.

    * ``None`` or ``"memory"`` — a fresh :class:`MemoryCacheBackend`
      holding ``cache_size`` entries;
    * ``"disk:<path>"`` — a :class:`DiskCacheBackend` on that directory;
    * ``"shm:<name>"`` — a
      :class:`~repro.engine.shm_cache.SharedMemoryCacheBackend` whose
      segments share the ``<name>`` prefix, so results cross process
      boundaries without touching disk;
    * an object implementing the :class:`CacheBackend` surface — used
      as-is.  Duck typing is fine (no subclassing required), but the
      engine touches more than ``get``/``put``, so the full surface is
      validated here: a missing method fails now, with a message naming
      it, instead of as an ``AttributeError`` mid-evaluation.
    """
    if cache is None or cache == "memory":
        return MemoryCacheBackend(cache_size)
    if isinstance(cache, str):
        if cache.startswith("disk:"):
            path = cache[len("disk:"):]
            if not path:
                raise EngineError(
                    "cache='disk:' needs a directory, e.g. 'disk:/tmp/repro-cache'"
                )
            return DiskCacheBackend(path)
        if cache.startswith("shm:"):
            name = cache[len("shm:"):]
            if not name:
                raise EngineError(
                    "cache='shm:' needs a segment-name prefix, e.g. 'shm:repro'"
                )
            from .shm_cache import SharedMemoryCacheBackend

            return SharedMemoryCacheBackend(name, max_entries=cache_size)
        raise EngineError(
            f"unknown cache spec {cache!r}; expected 'memory', 'disk:<path>', "
            "'shm:<name>', or a CacheBackend instance"
        )
    required = ("get", "put", "clear", "enabled", "stats")
    if hasattr(cache, "get") and hasattr(cache, "put"):
        missing = [attr for attr in required if not hasattr(cache, attr)]
        if missing:
            raise EngineError(
                f"cache backend {type(cache).__name__} is missing "
                f"{'/'.join(missing)}; implement the full "
                "repro.engine.CacheBackend surface (get/put/clear/"
                "enabled/stats), e.g. by subclassing it"
            )
        return cache
    raise EngineError(
        f"cannot use {cache!r} as a result cache; expected 'memory', "
        "'disk:<path>', or an object with get/put/clear/enabled/stats"
    )


def canonical_value(value: Any) -> str:
    """A canonical, type-tagged rendering of a database value.

    Used by the fingerprints below and by the hash partitioner of
    :mod:`repro.sharding`, which needs a rendering that is stable across
    processes (``hash()`` of strings is salted per interpreter).
    """
    if isinstance(value, Null):
        return f"null:{value.label!r}"
    return f"{type(value).__name__}:{value!r}"


def canonical_option_value(value: Any) -> str:
    """A stable rendering of one strategy-option value for cache keys.

    ``repr`` is not stable for arbitrary objects — the default
    ``<Foo object at 0x7f...>`` form renders the *address*, so identical
    calls never hit the cache, and once the address is reused two
    different objects can collide into a false hit.  This renderer walks
    the allowlisted shapes (scalars, nulls, enums, sequences, sets,
    mappings) through :func:`canonical_value` and refuses anything else.

    Raises :class:`~repro.engine.errors.EngineError` for values it
    cannot render stably; pass primitives/containers, or disable caching
    with ``use_cache=False`` for exotic option objects.
    """
    if value is None:
        return "none"
    if isinstance(value, (Null, bool, int, float, complex, str, bytes)):
        return canonical_value(value)
    if isinstance(value, enum.Enum):
        return f"enum:{type(value).__qualname__}.{value.name}"
    if isinstance(value, (list, tuple)):
        rendered = ",".join(canonical_option_value(item) for item in value)
        return f"seq:[{rendered}]"
    if isinstance(value, (set, frozenset)):
        rendered = ",".join(sorted(canonical_option_value(item) for item in value))
        return f"set:{{{rendered}}}"
    if isinstance(value, Mapping):
        items = sorted(
            (canonical_option_value(k), canonical_option_value(v))
            for k, v in value.items()
        )
        rendered = ",".join(f"{k}={v}" for k, v in items)
        return f"map:{{{rendered}}}"
    raise EngineError(
        f"cannot build a stable cache key from option value {value!r} of type "
        f"{type(value).__name__}; pass a primitive/container value or disable "
        "caching with use_cache=False"
    )


def canonical_options(options: Mapping[str, Any]) -> tuple[tuple[str, str], ...]:
    """Strategy options as a sorted, canonically rendered, hashable tuple."""
    return tuple(
        sorted((name, canonical_option_value(value)) for name, value in options.items())
    )


def evaluation_cache_key(
    query_fp: str,
    database_fp: str,
    strategy: str,
    semantics: str,
    options: Mapping[str, Any],
) -> Hashable:
    """The result-cache key of one monolithic evaluation.

    Shared by :class:`~repro.engine.core.Engine` and
    :class:`~repro.engine.aio.AsyncEngine`, so the sync and async twins
    interoperate on one cache.
    """
    return (query_fp, database_fp, strategy, semantics, canonical_options(options))


def relation_fingerprint(relation: Relation) -> str:
    """A stable content hash of one relation (attributes, rows, counts)."""
    hasher = hashlib.sha1()
    hasher.update(f"attributes:{relation.attributes!r}\n".encode("utf-8"))
    rows = sorted(
        (
            tuple(canonical_value(v) for v in row),
            count,
        )
        for row, count in relation.iter_rows(with_multiplicity=True)
    )
    for row, count in rows:
        hasher.update(f"{row!r}*{count}\n".encode("utf-8"))
    return hasher.hexdigest()


def database_fingerprint(database: Database) -> str:
    """A stable content hash of a database instance.

    Each relation is digested separately and combined under its
    ``repr``-escaped name.  The escaping matters: hashing raw names lets
    a crafted relation name containing newlines forge the boundary
    between two relations, so two different databases collide (a bug
    surfaced by the sharding fingerprint tests).  Digest-per-relation
    also lets :class:`~repro.sharding.ShardedDatabase` reuse cached
    per-fragment digests.
    """
    hasher = hashlib.sha1()
    for name in sorted(database.relation_names()):
        fingerprint = relation_fingerprint(database[name])
        hasher.update(f"relation:{name!r}:{fingerprint}\n".encode("utf-8"))
    return hasher.hexdigest()
