"""The per-session result cache and the database fingerprint.

Results are cached under ``(query fingerprint, database fingerprint,
strategy, semantics, options)``.  Databases carry no version counter, so
the fingerprint is a content hash: a canonical serialisation of every
relation (name, attributes, rows with multiplicities, nulls rendered by
label).  Hashing is linear in the data but orders of magnitude cheaper
than any of the evaluation strategies; sessions additionally memoise the
fingerprint of their bound database so repeated calls pay it once.

This cache is the designated hook for the scaling work on the ROADMAP
(shared backends, cross-session memoisation, async prefetching): those
only need to supply a different :class:`ResultCache`-shaped object.
"""

from __future__ import annotations

import enum
import hashlib
import threading
from collections import OrderedDict
from collections.abc import Mapping
from dataclasses import dataclass
from typing import Any, Hashable

from ..datamodel.database import Database
from ..datamodel.relation import Relation
from ..datamodel.values import Null
from .errors import EngineError

__all__ = [
    "CacheStats",
    "ResultCache",
    "canonical_value",
    "canonical_option_value",
    "canonical_options",
    "evaluation_cache_key",
    "relation_fingerprint",
    "database_fingerprint",
]


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss counters of a :class:`ResultCache`."""

    hits: int
    misses: int
    size: int
    max_size: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ResultCache:
    """A small LRU cache mapping evaluation keys to results.

    The cache is thread-safe: ``get``/``put``/``clear`` and the stats
    views take an internal lock, so it can be shared by the thread shard
    executor and by :class:`~repro.engine.aio.AsyncEngine` worker
    callbacks without corrupting the LRU order or losing counter
    updates.  ``stats`` covers the current epoch (reset by ``clear``);
    ``lifetime_stats`` accumulates across clears.
    """

    def __init__(self, max_size: int = 256):
        if max_size < 0:
            raise ValueError("cache size must be non-negative")
        self.max_size = max_size
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._lifetime_hits = 0
        self._lifetime_misses = 0
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self.max_size > 0

    def get(self, key: Hashable) -> Any | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return entry

    def put(self, key: Hashable, value: Any) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_size:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry and reset the current-epoch counters.

        ``hit_rate`` after a clear describes the new workload, not the
        previous one; the pre-clear counters stay visible through
        ``lifetime_stats``.
        """
        with self._lock:
            self._entries.clear()
            self._lifetime_hits += self._hits
            self._lifetime_misses += self._misses
            self._hits = 0
            self._misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                size=len(self._entries),
                max_size=self.max_size,
            )

    @property
    def lifetime_stats(self) -> CacheStats:
        """Counters accumulated across every ``clear()`` since creation."""
        with self._lock:
            return CacheStats(
                hits=self._lifetime_hits + self._hits,
                misses=self._lifetime_misses + self._misses,
                size=len(self._entries),
                max_size=self.max_size,
            )


def canonical_value(value: Any) -> str:
    """A canonical, type-tagged rendering of a database value.

    Used by the fingerprints below and by the hash partitioner of
    :mod:`repro.sharding`, which needs a rendering that is stable across
    processes (``hash()`` of strings is salted per interpreter).
    """
    if isinstance(value, Null):
        return f"null:{value.label!r}"
    return f"{type(value).__name__}:{value!r}"


def canonical_option_value(value: Any) -> str:
    """A stable rendering of one strategy-option value for cache keys.

    ``repr`` is not stable for arbitrary objects — the default
    ``<Foo object at 0x7f...>`` form renders the *address*, so identical
    calls never hit the cache, and once the address is reused two
    different objects can collide into a false hit.  This renderer walks
    the allowlisted shapes (scalars, nulls, enums, sequences, sets,
    mappings) through :func:`canonical_value` and refuses anything else.

    Raises :class:`~repro.engine.errors.EngineError` for values it
    cannot render stably; pass primitives/containers, or disable caching
    with ``use_cache=False`` for exotic option objects.
    """
    if value is None:
        return "none"
    if isinstance(value, (Null, bool, int, float, complex, str, bytes)):
        return canonical_value(value)
    if isinstance(value, enum.Enum):
        return f"enum:{type(value).__qualname__}.{value.name}"
    if isinstance(value, (list, tuple)):
        rendered = ",".join(canonical_option_value(item) for item in value)
        return f"seq:[{rendered}]"
    if isinstance(value, (set, frozenset)):
        rendered = ",".join(sorted(canonical_option_value(item) for item in value))
        return f"set:{{{rendered}}}"
    if isinstance(value, Mapping):
        items = sorted(
            (canonical_option_value(k), canonical_option_value(v))
            for k, v in value.items()
        )
        rendered = ",".join(f"{k}={v}" for k, v in items)
        return f"map:{{{rendered}}}"
    raise EngineError(
        f"cannot build a stable cache key from option value {value!r} of type "
        f"{type(value).__name__}; pass a primitive/container value or disable "
        "caching with use_cache=False"
    )


def canonical_options(options: Mapping[str, Any]) -> tuple[tuple[str, str], ...]:
    """Strategy options as a sorted, canonically rendered, hashable tuple."""
    return tuple(
        sorted((name, canonical_option_value(value)) for name, value in options.items())
    )


def evaluation_cache_key(
    query_fp: str,
    database_fp: str,
    strategy: str,
    semantics: str,
    options: Mapping[str, Any],
) -> Hashable:
    """The result-cache key of one monolithic evaluation.

    Shared by :class:`~repro.engine.core.Engine` and
    :class:`~repro.engine.aio.AsyncEngine`, so the sync and async twins
    interoperate on one cache.
    """
    return (query_fp, database_fp, strategy, semantics, canonical_options(options))


def relation_fingerprint(relation: Relation) -> str:
    """A stable content hash of one relation (attributes, rows, counts)."""
    hasher = hashlib.sha1()
    hasher.update(f"attributes:{relation.attributes!r}\n".encode("utf-8"))
    rows = sorted(
        (
            tuple(canonical_value(v) for v in row),
            count,
        )
        for row, count in relation.iter_rows(with_multiplicity=True)
    )
    for row, count in rows:
        hasher.update(f"{row!r}*{count}\n".encode("utf-8"))
    return hasher.hexdigest()


def database_fingerprint(database: Database) -> str:
    """A stable content hash of a database instance.

    Each relation is digested separately and combined under its
    ``repr``-escaped name.  The escaping matters: hashing raw names lets
    a crafted relation name containing newlines forge the boundary
    between two relations, so two different databases collide (a bug
    surfaced by the sharding fingerprint tests).  Digest-per-relation
    also lets :class:`~repro.sharding.ShardedDatabase` reuse cached
    per-fragment digests.
    """
    hasher = hashlib.sha1()
    for name in sorted(database.relation_names()):
        fingerprint = relation_fingerprint(database[name])
        hasher.update(f"relation:{name!r}:{fingerprint}\n".encode("utf-8"))
    return hasher.hexdigest()
