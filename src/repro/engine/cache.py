"""The per-session result cache and the database fingerprint.

Results are cached under ``(query fingerprint, database fingerprint,
strategy, semantics, options)``.  Databases carry no version counter, so
the fingerprint is a content hash: a canonical serialisation of every
relation (name, attributes, rows with multiplicities, nulls rendered by
label).  Hashing is linear in the data but orders of magnitude cheaper
than any of the evaluation strategies; sessions additionally memoise the
fingerprint of their bound database so repeated calls pay it once.

This cache is the designated hook for the scaling work on the ROADMAP
(shared backends, cross-session memoisation, async prefetching): those
only need to supply a different :class:`ResultCache`-shaped object.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable

from ..datamodel.database import Database
from ..datamodel.relation import Relation
from ..datamodel.values import Null

__all__ = [
    "CacheStats",
    "ResultCache",
    "canonical_value",
    "relation_fingerprint",
    "database_fingerprint",
]


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss counters of a :class:`ResultCache`."""

    hits: int
    misses: int
    size: int
    max_size: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ResultCache:
    """A small LRU cache mapping evaluation keys to results."""

    def __init__(self, max_size: int = 256):
        if max_size < 0:
            raise ValueError("cache size must be non-negative")
        self.max_size = max_size
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._hits = 0
        self._misses = 0

    @property
    def enabled(self) -> bool:
        return self.max_size > 0

    def get(self, key: Hashable) -> Any | None:
        entry = self._entries.get(key)
        if entry is None:
            self._misses += 1
            return None
        self._entries.move_to_end(key)
        self._hits += 1
        return entry

    def put(self, key: Hashable, value: Any) -> None:
        if not self.enabled:
            return
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_size:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def stats(self) -> CacheStats:
        return CacheStats(
            hits=self._hits,
            misses=self._misses,
            size=len(self._entries),
            max_size=self.max_size,
        )


def canonical_value(value: Any) -> str:
    """A canonical, type-tagged rendering of a database value.

    Used by the fingerprints below and by the hash partitioner of
    :mod:`repro.sharding`, which needs a rendering that is stable across
    processes (``hash()`` of strings is salted per interpreter).
    """
    if isinstance(value, Null):
        return f"null:{value.label!r}"
    return f"{type(value).__name__}:{value!r}"


def relation_fingerprint(relation: Relation) -> str:
    """A stable content hash of one relation (attributes, rows, counts)."""
    hasher = hashlib.sha1()
    hasher.update(f"attributes:{relation.attributes!r}\n".encode("utf-8"))
    rows = sorted(
        (
            tuple(canonical_value(v) for v in row),
            count,
        )
        for row, count in relation.iter_rows(with_multiplicity=True)
    )
    for row, count in rows:
        hasher.update(f"{row!r}*{count}\n".encode("utf-8"))
    return hasher.hexdigest()


def database_fingerprint(database: Database) -> str:
    """A stable content hash of a database instance.

    Each relation is digested separately and combined under its
    ``repr``-escaped name.  The escaping matters: hashing raw names lets
    a crafted relation name containing newlines forge the boundary
    between two relations, so two different databases collide (a bug
    surfaced by the sharding fingerprint tests).  Digest-per-relation
    also lets :class:`~repro.sharding.ShardedDatabase` reuse cached
    per-fragment digests.
    """
    hasher = hashlib.sha1()
    for name in sorted(database.relation_names()):
        fingerprint = relation_fingerprint(database[name])
        hasher.update(f"relation:{name!r}:{fingerprint}\n".encode("utf-8"))
    return hasher.hexdigest()
