"""Exceptions raised by the evaluation engine façade."""

from __future__ import annotations

__all__ = [
    "EngineError",
    "UnknownStrategyError",
    "StrategyNotApplicableError",
    "NormalizationError",
]


class EngineError(ValueError):
    """Base class of all engine-level errors."""


class UnknownStrategyError(EngineError):
    """Raised when a strategy name is not in the registry."""

    def __init__(self, name: str, available: tuple[str, ...]):
        self.name = name
        self.available = available
        super().__init__(
            f"unknown evaluation strategy {name!r}; "
            f"registered strategies: {', '.join(available)}"
        )

    def __reduce__(self):
        # BaseException pickles via ``args`` (here: the formatted
        # message), which does not round-trip through this two-argument
        # __init__.  The error must survive a worker-process boundary —
        # run_engine_task/run_shard_task resolve strategies by name in
        # the worker — or the unpickle failure breaks the whole pool.
        return (type(self), (self.name, self.available))


class StrategyNotApplicableError(EngineError):
    """Raised when a strategy cannot evaluate the given query form.

    Every frontend (SQL text, relational algebra, relational calculus) is
    accepted by the engine, but not every strategy can consume every
    lowered form — e.g. the Figure 2 translations need a relational
    algebra plan, and SQL-semantics evaluation needs either an SQL AST or
    an FO formula.  The message says which form is missing and how to
    provide it.
    """


class NormalizationError(EngineError):
    """Raised when an input query cannot be recognised as any frontend."""
