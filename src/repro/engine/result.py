"""The unified result type returned by every evaluation strategy.

A :class:`QueryResult` replaces the per-module return shapes of the old
entry points (bare :class:`~repro.datamodel.relation.Relation` objects,
:class:`~repro.approx.libkin16.CertainFalsePair`,
:class:`~repro.ctables.strategies.StrategyResult`, ...): whatever the
strategy, callers get the same object carrying

* the primary answer relation (what the strategy *asserts*),
* per-tuple certainty annotations (:class:`Certainty`),
* the auxiliary answer sets a strategy may produce (certain, possible,
  certainly-false),
* strategy metadata and wall-clock timing, and
* cache provenance (``from_cache``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Any, Iterator, Mapping

from ..datamodel.relation import Relation

__all__ = ["Certainty", "AnnotatedTuple", "QueryResult"]


class Certainty(str, Enum):
    """Per-tuple certainty status.

    * ``CERTAIN`` — the tuple is in the answer in every possible world
      (or the strategy guarantees soundness for the tuples it reports).
    * ``POSSIBLE`` — the tuple is in the answer in at least one world
      (or the strategy cannot rule it out), but is not known certain.
    * ``FALSE_POSITIVE`` — the tuple would be reported by naïve/SQL
      evaluation yet is certainly *not* an answer (the paper's
      "false positive" answers of Section 1).
    * ``UNKNOWN`` — the strategy makes no certainty claim (SQL's
      three-valued evaluation on incomplete data).
    """

    CERTAIN = "certain"
    POSSIBLE = "possible"
    FALSE_POSITIVE = "false-positive"
    UNKNOWN = "unknown"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class AnnotatedTuple:
    """One answer tuple with its certainty status and bag multiplicity."""

    row: tuple
    status: Certainty
    multiplicity: int = 1


@dataclass(frozen=True)
class QueryResult:
    """The outcome of one ``Engine.evaluate`` call.

    ``relation`` is the strategy's primary answer; ``tuples`` annotates
    every row the strategy can say something about (which may include
    rows *outside* the primary answer, e.g. false positives).
    """

    strategy: str
    semantics: str
    relation: Relation
    tuples: tuple[AnnotatedTuple, ...] = ()
    certain: Relation | None = None
    possible: Relation | None = None
    certainly_false: Relation | None = None
    elapsed: float = 0.0
    from_cache: bool = False
    fingerprint: str = ""
    metadata: Mapping[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Relation-like access to the primary answer
    # ------------------------------------------------------------------
    @property
    def attributes(self) -> tuple[str, ...]:
        return self.relation.attributes

    def rows_set(self) -> frozenset:
        return self.relation.rows_set()

    def sorted_rows(self) -> list[tuple]:
        return self.relation.sorted_rows()

    def __len__(self) -> int:
        return len(self.relation)

    def __bool__(self) -> bool:
        return bool(self.relation)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.relation)

    def __contains__(self, row) -> bool:
        return row in self.relation

    # ------------------------------------------------------------------
    # Certainty views
    # ------------------------------------------------------------------
    def rows_with_status(self, status: Certainty) -> frozenset:
        return frozenset(t.row for t in self.tuples if t.status is status)

    def certain_rows(self) -> frozenset:
        return self.rows_with_status(Certainty.CERTAIN)

    def possible_rows(self) -> frozenset:
        """Rows that might be answers: certain ∪ possible-but-not-certain."""
        return self.certain_rows() | self.rows_with_status(Certainty.POSSIBLE)

    def false_positive_rows(self) -> frozenset:
        return self.rows_with_status(Certainty.FALSE_POSITIVE)

    def status_of(self, row) -> Certainty | None:
        """The annotation of ``row``, or None if the strategy said nothing."""
        row = tuple(row)
        for annotated in self.tuples:
            if annotated.row == row:
                return annotated.status
        return None

    # ------------------------------------------------------------------
    # Comparison and display
    # ------------------------------------------------------------------
    def same_answers_as(self, other: "QueryResult", *, bag: bool = False) -> bool:
        """Do two results carry the same primary answer (ignoring timing)?

        Attribute names may legitimately differ across frontends (an FO
        query names columns after its free variables), so only row
        contents are compared; with ``bag=True`` multiplicities too.
        """
        return self.relation.same_rows_as(other.relation, bag=bag)

    def as_cached(self) -> "QueryResult":
        """A copy of this result marked as served from the cache."""
        return replace(self, from_cache=True)

    def explain(self) -> str:
        """The EXPLAIN report for this result (:mod:`repro.obs.explain`).

        Includes the span tree when the evaluation ran with
        ``trace=True`` (or via ``session.explain()``); without one, the
        report still shows the plan/backend/sharding/resilience notes.
        """
        from ..obs.explain import render_explain

        return render_explain(self)

    def summary(self) -> str:
        """A one-line description used by the benchmark tables."""
        parts = [
            f"{self.strategy}: {len(self.relation)} rows",
            f"{len(self.certain_rows())} certain",
        ]
        possible_only = self.rows_with_status(Certainty.POSSIBLE)
        if possible_only:
            parts.append(f"{len(possible_only)} possible")
        false_positives = self.false_positive_rows()
        if false_positives:
            parts.append(f"{len(false_positives)} false-positive")
        parts.append(f"{self.elapsed * 1000:.2f} ms" + (" (cached)" if self.from_cache else ""))
        return ", ".join(parts)

    def to_text(self, max_rows: int | None = 20) -> str:
        """The primary answer as a table, with a certainty column when known."""
        if not self.tuples:
            return self.relation.to_text(max_rows=max_rows)
        status_by_row = {t.row: t.status.value for t in self.tuples}
        annotated = Relation(
            self.relation.attributes + ("status",),
            [row + (status_by_row.get(row, "?"),) for row in self.relation.sorted_rows()],
        )
        extra = [
            row + (status_by_row[row],)
            for row in sorted(status_by_row, key=str)
            if row not in self.relation and status_by_row[row] == Certainty.FALSE_POSITIVE.value
        ]
        if extra:
            annotated = annotated.add_rows(extra)
        return annotated.to_text(max_rows=max_rows)
