"""Benchmark harness helpers."""

from .harness import ResultTable, relative_overhead, strategy_table, time_call

__all__ = ["ResultTable", "time_call", "relative_overhead", "strategy_table"]
