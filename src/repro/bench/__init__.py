"""Benchmark harness helpers."""

from .harness import ResultTable, relative_overhead, strategy_table, time_call
from .results import BenchReport, bench_env, median

__all__ = [
    "BenchReport",
    "ResultTable",
    "bench_env",
    "median",
    "relative_overhead",
    "strategy_table",
    "time_call",
]
