"""Benchmark harness helpers."""

from .harness import ResultTable, relative_overhead, time_call

__all__ = ["ResultTable", "time_call", "relative_overhead"]
