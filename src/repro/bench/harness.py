"""Benchmark harness utilities: result tables rendered as text.

The benchmark scripts under ``benchmarks/`` measure timings with
pytest-benchmark; the *shape* results the paper reports (who wins, by
what factor, where recall degrades) are collected into
:class:`ResultTable` objects and printed, so a run of the benchmark
suite regenerates the qualitative rows of each experiment.

:func:`strategy_table` bridges the harness to the engine façade: it
renders a mapping of strategy name → :class:`~repro.engine.QueryResult`
(as produced by ``Engine.compare`` / ``Session.compare``) as one table
row per strategy, which is how the examples and the engine benchmarks
report their comparisons.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

__all__ = ["ResultTable", "time_call", "relative_overhead", "strategy_table"]


@dataclass
class ResultTable:
    """A small column-oriented result table with text rendering."""

    title: str
    columns: tuple[str, ...]
    rows: list[tuple] = field(default_factory=list)

    def __init__(self, title: str, columns: Sequence[str]):
        self.title = title
        self.columns = tuple(columns)
        self.rows = []

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append(tuple(values))

    def to_text(self) -> str:
        rendered = [[str(c) for c in self.columns]] + [
            [_format(v) for v in row] for row in self.rows
        ]
        widths = [max(len(row[i]) for row in rendered) for i in range(len(self.columns))]
        lines = [self.title, "=" * len(self.title)]
        for i, row in enumerate(rendered):
            lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip())
            if i == 0:
                lines.append("  ".join("-" * width for width in widths))
        return "\n".join(lines)

    def print(self) -> None:
        print()
        print(self.to_text())


def _format(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def time_call(func: Callable[[], Any], repeat: int = 3) -> tuple[float, Any]:
    """Best-of-``repeat`` wall-clock time of ``func()`` plus its last result."""
    best = float("inf")
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = func()
        best = min(best, time.perf_counter() - start)
    return best, result


def relative_overhead(baseline_seconds: float, rewritten_seconds: float) -> float:
    """Percentage overhead of the rewritten query over the baseline."""
    if baseline_seconds <= 0:
        return 0.0
    return (rewritten_seconds - baseline_seconds) / baseline_seconds * 100.0


def strategy_table(title: str, results: Mapping[str, Any]) -> ResultTable:
    """Render ``{strategy: QueryResult}`` (from ``Engine.compare``) as a table.

    One row per strategy: answer size, how many answers are certain /
    merely possible / flagged false-positive, and the wall-clock time.
    """
    table = ResultTable(
        title, ["strategy", "rows", "certain", "possible", "false+", "time (ms)"]
    )
    for name in sorted(results):
        result = results[name]
        possible_only = result.possible_rows() - result.certain_rows()
        elapsed = f"{result.elapsed * 1000:.3g}"
        if result.from_cache:
            elapsed += " (cached)"
        table.add_row(
            name,
            len(result),
            len(result.certain_rows()),
            len(possible_only),
            len(result.false_positive_rows()),
            elapsed,
        )
    return table
