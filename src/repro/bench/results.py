"""Machine-readable benchmark results: ``BENCH_<name>.json`` emission.

The benchmark scripts print :class:`~repro.bench.harness.ResultTable`
text for humans; this module captures the same numbers for machines.
Each experiment builds one :class:`BenchReport`, records measurement
rows (label + numeric fields such as median milliseconds or a speedup
factor) and derived summary values, then :meth:`BenchReport.write`\\ s a
``BENCH_<name>.json`` file next to the run.  CI uploads the files as an
artifact so regressions are diffable across runs, not just eyeballable
in the log.

The schema is deliberately flat and stable::

    {
      "name": "backend",
      "smoke": false,
      "env": {"python": "3.12.3", "platform": "...", "cpus": 8,
              "timestamp": "2026-08-08T12:00:00+00:00"},
      "rows": [{"label": "naive", "interpreter_ms": 812.1, ...}, ...],
      "summary": {"speedup_naive": 12.3, ...}
    }

Everything here is stdlib-only, like the rest of the harness.  The
pytest side of the suite reaches this through the ``bench_report``
fixture in ``benchmarks/conftest.py``; script-mode entry points build a
:class:`BenchReport` directly.
"""

from __future__ import annotations

import datetime as _dt
import json
import os
import platform
import sys
from pathlib import Path
from typing import Any, Sequence

__all__ = ["BenchReport", "bench_env", "median"]

#: Environment variable naming the directory ``BENCH_<name>.json`` files
#: are written to; defaults to the current working directory (CI runs
#: from the repo root and uploads ``BENCH_*.json`` from there).
OUTPUT_DIR_ENV = "REPRO_BENCH_DIR"


def median(values: Sequence[float]) -> float:
    """The median of ``values`` (mean-of-middle-two on even lengths)."""
    if not values:
        raise ValueError("median of an empty sequence")
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def bench_env() -> dict[str, Any]:
    """The environment block stamped into every report."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpus": os.cpu_count(),
        "timestamp": _dt.datetime.now(_dt.timezone.utc).isoformat(timespec="seconds"),
        "argv": list(sys.argv),
    }


class BenchReport:
    """One experiment's machine-readable results.

    ``name`` becomes the file name (``BENCH_<name>.json``); ``smoke``
    records whether the CI-sized workload ran, so a smoke artifact is
    never mistaken for a full measurement.
    """

    def __init__(self, name: str, *, smoke: bool = False) -> None:
        if not name or any(c in name for c in "/\\"):
            raise ValueError(f"invalid benchmark name {name!r}")
        self.name = name
        self.smoke = smoke
        self.rows: list[dict[str, Any]] = []
        self.summary: dict[str, Any] = {}

    def record(self, label: str, **fields: Any) -> None:
        """Append one measurement row (e.g. per query or per strategy)."""
        self.rows.append({"label": label, **fields})

    def summarize(self, **fields: Any) -> None:
        """Merge derived values (medians, speedups) into the summary."""
        self.summary.update(fields)

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "smoke": self.smoke,
            "env": bench_env(),
            "rows": list(self.rows),
            "summary": dict(self.summary),
        }

    def write(self, directory: str | os.PathLike[str] | None = None) -> Path:
        """Write ``BENCH_<name>.json`` and return its path.

        ``directory`` defaults to ``$REPRO_BENCH_DIR`` or the current
        working directory.  Non-JSON-native values are stringified
        rather than rejected — a report must never fail the benchmark
        that produced it.
        """
        target = Path(directory or os.environ.get(OUTPUT_DIR_ENV) or ".")
        target.mkdir(parents=True, exist_ok=True)
        path = target / f"BENCH_{self.name}.json"
        path.write_text(
            json.dumps(self.as_dict(), indent=2, sort_keys=False, default=str) + "\n",
            encoding="utf-8",
        )
        return path
