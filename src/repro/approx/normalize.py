"""Normalisation of relational algebra into the core operators.

The approximation translations of Figure 2 are defined over the core
algebra: base relations, σ, π, ×, ∪ and −.  The convenience operators
provided by :mod:`repro.algebra.ast` are rewritten into the core here:

* ``Q1 ∩ Q2``      →  ``Q1 − (Q1 − Q2)``
* ``Q1 ⋉ Q2``      →  ``π_left(σ_join(Q1 × ρ(Q2)))``
* ``Q1 ▷ Q2``      →  ``Q1 − (Q1 ⋉ Q2)``
* ``Q1 ⋈ Q2``      →  ``π(σ_join(Q1 × ρ(Q2)))``

Division and the unification anti-semijoin are not normalised: the
former is outside the fragment the translations are defined for
(naïve evaluation already handles Pos∀G queries exactly), and the
latter only *appears* in translated queries, never in user queries.
"""

from __future__ import annotations

from ..algebra import ast as ra
from ..algebra.conditions import Attr, Eq, conjoin

__all__ = ["normalize_for_translation"]


def normalize_for_translation(query: ra.Query) -> ra.Query:
    """Rewrite convenience operators into the core algebra (recursively)."""
    return _normalize(query)


def _normalize(query: ra.Query) -> ra.Query:
    if isinstance(query, (ra.RelationRef, ra.ConstantRelation, ra.DomainRelation)):
        return query
    if isinstance(query, ra.Selection):
        return ra.Selection(_normalize(query.child), query.condition)
    if isinstance(query, ra.Projection):
        return ra.Projection(_normalize(query.child), query.attributes)
    if isinstance(query, ra.Rename):
        return ra.Rename(_normalize(query.child), query.mapping_dict())
    if isinstance(query, ra.Product):
        return ra.Product(_normalize(query.left), _normalize(query.right))
    if isinstance(query, ra.Union):
        return ra.Union(_normalize(query.left), _normalize(query.right))
    if isinstance(query, ra.Difference):
        return ra.Difference(_normalize(query.left), _normalize(query.right))
    if isinstance(query, ra.Intersection):
        left = _normalize(query.left)
        right = _normalize(query.right)
        return ra.Difference(left, ra.Difference(left, right))
    if isinstance(query, ra.UnifAntiSemiJoin):
        return ra.UnifAntiSemiJoin(_normalize(query.left), _normalize(query.right))
    if isinstance(query, ra.Division):
        return ra.Division(_normalize(query.left), _normalize(query.right))
    if isinstance(query, (ra.SemiJoin, ra.AntiSemiJoin, ra.NaturalJoin)):
        raise ValueError(
            f"{type(query).__name__} requires schema information to normalise; "
            "build the query from core operators (σ, π, ×, ∪, −) before translating"
        )
    raise ValueError(f"cannot normalise operator {type(query).__name__}")
