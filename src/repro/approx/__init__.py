"""Approximation schemes with correctness guarantees (Section 4.2, Figure 2)."""

from .normalize import normalize_for_translation
from .libkin16 import CertainFalsePair, translate_libkin16
from .guagliardo16 import CertainPossiblePair, translate_guagliardo16
from .bag_bounds import (
    MultiplicityBounds,
    approximate_multiplicity_bounds,
    certain_multiplicity_lower_bound,
    exact_multiplicity_bounds,
)
from .quality import AnswerQuality, compare_answers, evaluate_procedure

__all__ = [
    "normalize_for_translation",
    "CertainFalsePair",
    "translate_libkin16",
    "CertainPossiblePair",
    "translate_guagliardo16",
    "MultiplicityBounds",
    "exact_multiplicity_bounds",
    "approximate_multiplicity_bounds",
    "certain_multiplicity_lower_bound",
    "AnswerQuality",
    "compare_answers",
    "evaluate_procedure",
]
