"""Quality metrics for approximations of certain answers.

The SIGMOD'19 study summarised in the paper ([27], experiment E6)
compares approximation procedures against ground-truth certain answers
using precision and recall.  This module provides those metrics for any
pair of answer relations, plus a convenience routine that evaluates a
given evaluation *procedure* against exact certain answers on a small
database.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..datamodel.database import Database
from ..datamodel.relation import Relation

__all__ = ["AnswerQuality", "compare_answers", "evaluate_procedure"]


@dataclass(frozen=True)
class AnswerQuality:
    """Precision/recall of a produced answer set against the ground truth."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        """Fraction of produced answers that are correct (1.0 when nothing produced)."""
        produced = self.true_positives + self.false_positives
        return self.true_positives / produced if produced else 1.0

    @property
    def recall(self) -> float:
        """Fraction of correct answers that were produced (1.0 when nothing to find)."""
        expected = self.true_positives + self.false_negatives
        return self.true_positives / expected if expected else 1.0

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    def is_sound(self) -> bool:
        """No false positives: the produced answers are a subset of the truth."""
        return self.false_positives == 0

    def is_complete(self) -> bool:
        """No false negatives: every true answer was produced."""
        return self.false_negatives == 0

    def __str__(self) -> str:
        return (
            f"precision={self.precision:.3f} recall={self.recall:.3f} "
            f"f1={self.f1:.3f} (tp={self.true_positives}, "
            f"fp={self.false_positives}, fn={self.false_negatives})"
        )


def compare_answers(produced: Relation, ground_truth: Relation) -> AnswerQuality:
    """Compare a produced answer relation against the ground truth (set view)."""
    produced_rows = produced.rows_set()
    truth_rows = ground_truth.rows_set()
    return AnswerQuality(
        true_positives=len(produced_rows & truth_rows),
        false_positives=len(produced_rows - truth_rows),
        false_negatives=len(truth_rows - produced_rows),
    )


def evaluate_procedure(
    procedure: Callable[[object, Database], Relation],
    query,
    database: Database,
    ground_truth: Relation,
) -> AnswerQuality:
    """Run an evaluation procedure and score it against the ground truth."""
    return compare_answers(procedure(query, database), ground_truth)
