"""The (Qt, Qf) approximation scheme of [51] (Figure 2a of the paper).

A relational algebra query ``Q`` is translated into a pair of queries
``(Qt, Qf)`` such that, for every database ``D``,

* ``Qt(D) ⊆ cert⊥(Q, D)``   — tuples certainly *in* the answer, and
* ``Qf(D) ⊆ cert⊥(¬Q, D)``  — tuples certainly *not* in the answer,

(Theorem 4.6).  Both translations have AC0 data complexity, and on
complete databases ``Qt(D) = Q(D)``.

The translation rules are exactly those of Figure 2a:

====================  =============================================
``Rt = R``            ``Rf = Dom^ar(R) ⋉⇑ R``
``(Q1 ∪ Q2)t``        ``Qt1 ∪ Qt2``
``(Q1 ∪ Q2)f``        ``Qf1 ∩ Qf2``
``(Q1 − Q2)t``        ``Qt1 ∩ Qf2``
``(Q1 − Q2)f``        ``Qf1 ∪ Qt2``
``σθ(Q)t``            ``σθ*(Qt)``
``σθ(Q)f``            ``Qf ∪ σ(¬θ)*(Dom^ar(Q))``
``(Q1 × Q2)t``        ``Qt1 × Qt2``
``(Q1 × Q2)f``        ``Qf1 × Dom^ar(Q2) ∪ Dom^ar(Q1) × Qf2``
``πα(Q)t``            ``πα(Qt)``
``πα(Q)f``            ``πα(Qf) − πα(Dom^ar(Q) − Qf)``
====================  =============================================

The ``Qf`` side materialises Cartesian powers of the active domain,
which is what makes this scheme impractical (it is the subject of
experiment E5); the scheme of Figure 2b in
:mod:`repro.approx.guagliardo16` avoids this.

.. deprecated:: 1.1
   As a *public* entry point, prefer ``Engine.evaluate(query, db,
   strategy="approx-libkin16")`` from :mod:`repro.engine`, which also
   evaluates the pair and annotates false positives.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..algebra import ast as ra
from ..algebra.conditions import negate, star
from ..datamodel.schema import DatabaseSchema
from .normalize import normalize_for_translation

__all__ = ["CertainFalsePair", "translate_libkin16"]


@dataclass(frozen=True)
class CertainFalsePair:
    """The pair (Qt, Qf) of Figure 2a."""

    certainly_true: ra.Query
    certainly_false: ra.Query


def translate_libkin16(query: ra.Query, schema: DatabaseSchema) -> CertainFalsePair:
    """Translate a relational algebra query into its (Qt, Qf) pair.

    The query must be built from the core operators (base relations,
    constant tables, σ, π, ×, ∪, −, ∩, ρ); other operators are first
    normalised into the core (see :mod:`repro.approx.normalize`) and a
    ``ValueError`` is raised for the ones that cannot be.
    """
    query = normalize_for_translation(query)
    return _translate(query, schema)


def _dom_like(query: ra.Query, schema: DatabaseSchema) -> ra.DomainRelation:
    """``Dom^ar(Q)`` carrying the same attribute names as ``Q``."""
    return ra.DomainRelation(query.output_attributes(schema))


def _translate(query: ra.Query, schema: DatabaseSchema) -> CertainFalsePair:
    if isinstance(query, (ra.RelationRef, ra.ConstantRelation)):
        return CertainFalsePair(
            certainly_true=query,
            certainly_false=ra.UnifAntiSemiJoin(_dom_like(query, schema), query),
        )
    if isinstance(query, ra.Union):
        left = _translate(query.left, schema)
        right = _translate(query.right, schema)
        return CertainFalsePair(
            certainly_true=ra.Union(left.certainly_true, right.certainly_true),
            certainly_false=ra.Intersection(left.certainly_false, right.certainly_false),
        )
    if isinstance(query, ra.Difference):
        left = _translate(query.left, schema)
        right = _translate(query.right, schema)
        return CertainFalsePair(
            certainly_true=ra.Intersection(left.certainly_true, right.certainly_false),
            certainly_false=ra.Union(left.certainly_false, right.certainly_true),
        )
    if isinstance(query, ra.Selection):
        child = _translate(query.child, schema)
        negated = star(negate(query.condition))
        return CertainFalsePair(
            certainly_true=ra.Selection(child.certainly_true, star(query.condition)),
            certainly_false=ra.Union(
                child.certainly_false,
                ra.Selection(_dom_like(query.child, schema), negated),
            ),
        )
    if isinstance(query, ra.Product):
        left = _translate(query.left, schema)
        right = _translate(query.right, schema)
        left_dom = _dom_like(query.left, schema)
        right_dom = _dom_like(query.right, schema)
        return CertainFalsePair(
            certainly_true=ra.Product(left.certainly_true, right.certainly_true),
            certainly_false=ra.Union(
                ra.Product(left.certainly_false, right_dom),
                ra.Product(left_dom, right.certainly_false),
            ),
        )
    if isinstance(query, ra.Projection):
        child = _translate(query.child, schema)
        child_dom = _dom_like(query.child, schema)
        return CertainFalsePair(
            certainly_true=ra.Projection(child.certainly_true, query.attributes),
            certainly_false=ra.Difference(
                ra.Projection(child.certainly_false, query.attributes),
                ra.Projection(
                    ra.Difference(child_dom, child.certainly_false), query.attributes
                ),
            ),
        )
    if isinstance(query, ra.Rename):
        child = _translate(query.child, schema)
        mapping = query.mapping_dict()
        return CertainFalsePair(
            certainly_true=ra.Rename(child.certainly_true, mapping),
            certainly_false=ra.Rename(child.certainly_false, mapping),
        )
    raise ValueError(
        f"operator {type(query).__name__} is not supported by the Figure 2a translation"
    )
