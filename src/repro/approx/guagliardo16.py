"""The (Q+, Q?) approximation scheme of [37] (Figure 2b of the paper).

A relational algebra query ``Q`` is translated into a pair of queries
``(Q+, Q?)`` where ``Q+`` under-approximates certain answers and ``Q?``
over-approximates possible answers (Theorem 4.7)::

    Q+(D) ⊆ cert⊥(Q, D)
    v(Q+(D)) ⊆ Q(v(D)) ⊆ v(Q?(D))      for every valuation v

The translation rules are those of Figure 2b:

====================  =============================================
``R+ = R``            ``R? = R``
``(Q1 ∪ Q2)+``        ``Q1+ ∪ Q2+``
``(Q1 ∪ Q2)?``        ``Q1? ∪ Q2?``
``(Q1 − Q2)+``        ``Q1+ ⋉⇑ Q2?``
``(Q1 − Q2)?``        ``Q1? − Q2+``
``σθ(Q)+``            ``σθ*(Q+)``
``σθ(Q)?``            ``σ¬(¬θ)*(Q?)``
``(Q1 × Q2)+``        ``Q1+ × Q2+``
``(Q1 × Q2)?``        ``Q1? × Q2?``
``πα(Q)+``            ``πα(Q+)``
``πα(Q)?``            ``πα(Q?)``
====================  =============================================

Unlike the Figure 2a scheme, no active-domain products are ever built,
which is what makes the rewriting cheap: the paper reports a typical
1–4% overhead over the original queries on TPC-H (experiment E4), and
the same shape is measured by ``benchmarks/bench_overhead_tpch.py``.

On complete databases ``Q+(D) = Q?(D) = Q(D)``.

.. deprecated:: 1.1
   As a *public* entry point, prefer ``Engine.evaluate(query, db,
   strategy="approx-guagliardo16")`` from :mod:`repro.engine`, which
   also evaluates the pair and annotates certain/possible answers.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..algebra import ast as ra
from ..algebra.conditions import negate, star
from ..datamodel.schema import DatabaseSchema
from .normalize import normalize_for_translation

__all__ = ["CertainPossiblePair", "translate_guagliardo16"]


@dataclass(frozen=True)
class CertainPossiblePair:
    """The pair (Q+, Q?) of Figure 2b."""

    certain: ra.Query
    possible: ra.Query


def translate_guagliardo16(query: ra.Query, schema: DatabaseSchema) -> CertainPossiblePair:
    """Translate a relational algebra query into its (Q+, Q?) pair."""
    query = normalize_for_translation(query)
    return _translate(query, schema)


def _translate(query: ra.Query, schema: DatabaseSchema) -> CertainPossiblePair:
    if isinstance(query, (ra.RelationRef, ra.ConstantRelation, ra.DomainRelation)):
        return CertainPossiblePair(certain=query, possible=query)
    if isinstance(query, ra.Union):
        left = _translate(query.left, schema)
        right = _translate(query.right, schema)
        return CertainPossiblePair(
            certain=ra.Union(left.certain, right.certain),
            possible=ra.Union(left.possible, right.possible),
        )
    if isinstance(query, ra.Difference):
        left = _translate(query.left, schema)
        right = _translate(query.right, schema)
        return CertainPossiblePair(
            certain=ra.UnifAntiSemiJoin(left.certain, right.possible),
            possible=ra.Difference(left.possible, right.certain),
        )
    if isinstance(query, ra.Selection):
        child = _translate(query.child, schema)
        possible_condition = negate(star(negate(query.condition)))
        return CertainPossiblePair(
            certain=ra.Selection(child.certain, star(query.condition)),
            possible=ra.Selection(child.possible, possible_condition),
        )
    if isinstance(query, ra.Product):
        left = _translate(query.left, schema)
        right = _translate(query.right, schema)
        return CertainPossiblePair(
            certain=ra.Product(left.certain, right.certain),
            possible=ra.Product(left.possible, right.possible),
        )
    if isinstance(query, ra.Projection):
        child = _translate(query.child, schema)
        return CertainPossiblePair(
            certain=ra.Projection(child.certain, query.attributes),
            possible=ra.Projection(child.possible, query.attributes),
        )
    if isinstance(query, ra.Rename):
        child = _translate(query.child, schema)
        mapping = query.mapping_dict()
        return CertainPossiblePair(
            certain=ra.Rename(child.certain, mapping),
            possible=ra.Rename(child.possible, mapping),
        )
    raise ValueError(
        f"operator {type(query).__name__} is not supported by the Figure 2b translation"
    )
