"""Certainty bounds under bag semantics (Section 4.2, Theorem 4.8).

Under bag semantics the natural notion of certainty of a tuple ``ā`` is
the range of its multiplicities across possible worlds::

    □Q(D, ā) = min over valuations v of #(v(ā), Q(v(D)))
    ◇Q(D, ā) = max over valuations v of #(v(ā), Q(v(D)))

Theorem 4.8 states that the Figure 2b translation, evaluated under bag
semantics, brackets the minimum multiplicity::

    #(ā, Q+(D)) ≤ □Q(D, ā) ≤ #(ā, Q?(D))

This module computes the exact bounds by enumeration over a finite
constant pool (reference implementation for small databases) and the
approximation bounds from ``Q+``/``Q?`` for arbitrary databases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..algebra import ast as ra
from ..algebra.bag_evaluator import BagEvaluator
from ..datamodel.database import Database
from ..datamodel.values import Value
from ..incomplete.naive import _query_constants
from ..incomplete.worlds import constant_pool, iterate_worlds
from .guagliardo16 import translate_guagliardo16

__all__ = [
    "MultiplicityBounds",
    "exact_multiplicity_bounds",
    "approximate_multiplicity_bounds",
    "certain_multiplicity_lower_bound",
]


@dataclass(frozen=True)
class MultiplicityBounds:
    """A lower and upper bound on the certain multiplicity of a tuple."""

    lower: int
    upper: int

    def contains(self, value: int) -> bool:
        return self.lower <= value <= self.upper


def exact_multiplicity_bounds(
    query: ra.Query,
    database: Database,
    row: Sequence[Value],
    *,
    extra_fresh: int | None = None,
) -> MultiplicityBounds:
    """``(□Q(D, ā), ◇Q(D, ā))`` by enumeration over a finite constant pool."""
    row = tuple(row)
    pool = constant_pool(database, _query_constants(query), extra_fresh=extra_fresh)
    evaluator = BagEvaluator()
    minimum: int | None = None
    maximum = 0
    for valuation, world in iterate_worlds(database, pool):
        answer = evaluator.evaluate(query, world)
        count = answer.multiplicity(valuation.apply_tuple(row))
        minimum = count if minimum is None else min(minimum, count)
        maximum = max(maximum, count)
    if minimum is None:
        # No nulls at all: single world, the database itself.
        count = evaluator.evaluate(query, database).multiplicity(row)
        return MultiplicityBounds(count, count)
    return MultiplicityBounds(minimum, maximum)


def approximate_multiplicity_bounds(
    query: ra.Query,
    database: Database,
    row: Sequence[Value],
) -> MultiplicityBounds:
    """The bracket ``#(ā, Q+(D)) ≤ □Q ≤ #(ā, Q?(D))`` of Theorem 4.8."""
    row = tuple(row)
    pair = translate_guagliardo16(query, database.schema())
    evaluator = BagEvaluator()
    lower = evaluator.evaluate(pair.certain, database).multiplicity(row)
    upper = evaluator.evaluate(pair.possible, database).multiplicity(row)
    return MultiplicityBounds(lower, upper)


def certain_multiplicity_lower_bound(
    query: ra.Query, database: Database, row: Sequence[Value]
) -> int:
    """``#(ā, Q+(D))``: the sound lower bound on the certain multiplicity."""
    return approximate_multiplicity_bounds(query, database, row).lower
