"""Per-relation statistics and plan cardinality estimation.

The PR 4 optimizer picks hash-join build sides from *actual*
cardinalities, which forces both inputs to materialise before the choice
is made, and it only ever joins adjacent ``Product`` pairs in the order
the plan author (or the Figure 2 translations) happened to write them.
This module supplies the missing ingredient — data — in the cheapest
form that still steers plans well:

* :class:`RelationStats` — row count (distinct and with
  multiplicities) plus per-attribute distinct/null counts for one
  relation.  Computed in one pass and **cached on the relation's
  content** (relations are immutable and hash by content, so the cache
  key *is* the fingerprint): mutating a database produces new relation
  objects with new content, which miss the cache — stale statistics are
  structurally impossible, no invalidation protocol needed.
* :class:`Stats` — a lazy per-database provider.  Nothing is scanned
  until the optimizer (or the ``strategy="auto"`` planner) asks for a
  relation; :meth:`Stats.key` renders the whole database's statistics
  as a stable hashable value for memo keys, so two databases with
  identical statistics share optimized plans.
* :class:`PlanEstimator` — System-R-style cardinality estimation over
  whole plans: equality selectivity ``1/distinct``, join size
  ``|L|·|R| / ∏ max(d_L, d_R)``, ``null(A)`` selectivity from the null
  counts, ``Dom^k`` from the active-domain size.  The summary cost
  (:meth:`PlanEstimator.cost`, the classic ``C_out`` sum of
  intermediate cardinalities) is what the planner compares numerically.

**Soundness contract:** statistics influence *cost* only, never
*answers*.  Every consumer uses estimates to choose among plans that
are equivalent by construction (join order, hash build side, strategy
tie-breaks); a wildly wrong estimate can produce a slow plan, never a
wrong one.  The randomized harness in ``tests/test_stats_equivalence.py``
pins this tuple-for-tuple across every strategy.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..datamodel.values import is_null
from . import ast as ra
from .conditions import (
    And,
    Attr,
    Comparison,
    Condition,
    Eq,
    FalseCondition,
    IsConst,
    IsNull,
    Neq,
    Not,
    Or,
    TrueCondition,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..datamodel.database import Database
    from ..datamodel.relation import Relation
    from ..datamodel.schema import DatabaseSchema

__all__ = [
    "RelationStats",
    "Stats",
    "Estimate",
    "PlanEstimator",
    "relation_stats",
    "estimate_plan",
    "estimate_cost",
    "DEFAULT_ROWS",
    "DEFAULT_SELECTIVITY",
]

#: Cardinality assumed for a relation with no statistics (a plan leaf
#: referencing a relation absent from the provider's database).
DEFAULT_ROWS = 1000.0

#: Selectivity assumed for range comparisons and anything else the
#: estimator has no formula for (the System R magic constant).
DEFAULT_SELECTIVITY = 1.0 / 3.0


@dataclass(frozen=True)
class RelationStats:
    """One relation's statistics, in plan-estimation form.

    ``rows`` counts distinct rows, ``total`` counts with bag
    multiplicities; ``distinct`` and ``nulls`` are per-attribute counts
    over the *distinct* rows, aligned with ``attributes``.
    """

    attributes: tuple[str, ...]
    rows: int
    total: int
    distinct: tuple[int, ...]
    nulls: tuple[int, ...]

    def key(self) -> tuple:
        """A stable hashable summary (for optimizer memo keys)."""
        return (self.attributes, self.rows, self.total, self.distinct, self.nulls)


def compute_relation_stats(relation: "Relation") -> RelationStats:
    """One pass over a relation: row/distinct/null counts per attribute."""
    attributes = relation.attributes
    arity = len(attributes)
    seen: list[set] = [set() for _ in range(arity)]
    nulls = [0] * arity
    rows = 0
    total = 0
    for row, count in relation.iter_rows(with_multiplicity=True):
        rows += 1
        total += count
        for position, value in enumerate(row):
            seen[position].add(value)
            if is_null(value):
                nulls[position] += 1
    return RelationStats(
        attributes=attributes,
        rows=rows,
        total=total,
        distinct=tuple(len(values) for values in seen),
        nulls=tuple(nulls),
    )


#: Content-addressed statistics cache.  Relations hash and compare by
#: content, so the key *is* the relation's fingerprint: a mutated
#: database carries different relation objects with different content
#: and simply misses — invalidation is free.  Bounded FIFO under a lock
#: (the engine evaluates from thread pools).
_STATS_MEMO: "OrderedDict[Relation, RelationStats]" = OrderedDict()
_STATS_MEMO_SIZE = 512
_STATS_LOCK = threading.Lock()


def relation_stats(relation: "Relation") -> RelationStats:
    """Statistics for one relation, cached on its content."""
    with _STATS_LOCK:
        cached = _STATS_MEMO.get(relation)
        if cached is not None:
            _STATS_MEMO.move_to_end(relation)
            return cached
    stats = compute_relation_stats(relation)
    with _STATS_LOCK:
        _STATS_MEMO[relation] = stats
        while len(_STATS_MEMO) > _STATS_MEMO_SIZE:
            _STATS_MEMO.popitem(last=False)
    return stats


class Stats:
    """Lazy statistics provider over one database.

    Construction scans nothing; each relation is summarised on first
    request (and served from the content-addressed cache thereafter).
    A sharded fragment gets a provider over its *own* fragment data, so
    per-fragment planning never waits for the coalesced database.
    """

    def __init__(self, database: "Database"):
        self._database = database
        self._by_name: dict[str, RelationStats | None] = {}
        self._adom_size: int | None = None
        self._key: tuple | None = None

    def relation(self, name: str) -> RelationStats | None:
        """Statistics for the named relation, or None if absent."""
        if name not in self._by_name:
            relation = self._database.get(name)
            self._by_name[name] = (
                None if relation is None else relation_stats(relation)
            )
        return self._by_name[name]

    def active_domain_size(self) -> int:
        """``|adom(D)|`` — sizes ``Dom^k`` estimates."""
        if self._adom_size is None:
            self._adom_size = len(self._database.active_domain())
        return self._adom_size

    def key(self) -> tuple:
        """A stable hashable rendering of the whole database's statistics.

        Folding this into :func:`repro.algebra.optimize.optimize_plan`'s
        memo key is what makes stats-driven plans safe to memoise: a
        mutated database produces a different key and replans, while two
        statistically identical databases share the cached plan.
        """
        if self._key is None:
            names = sorted(self._database.relation_names())
            self._key = (
                tuple((name, self.relation(name).key()) for name in names),
                self.active_domain_size(),
            )
        return self._key


@dataclass(frozen=True)
class Estimate:
    """Estimated output of one plan node.

    ``rows`` is the estimated cardinality (bag); ``distinct`` and
    ``nulls`` map each output attribute to its estimated distinct-value
    and null-row counts.  All floats: estimates multiply and divide.
    """

    rows: float
    distinct: dict
    nulls: dict

    def distinct_of(self, attribute: str) -> float:
        return max(1.0, self.distinct.get(attribute, self.rows))

    def nulls_of(self, attribute: str) -> float:
        return self.nulls.get(attribute, 0.0)


def _clamp(value: float, low: float, high: float) -> float:
    return max(low, min(high, value))


class PlanEstimator:
    """Cardinality estimation over :mod:`repro.algebra.ast` plans.

    One instance per (schema, stats) pair; node estimates are memoised
    (plans share subtrees heavily — the Figure 2 pairs almost entirely),
    so re-estimating a growing join tree during greedy enumeration stays
    cheap.
    """

    def __init__(self, schema: "DatabaseSchema", stats: Stats):
        self.schema = schema
        self.stats = stats
        self._memo: dict[ra.Query, Estimate] = {}

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def estimate(self, node: ra.Query) -> Estimate:
        """The estimated output of ``node``."""
        cached = self._memo.get(node)
        if cached is None:
            cached = self._estimate(node)
            self._memo[node] = cached
        return cached

    def cost(self, node: ra.Query) -> float:
        """``C_out``: the sum of estimated cardinalities over all nodes.

        The classic cost proxy — every intermediate result must be
        produced, so plans that keep intermediates small win.  This is
        the number the ``strategy="auto"`` planner compares.
        """
        total = self.estimate(node).rows
        for child in node.children():
            total += self.cost(child)
        return total

    # ------------------------------------------------------------------
    # Per-node estimation
    # ------------------------------------------------------------------
    def _estimate(self, node: ra.Query) -> Estimate:
        method = getattr(self, f"_est_{type(node).__name__}", None)
        if method is not None:
            return method(node)
        # Unknown operator: assume it passes its children through.
        children = node.children()
        if children:
            return self.estimate(children[0])
        return Estimate(DEFAULT_ROWS, {}, {})

    def _est_RelationRef(self, node: ra.RelationRef) -> Estimate:
        stats = self.stats.relation(node.name)
        if stats is None:
            attrs = node.output_attributes(self.schema)
            return Estimate(
                DEFAULT_ROWS,
                {a: DEFAULT_ROWS for a in attrs},
                {a: 0.0 for a in attrs},
            )
        rows = float(max(stats.total, stats.rows))
        return Estimate(
            rows,
            dict(zip(stats.attributes, (float(d) for d in stats.distinct))),
            dict(zip(stats.attributes, (float(n) for n in stats.nulls))),
        )

    def _est_ConstantRelation(self, node: ra.ConstantRelation) -> Estimate:
        rows = float(len(node.rows))
        distinct = {}
        nulls = {}
        for position, attribute in enumerate(node.attributes):
            values = [row[position] for row in node.rows]
            distinct[attribute] = float(len(set(values)))
            nulls[attribute] = float(sum(1 for v in values if is_null(v)))
        return Estimate(rows, distinct, nulls)

    def _est_DomainRelation(self, node: ra.DomainRelation) -> Estimate:
        size = float(max(1, self.stats.active_domain_size()))
        arity = len(node.attributes)
        return Estimate(
            size**arity,
            {a: size for a in node.attributes},
            {a: 0.0 for a in node.attributes},
        )

    def _est_ConstrainedDomainRelation(
        self, node: ra.ConstrainedDomainRelation
    ) -> Estimate:
        size = float(max(1, self.stats.active_domain_size()))
        grouped = {a for group in node.groups for a in group}
        bound = {a for a, _value in node.bindings}
        # One value per equality class; bound classes contribute 1.
        rows = 1.0
        for group in node.groups:
            rows *= 1.0 if (set(group) & bound) else size
        for attribute in node.attributes:
            if attribute not in grouped:
                rows *= 1.0 if attribute in bound else size
        distinct = {
            a: (1.0 if a in bound else size) for a in node.attributes
        }
        return Estimate(rows, distinct, {a: 0.0 for a in node.attributes})

    def _est_Selection(self, node: ra.Selection) -> Estimate:
        child = self.estimate(node.child)
        selectivity = self._selectivity(node.condition, child)
        return self._scaled(child, selectivity)

    def _est_Projection(self, node: ra.Projection) -> Estimate:
        child = self.estimate(node.child)
        kept = set(node.attributes)
        return Estimate(
            child.rows,
            {a: d for a, d in child.distinct.items() if a in kept},
            {a: n for a, n in child.nulls.items() if a in kept},
        )

    def _est_Rename(self, node: ra.Rename) -> Estimate:
        child = self.estimate(node.child)
        mapping = node.mapping_dict()
        return Estimate(
            child.rows,
            {mapping.get(a, a): d for a, d in child.distinct.items()},
            {mapping.get(a, a): n for a, n in child.nulls.items()},
        )

    def _est_Product(self, node: ra.Product) -> Estimate:
        left = self.estimate(node.left)
        right = self.estimate(node.right)
        rows = left.rows * right.rows
        distinct = {}
        nulls = {}
        for side, other in ((left, right), (right, left)):
            for attribute, d in side.distinct.items():
                distinct[attribute] = min(d, rows) if rows else 0.0
            for attribute, n in side.nulls.items():
                # Null *fraction* is preserved by the product.
                nulls[attribute] = min(n * max(other.rows, 0.0), rows)
        return Estimate(rows, distinct, nulls)

    def _est_EquiJoin(self, node: ra.EquiJoin) -> Estimate:
        left = self.estimate(node.left)
        right = self.estimate(node.right)
        rows = left.rows * right.rows
        for a, b in node.pairs:
            rows /= max(left.distinct_of(a), right.distinct_of(b), 1.0)
        distinct = {}
        nulls = {}
        key_distinct = {}
        for a, b in node.pairs:
            shared = min(left.distinct_of(a), right.distinct_of(b))
            key_distinct[a] = shared
            key_distinct[b] = shared
        for side, other in ((left, right), (right, left)):
            scale = rows / side.rows if side.rows else 0.0
            for attribute, d in side.distinct.items():
                distinct[attribute] = min(key_distinct.get(attribute, d), rows)
            for attribute, n in side.nulls.items():
                nulls[attribute] = min(n * max(scale, 0.0), rows)
        return Estimate(rows, distinct, nulls)

    def _est_NaturalJoin(self, node: ra.NaturalJoin) -> Estimate:
        left = self.estimate(node.left)
        right = self.estimate(node.right)
        shared = [a for a in left.distinct if a in right.distinct]
        rows = left.rows * right.rows
        for attribute in shared:
            rows /= max(
                left.distinct_of(attribute), right.distinct_of(attribute), 1.0
            )
        distinct = dict(right.distinct)
        distinct.update(left.distinct)
        distinct = {a: min(d, rows) for a, d in distinct.items()}
        nulls = {a: min(n, rows) for a, n in {**right.nulls, **left.nulls}.items()}
        return Estimate(rows, distinct, nulls)

    def _est_Union(self, node: ra.Union) -> Estimate:
        left = self.estimate(node.left)
        right = self.estimate(node.right)
        rows = left.rows + right.rows
        # Set operations are positional; the output keeps left's names.
        right_by_position = list(right.distinct.items())
        distinct = {}
        nulls = {}
        for position, (attribute, d) in enumerate(left.distinct.items()):
            other_d = (
                right_by_position[position][1]
                if position < len(right_by_position)
                else 0.0
            )
            distinct[attribute] = min(d + other_d, rows)
        for attribute, n in left.nulls.items():
            nulls[attribute] = min(n + right.rows, rows)
        return Estimate(rows, distinct, nulls)

    def _est_Difference(self, node: ra.Difference) -> Estimate:
        return self.estimate(node.left)

    def _est_Intersection(self, node: ra.Intersection) -> Estimate:
        left = self.estimate(node.left)
        right = self.estimate(node.right)
        rows = min(left.rows, right.rows)
        return Estimate(
            rows,
            {a: min(d, rows) for a, d in left.distinct.items()},
            {a: min(n, rows) for a, n in left.nulls.items()},
        )

    def _est_SemiJoin(self, node: ra.SemiJoin) -> Estimate:
        return self.estimate(node.left)

    def _est_AntiSemiJoin(self, node: ra.AntiSemiJoin) -> Estimate:
        return self.estimate(node.left)

    def _est_UnifAntiSemiJoin(self, node: ra.UnifAntiSemiJoin) -> Estimate:
        return self.estimate(node.left)

    def _est_Division(self, node: ra.Division) -> Estimate:
        left = self.estimate(node.left)
        right = self.estimate(node.right)
        rows = left.rows / max(right.rows, 1.0)
        kept = {
            a: min(d, rows)
            for a, d in left.distinct.items()
            if a not in right.distinct
        }
        nulls = {
            a: min(n, rows) for a, n in left.nulls.items() if a in kept
        }
        return Estimate(rows, kept, nulls)

    # ------------------------------------------------------------------
    # Condition selectivity
    # ------------------------------------------------------------------
    def _selectivity(self, condition: Condition, child: Estimate) -> float:
        if isinstance(condition, TrueCondition):
            return 1.0
        if isinstance(condition, FalseCondition):
            return 0.0
        if isinstance(condition, And):
            return self._selectivity(condition.left, child) * self._selectivity(
                condition.right, child
            )
        if isinstance(condition, Or):
            left = self._selectivity(condition.left, child)
            right = self._selectivity(condition.right, child)
            return _clamp(left + right - left * right, 0.0, 1.0)
        if isinstance(condition, Not):
            return _clamp(
                1.0 - self._selectivity(condition.operand, child), 0.0, 1.0
            )
        if isinstance(condition, IsNull):
            if isinstance(condition.term, Attr) and child.rows:
                return _clamp(
                    child.nulls_of(condition.term.name) / child.rows, 0.0, 1.0
                )
            return DEFAULT_SELECTIVITY
        if isinstance(condition, IsConst):
            if isinstance(condition.term, Attr) and child.rows:
                return _clamp(
                    1.0 - child.nulls_of(condition.term.name) / child.rows,
                    0.0,
                    1.0,
                )
            return 1.0 - DEFAULT_SELECTIVITY
        if isinstance(condition, Comparison):
            return self._comparison_selectivity(condition, child)
        return DEFAULT_SELECTIVITY

    def _comparison_selectivity(
        self, condition: Comparison, child: Estimate
    ) -> float:
        left, right = condition.left, condition.right
        if isinstance(condition, (Eq, Neq)):
            equality = self._equality_selectivity(left, right, child)
            if isinstance(condition, Eq):
                return equality
            return _clamp(1.0 - equality, 0.0, 1.0)
        return DEFAULT_SELECTIVITY

    def _equality_selectivity(self, left, right, child: Estimate) -> float:
        left_attr = isinstance(left, Attr)
        right_attr = isinstance(right, Attr)
        if left_attr and right_attr:
            return _clamp(
                1.0
                / max(
                    child.distinct_of(left.name), child.distinct_of(right.name)
                ),
                0.0,
                1.0,
            )
        if left_attr or right_attr:
            attribute = left.name if left_attr else right.name
            return _clamp(1.0 / child.distinct_of(attribute), 0.0, 1.0)
        # literal = literal
        try:
            return 1.0 if left.value == right.value else 0.0
        except AttributeError:  # pragma: no cover - defensive
            return DEFAULT_SELECTIVITY

    @staticmethod
    def _scaled(child: Estimate, selectivity: float) -> Estimate:
        selectivity = _clamp(selectivity, 0.0, 1.0)
        rows = child.rows * selectivity
        return Estimate(
            rows,
            {a: min(d, rows) if rows else 0.0 for a, d in child.distinct.items()},
            {a: min(n * selectivity, rows) for a, n in child.nulls.items()},
        )


def estimate_plan(
    node: ra.Query, schema: "DatabaseSchema", stats: Stats
) -> Estimate:
    """Convenience: estimate one plan with a throwaway estimator."""
    return PlanEstimator(schema, stats).estimate(node)


def estimate_cost(node: ra.Query, schema: "DatabaseSchema", stats: Stats) -> float:
    """Convenience: the ``C_out`` cost of one plan (see PlanEstimator.cost)."""
    return PlanEstimator(schema, stats).cost(node)
