"""Evaluation of relational algebra queries over databases with nulls.

The evaluator implements *naïve evaluation* in the sense of Section 4.1:
nulls are treated as ordinary values (a null is equal only to itself),
and the operators are computed by the textbook algorithms.  This is the
evaluation that the rewritten queries of Figure 2 are run under — their
correctness guarantees come from the structure of the rewriting (θ*
guards, unification anti-semijoins), not from a special evaluation mode.

Two interpretations of multiplicities are provided:

* set semantics (:class:`SetEvaluator`, the default) — the model used by
  most of the paper's theory;
* bag semantics (:class:`BagEvaluator`, in
  :mod:`repro.algebra.bag_evaluator`) — the SQL model, where union adds
  multiplicities and difference subtracts them down to zero.

Internally every operator is computed on bags (``Counter`` objects); the
set evaluator simply collapses multiplicities to one after each
operator, which yields exactly the set-theoretic operators.

The evaluator also exposes a ``condition_mode``: ``"naive"`` evaluates
selection conditions in two-valued logic with nulls as values, while
``"3vl"`` keeps only rows whose condition evaluates to Kleene-true,
mirroring an SQL WHERE clause.  The SQL frontend uses the latter.
"""

from __future__ import annotations

import itertools
from collections import Counter
from typing import Iterable, Literal as TypingLiteral

from ..datamodel.database import Database
from ..datamodel.relation import Relation, Row
from ..datamodel.schema import DatabaseSchema
from ..datamodel.unification import unifiable
from ..datamodel.values import is_const, is_null, value_sort_key
from ..mvl.truthvalues import TRUE
from ..resilience import active_deadline
from . import ast
from .conditions import Condition

__all__ = [
    "Evaluator",
    "SetEvaluator",
    "evaluate",
    "evaluate_boolean",
    "DOMAIN_ENUMERATION_LIMIT",
]

ConditionMode = TypingLiteral["naive", "3vl"]
UnifStrategy = TypingLiteral["nested", "hashed"]

#: Guard against materialising an astronomically large ``Dom^k``: raise a
#: clear engine error instead of exhausting memory.  The optimizer's
#: :class:`~repro.algebra.ast.ConstrainedDomainRelation` applies the same
#: guard to its (usually far smaller) pruned enumeration space.
DOMAIN_ENUMERATION_LIMIT = 2_000_000


def _check_enumeration_size(total: int, what: str) -> None:
    if total > DOMAIN_ENUMERATION_LIMIT:
        # Deliberate upward dependency on the façade's error contract
        # (callers catch EngineError); kept lazy so repro.algebra still
        # imports standalone.  EngineError subclasses ValueError, so
        # engine-unaware callers can catch that instead.
        from ..engine.errors import EngineError

        raise EngineError(
            f"enumerating {what} would materialise {total} tuples "
            f"(limit {DOMAIN_ENUMERATION_LIMIT}); push a selection into the "
            "domain relation (the optimizer does this for equality conditions) "
            "or use the Figure 2b scheme, which never builds Dom^k"
        )


class Evaluator:
    """Evaluates :class:`~repro.algebra.ast.Query` trees against a database.

    Parameters
    ----------
    bag:
        If True, interpret the operators under bag semantics (multiplicities
        are preserved); otherwise set semantics.
    condition_mode:
        ``"naive"`` for two-valued condition evaluation with nulls as
        values; ``"3vl"`` to keep rows whose condition is Kleene-true.
    unif_strategy:
        How the unification anti-semijoin probes the right-hand side:
        ``"hashed"`` separates ground rows (hash lookup for ground probes)
        from rows with nulls; ``"nested"`` is the plain nested loop.  The
        two strategies are compared in the ablation benchmarks.
    optimize:
        If True, plans are rewritten by :mod:`repro.algebra.optimize`
        before evaluation (selection/projection pushdown, hash equi-joins,
        constrained domain enumeration), with the rule set restricted to
        the rules sound for this evaluator's ``condition_mode``.  The
        engine façade turns this on by default; the raw evaluator keeps
        it off so the textbook semantics stay directly observable.
    stats:
        If True (and ``optimize`` is on), a :class:`~repro.algebra.stats.Stats`
        provider is built over each database passed to :meth:`evaluate`
        and handed to the optimizer, enabling the estimate-driven
        physical rules (join reordering across Product towers, hash
        build-side choice).  Statistics are content-addressed, so the
        provider is cheap to rebuild and mutation invalidates estimates
        for free.  Stats change plan *cost* only, never answers.

    The evaluator memoises sub-plan results per database: structurally
    identical subtrees — which the Figure 2 translations share between
    the members of their (Qt, Qf) / (Q+, Q?) pairs almost verbatim — are
    evaluated once.  The memo is keyed on the node (all plan nodes are
    frozen dataclasses, so equality is structural) and is dropped
    whenever ``evaluate`` is called with a different database object.
    """

    def __init__(
        self,
        *,
        bag: bool = False,
        condition_mode: ConditionMode = "naive",
        unif_strategy: UnifStrategy = "hashed",
        optimize: bool = False,
        stats: bool = False,
    ):
        self.bag = bag
        self.condition_mode = condition_mode
        self.unif_strategy = unif_strategy
        self.optimize = optimize
        self.stats = stats
        self._memo: dict[ast.Query, Relation] = {}
        self._memo_database: Database | None = None
        # The ambient wall-clock budget (see repro.resilience), refreshed
        # per evaluate() call; None when the caller set no deadline.
        self._deadline = None

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def evaluate(self, query: ast.Query, database: Database) -> Relation:
        """Evaluate ``query`` on ``database`` and return the result relation."""
        self._deadline = active_deadline()
        schema = database.schema()
        if self.optimize:
            from .optimize import optimize_plan

            stats_provider = None
            if self.stats:
                from .stats import Stats

                stats_provider = Stats(database)
            query = optimize_plan(
                query,
                schema,
                condition_mode=self.condition_mode,
                bag=self.bag,
                stats=stats_provider,
            )
        if database is not self._memo_database:
            self._memo_database = database
            self._memo = {}
        result = self._eval(query, database, schema)
        return result if self.bag else result.distinct()

    def evaluate_boolean(self, query: ast.Query, database: Database) -> bool:
        """Evaluate a Boolean (nullary) query: non-empty result means true."""
        return bool(self.evaluate(query, database))

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _eval(self, query: ast.Query, database: Database, schema: DatabaseSchema) -> Relation:
        cached = self._memo.get(query)
        if cached is not None:
            return cached
        if self._deadline is not None:
            # One clock read per plan node: cheap against any operator's
            # work, and it bounds every recursion (including the Figure 2
            # rewritings' deep towers) without instrumenting each rule.
            self._deadline.check(type(query).__name__)
        method = getattr(self, f"_eval_{type(query).__name__}", None)
        if method is None:
            raise TypeError(f"no evaluation rule for {type(query).__name__}")
        result: Relation = method(query, database, schema)
        if not self.bag:
            result = result.distinct()
        self._memo[query] = result
        return result

    # ------------------------------------------------------------------
    # Leaves
    # ------------------------------------------------------------------
    def _eval_RelationRef(self, query: ast.RelationRef, database, schema) -> Relation:
        relation = database.get(query.name)
        if relation is None:
            raise KeyError(f"relation {query.name!r} not present in the database")
        return relation

    def _eval_ConstantRelation(self, query: ast.ConstantRelation, database, schema) -> Relation:
        return Relation(query.attributes, query.rows)

    def _eval_DomainRelation(self, query: ast.DomainRelation, database, schema) -> Relation:
        domain = sorted(database.active_domain(), key=value_sort_key)
        arity = len(query.attributes)
        if arity == 0:
            return Relation((), [()])
        _check_enumeration_size(len(domain) ** arity, f"Dom^{arity}")
        rows = itertools.product(domain, repeat=arity)
        if self._deadline is not None:
            rows = self._deadline.ticked(rows, where=f"Dom^{arity}")
        counter = Counter({row: 1 for row in rows})
        return Relation.from_counter(query.attributes, counter)

    def _eval_ConstrainedDomainRelation(
        self, query: ast.ConstrainedDomainRelation, database, schema
    ) -> Relation:
        """``σ_θ(Dom^k)`` without materialising ``Dom^k``.

        One value is enumerated per attribute *class* (attributes forced
        equal by the pushed condition share a class), candidate sets are
        pruned by literal bindings and const/null guards, and the full
        condition is re-checked per tuple in this evaluator's condition
        mode — the pruning is only ever a sound over-approximation of
        the satisfying tuples.
        """
        domain = sorted(database.active_domain(), key=value_sort_key)
        attrs = query.attributes
        class_of: dict[str, int] = {}
        classes: list[list[str]] = []
        for group in query.groups:
            index = len(classes)
            classes.append(list(group))
            for attribute in group:
                class_of[attribute] = index
        for attribute in attrs:
            if attribute not in class_of:
                class_of[attribute] = len(classes)
                classes.append([attribute])
        bound: dict[str, set] = {}
        for attribute, value in query.bindings:
            bound.setdefault(attribute, set()).add(value)
        require_const = set(query.require_const)
        require_null = set(query.require_null)
        candidates: list[list] = []
        total = 1
        for members in classes:
            values = domain
            for attribute in members:
                if attribute in bound:
                    allowed = bound[attribute]
                    values = [v for v in values if v in allowed]
                if attribute in require_const:
                    values = [v for v in values if is_const(v)]
                if attribute in require_null:
                    values = [v for v in values if is_null(v)]
            candidates.append(values)
            total *= len(values)
        _check_enumeration_size(
            total, f"the constrained Dom^{len(attrs)} of {query.condition}"
        )
        index = {a: i for i, a in enumerate(attrs)}
        positions = [class_of[a] for a in attrs]
        condition = query.condition
        counter: Counter = Counter()
        combos = itertools.product(*candidates)
        if self._deadline is not None:
            combos = self._deadline.ticked(
                combos, where=f"constrained Dom^{len(attrs)}"
            )
        for combo in combos:
            row = tuple(combo[p] for p in positions)
            if self._condition_holds(condition, row, index):
                counter[row] = 1
        return Relation.from_counter(attrs, counter)

    # ------------------------------------------------------------------
    # Unary operators
    # ------------------------------------------------------------------
    def _eval_Selection(self, query: ast.Selection, database, schema) -> Relation:
        child = self._eval(query.child, database, schema)
        index = {a: i for i, a in enumerate(child.attributes)}
        counter: Counter = Counter()
        for row, count in child.iter_rows(with_multiplicity=True):
            if self._condition_holds(query.condition, row, index):
                counter[row] += count
        return Relation.from_counter(child.attributes, counter)

    def _condition_holds(self, condition: Condition, row: Row, index: dict) -> bool:
        if self.condition_mode == "3vl":
            return condition.eval_3vl(row, index) is TRUE
        return condition.eval_naive(row, index)

    def _eval_Projection(self, query: ast.Projection, database, schema) -> Relation:
        child = self._eval(query.child, database, schema)
        positions = [child.attribute_index(a) for a in query.attributes]
        counter: Counter = Counter()
        for row, count in child.iter_rows(with_multiplicity=True):
            counter[tuple(row[p] for p in positions)] += count
        return Relation.from_counter(query.attributes, counter)

    def _eval_Rename(self, query: ast.Rename, database, schema) -> Relation:
        child = self._eval(query.child, database, schema)
        return child.rename(query.mapping_dict())

    # ------------------------------------------------------------------
    # Binary operators
    # ------------------------------------------------------------------
    def _eval_Product(self, query: ast.Product, database, schema) -> Relation:
        left = self._eval(query.left, database, schema)
        right = self._eval(query.right, database, schema)
        attributes = query.output_attributes(schema)
        counter: Counter = Counter()
        for left_row, left_count in left.iter_rows(with_multiplicity=True):
            for right_row, right_count in right.iter_rows(with_multiplicity=True):
                counter[left_row + right_row] += left_count * right_count
        return Relation.from_counter(attributes, counter)

    def _eval_Union(self, query: ast.Union, database, schema) -> Relation:
        left = self._eval(query.left, database, schema)
        right = self._eval(query.right, database, schema)
        self._check_arity(left, right, "union")
        counter = Counter(left.rows_bag())
        for row, count in right.iter_rows(with_multiplicity=True):
            counter[row] += count
        return Relation.from_counter(left.attributes, counter)

    def _eval_Difference(self, query: ast.Difference, database, schema) -> Relation:
        left = self._eval(query.left, database, schema)
        right = self._eval(query.right, database, schema)
        self._check_arity(left, right, "difference")
        counter: Counter = Counter()
        for row, count in left.iter_rows(with_multiplicity=True):
            remaining = count - right.multiplicity(row)
            if remaining > 0:
                counter[row] = remaining
        return Relation.from_counter(left.attributes, counter)

    def _eval_Intersection(self, query: ast.Intersection, database, schema) -> Relation:
        left = self._eval(query.left, database, schema)
        right = self._eval(query.right, database, schema)
        self._check_arity(left, right, "intersection")
        counter: Counter = Counter()
        for row, count in left.iter_rows(with_multiplicity=True):
            other = right.multiplicity(row)
            if other:
                counter[row] = min(count, other)
        return Relation.from_counter(left.attributes, counter)

    def _eval_Division(self, query: ast.Division, database, schema) -> Relation:
        left = self._eval(query.left, database, schema)
        right = self._eval(query.right, database, schema)
        output_attrs = [a for a in left.attributes if a not in right.attributes]
        group_positions = [left.attribute_index(a) for a in output_attrs]
        divisor_positions = [left.attribute_index(a) for a in right.attributes]
        divisor_rows = right.rows_set()
        groups: dict[Row, set] = {}
        for row in left:
            key = tuple(row[p] for p in group_positions)
            groups.setdefault(key, set()).add(tuple(row[p] for p in divisor_positions))
        counter: Counter = Counter()
        for key, seen in groups.items():
            if divisor_rows <= seen:
                counter[key] = 1
        if not divisor_rows:
            # R ÷ ∅ contains every group of R (universal quantification over ∅).
            counter = Counter({key: 1 for key in groups})
        return Relation.from_counter(output_attrs, counter)

    def _eval_UnifAntiSemiJoin(self, query: ast.UnifAntiSemiJoin, database, schema) -> Relation:
        left = self._eval(query.left, database, schema)
        right = self._eval(query.right, database, schema)
        self._check_arity(left, right, "unification anti-semijoin")
        keep = self._unif_antijoin_rows(left, right)
        counter = Counter(
            {row: count for row, count in left.iter_rows(with_multiplicity=True) if row in keep}
        )
        return Relation.from_counter(left.attributes, counter)

    def _unif_antijoin_rows(self, left: Relation, right: Relation) -> set:
        """Rows of ``left`` that unify with no row of ``right``."""
        if self.unif_strategy == "nested":
            return {
                row
                for row in left
                if not any(unifiable(row, other) for other in right)
            }
        ground_right = {row for row in right if all(is_const(v) for v in row)}
        nonground_right = [row for row in right if row not in ground_right]
        keep = set()
        for row in left:
            if all(is_const(v) for v in row) and row in ground_right:
                continue
            if any(unifiable(row, other) for other in nonground_right):
                continue
            if not all(is_const(v) for v in row) and any(
                unifiable(row, other) for other in ground_right
            ):
                continue
            keep.add(row)
        return keep

    def _eval_EquiJoin(self, query: ast.EquiJoin, database, schema) -> Relation:
        """Hash equi-join: ``σ_{a=b ∧ ...}(left × right)`` without the product.

        The hash table is built on the side named by ``query.build`` when
        the optimizer pinned one from estimates; otherwise — the plan was
        produced without statistics — it falls back to the side with
        fewer distinct *actual* rows.  The fallback requires both inputs
        materialised; the estimate-driven choice is what lets sharded
        fragments plan before coalescing.
        Null join keys follow the condition mode: under naïve evaluation
        a null is a value (equal only to itself) and participates in the
        join; under 3VL any comparison with a null is unknown, so rows
        with a null in a key column are dropped — exactly what the
        selection the join replaces would have done.
        """
        left = self._eval(query.left, database, schema)
        right = self._eval(query.right, database, schema)
        attributes = query.output_attributes(schema)
        left_key = [left.attribute_index(a) for a, _ in query.pairs]
        right_key = [right.attribute_index(b) for _, b in query.pairs]
        drop_null_keys = self.condition_mode == "3vl"

        def rows_with_keys(relation: Relation, positions):
            for row, count in relation.iter_rows(with_multiplicity=True):
                key = tuple(row[p] for p in positions)
                if drop_null_keys and any(is_null(v) for v in key):
                    continue
                yield key, row, count

        if query.build is not None:
            build_right = query.build == "right"
        else:
            build_right = len(right) <= len(left)
        counter: Counter = Counter()
        if build_right:
            buckets: dict[Row, list[tuple[Row, int]]] = {}
            for key, row, count in rows_with_keys(right, right_key):
                buckets.setdefault(key, []).append((row, count))
            for key, row, count in rows_with_keys(left, left_key):
                for other, other_count in buckets.get(key, ()):
                    counter[row + other] += count * other_count
        else:
            buckets = {}
            for key, row, count in rows_with_keys(left, left_key):
                buckets.setdefault(key, []).append((row, count))
            for key, row, count in rows_with_keys(right, right_key):
                for other, other_count in buckets.get(key, ()):
                    counter[other + row] += other_count * count
        return Relation.from_counter(attributes, counter)

    def _eval_NaturalJoin(self, query: ast.NaturalJoin, database, schema) -> Relation:
        left = self._eval(query.left, database, schema)
        right = self._eval(query.right, database, schema)
        shared = [a for a in left.attributes if a in right.attributes]
        right_extra = [a for a in right.attributes if a not in left.attributes]
        left_key = [left.attribute_index(a) for a in shared]
        right_key = [right.attribute_index(a) for a in shared]
        right_extra_pos = [right.attribute_index(a) for a in right_extra]
        buckets: dict[Row, list[tuple[Row, int]]] = {}
        for row, count in right.iter_rows(with_multiplicity=True):
            key = tuple(row[p] for p in right_key)
            buckets.setdefault(key, []).append((tuple(row[p] for p in right_extra_pos), count))
        counter: Counter = Counter()
        for row, count in left.iter_rows(with_multiplicity=True):
            key = tuple(row[p] for p in left_key)
            for extra, right_count in buckets.get(key, ()):
                counter[row + extra] += count * right_count
        return Relation.from_counter(tuple(left.attributes) + tuple(right_extra), counter)

    def _eval_SemiJoin(self, query: ast.SemiJoin, database, schema) -> Relation:
        left, right, left_key, right_keys = self._semijoin_parts(query, database, schema)
        counter = Counter(
            {
                row: count
                for row, count in left.iter_rows(with_multiplicity=True)
                if tuple(row[p] for p in left_key) in right_keys
            }
        )
        return Relation.from_counter(left.attributes, counter)

    def _eval_AntiSemiJoin(self, query: ast.AntiSemiJoin, database, schema) -> Relation:
        left, right, left_key, right_keys = self._semijoin_parts(query, database, schema)
        counter = Counter(
            {
                row: count
                for row, count in left.iter_rows(with_multiplicity=True)
                if tuple(row[p] for p in left_key) not in right_keys
            }
        )
        return Relation.from_counter(left.attributes, counter)

    def _semijoin_parts(self, query, database, schema):
        left = self._eval(query.left, database, schema)
        right = self._eval(query.right, database, schema)
        shared = [a for a in left.attributes if a in right.attributes]
        left_key = [left.attribute_index(a) for a in shared]
        right_key = [right.attribute_index(a) for a in shared]
        right_keys = {tuple(row[p] for p in right_key) for row in right}
        return left, right, left_key, right_keys

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _check_arity(left: Relation, right: Relation, operator: str) -> None:
        if left.arity != right.arity:
            raise ValueError(
                f"{operator} requires equal arities, got {left.arity} and {right.arity}"
            )


class SetEvaluator(Evaluator):
    """Set-semantics evaluator (the default)."""

    def __init__(self, **kwargs):
        kwargs.setdefault("bag", False)
        super().__init__(**kwargs)


def evaluate(query: ast.Query, database: Database, **kwargs) -> Relation:
    """Evaluate a query under set semantics (convenience wrapper)."""
    return SetEvaluator(**kwargs).evaluate(query, database)


def evaluate_boolean(query: ast.Query, database: Database, **kwargs) -> bool:
    """Evaluate a Boolean query under set semantics (convenience wrapper)."""
    return SetEvaluator(**kwargs).evaluate_boolean(query, database)
