"""Relational algebra abstract syntax.

The operators are those of Section 2 of the paper — selection σ,
projection π, Cartesian product ×, union ∪ and difference − — plus the
extra operators needed by the material it surveys:

* intersection ∩ (used by the Figure 2a translation);
* division ÷ (the Pos∀G-related fragment of Theorem 4.4);
* the active-domain relation ``Dom^k`` (used by the Figure 2a translation);
* the unification anti-semijoin ``⋉⇑`` (used by both translations);
* renaming, natural join, semijoin and anti-semijoin as conveniences for
  the SQL frontend and the workloads.

Queries are immutable trees of :class:`Query` nodes.  Attribute
propagation is static: every node can compute its output attributes from
its children via :meth:`Query.output_attributes`, given a schema for the
base relations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from ..datamodel.schema import DatabaseSchema
from .conditions import Condition, TrueCondition

__all__ = [
    "Query",
    "RelationRef",
    "ConstantRelation",
    "Selection",
    "Projection",
    "Product",
    "Union",
    "Difference",
    "Intersection",
    "Rename",
    "Division",
    "DomainRelation",
    "UnifAntiSemiJoin",
    "NaturalJoin",
    "SemiJoin",
    "AntiSemiJoin",
    "EquiJoin",
    "ConstrainedDomainRelation",
    "walk",
    "operator_count",
]


class Query:
    """Base class of relational algebra query nodes."""

    def children(self) -> tuple["Query", ...]:
        return ()

    def output_attributes(self, schema: DatabaseSchema) -> tuple[str, ...]:
        """The attribute names of the query result under the given schema."""
        raise NotImplementedError

    def arity(self, schema: DatabaseSchema) -> int:
        return len(self.output_attributes(schema))

    # ------------------------------------------------------------------
    # Small fluent API so examples and tests read naturally.
    # ------------------------------------------------------------------
    def select(self, condition: Condition) -> "Selection":
        return Selection(self, condition)

    def project(self, attributes: Sequence[str]) -> "Projection":
        return Projection(self, attributes)

    def product(self, other: "Query") -> "Product":
        return Product(self, other)

    def union(self, other: "Query") -> "Union":
        return Union(self, other)

    def difference(self, other: "Query") -> "Difference":
        return Difference(self, other)

    def intersect(self, other: "Query") -> "Intersection":
        return Intersection(self, other)

    def rename(self, mapping: Mapping[str, str]) -> "Rename":
        return Rename(self, mapping)

    def divide(self, other: "Query") -> "Division":
        return Division(self, other)

    def natural_join(self, other: "Query") -> "NaturalJoin":
        return NaturalJoin(self, other)

    def __str__(self) -> str:
        from .pretty import to_text

        return to_text(self)


@dataclass(frozen=True)
class RelationRef(Query):
    """Reference to a base relation by name."""

    name: str

    def output_attributes(self, schema: DatabaseSchema) -> tuple[str, ...]:
        return schema[self.name].attributes


@dataclass(frozen=True)
class ConstantRelation(Query):
    """An inline constant relation (a literal table in the query)."""

    attributes: tuple[str, ...]
    rows: tuple[tuple, ...]

    def __init__(self, attributes: Sequence[str], rows: Iterable[Sequence[Any]] = ()):
        object.__setattr__(self, "attributes", tuple(attributes))
        object.__setattr__(self, "rows", tuple(tuple(r) for r in rows))

    def output_attributes(self, schema: DatabaseSchema) -> tuple[str, ...]:
        return self.attributes


@dataclass(frozen=True)
class Selection(Query):
    """σ_θ(Q): keep the rows satisfying the selection condition."""

    child: Query
    condition: Condition = field(default_factory=TrueCondition)

    def children(self) -> tuple[Query, ...]:
        return (self.child,)

    def output_attributes(self, schema: DatabaseSchema) -> tuple[str, ...]:
        return self.child.output_attributes(schema)


@dataclass(frozen=True)
class Projection(Query):
    """π_α(Q): keep only the listed attributes (in the listed order)."""

    child: Query
    attributes: tuple[str, ...]

    def __init__(self, child: Query, attributes: Sequence[str]):
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "attributes", tuple(attributes))

    def children(self) -> tuple[Query, ...]:
        return (self.child,)

    def output_attributes(self, schema: DatabaseSchema) -> tuple[str, ...]:
        return self.attributes


@dataclass(frozen=True)
class Product(Query):
    """Q1 × Q2: Cartesian product.  Attribute names must be disjoint."""

    left: Query
    right: Query

    def children(self) -> tuple[Query, ...]:
        return (self.left, self.right)

    def output_attributes(self, schema: DatabaseSchema) -> tuple[str, ...]:
        left_attrs = self.left.output_attributes(schema)
        right_attrs = self.right.output_attributes(schema)
        overlap = set(left_attrs) & set(right_attrs)
        if overlap:
            raise ValueError(
                f"product with overlapping attributes {sorted(overlap)}; rename first"
            )
        return left_attrs + right_attrs


@dataclass(frozen=True)
class Union(Query):
    """Q1 ∪ Q2.  Children must have the same arity; names come from the left."""

    left: Query
    right: Query

    def children(self) -> tuple[Query, ...]:
        return (self.left, self.right)

    def output_attributes(self, schema: DatabaseSchema) -> tuple[str, ...]:
        return _compatible_attributes(self, schema)


@dataclass(frozen=True)
class Difference(Query):
    """Q1 − Q2."""

    left: Query
    right: Query

    def children(self) -> tuple[Query, ...]:
        return (self.left, self.right)

    def output_attributes(self, schema: DatabaseSchema) -> tuple[str, ...]:
        return _compatible_attributes(self, schema)


@dataclass(frozen=True)
class Intersection(Query):
    """Q1 ∩ Q2."""

    left: Query
    right: Query

    def children(self) -> tuple[Query, ...]:
        return (self.left, self.right)

    def output_attributes(self, schema: DatabaseSchema) -> tuple[str, ...]:
        return _compatible_attributes(self, schema)


@dataclass(frozen=True)
class Rename(Query):
    """ρ: rename output attributes according to a mapping old → new."""

    child: Query
    mapping: tuple[tuple[str, str], ...]

    def __init__(self, child: Query, mapping: Mapping[str, str]):
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "mapping", tuple(sorted(mapping.items())))

    def mapping_dict(self) -> dict[str, str]:
        return dict(self.mapping)

    def children(self) -> tuple[Query, ...]:
        return (self.child,)

    def output_attributes(self, schema: DatabaseSchema) -> tuple[str, ...]:
        mapping = self.mapping_dict()
        return tuple(mapping.get(a, a) for a in self.child.output_attributes(schema))


@dataclass(frozen=True)
class Division(Query):
    """R ÷ S (Section 4.1).

    For ``R`` over attributes ``A₁..Aₙ B₁..Bₘ`` and ``S`` over ``B₁..Bₘ``,
    the division contains the tuples ``ā`` over ``A₁..Aₙ`` such that
    ``(ā, b̄) ∈ R`` for every ``b̄ ∈ S``.
    """

    left: Query
    right: Query

    def children(self) -> tuple[Query, ...]:
        return (self.left, self.right)

    def output_attributes(self, schema: DatabaseSchema) -> tuple[str, ...]:
        left_attrs = self.left.output_attributes(schema)
        right_attrs = self.right.output_attributes(schema)
        missing = [a for a in right_attrs if a not in left_attrs]
        if missing:
            raise ValueError(f"division: divisor attributes {missing} not in dividend")
        return tuple(a for a in left_attrs if a not in right_attrs)


@dataclass(frozen=True)
class DomainRelation(Query):
    """``Dom^k``: the k-th Cartesian power of the active domain of the database.

    Used by the Figure 2a translation.  The attribute names are synthetic
    (``_dom1``, ``_dom2``, ...) unless explicitly provided.
    """

    attributes: tuple[str, ...]

    def __init__(self, arity_or_attributes: int | Sequence[str]):
        if isinstance(arity_or_attributes, int):
            attrs = tuple(f"_dom{i + 1}" for i in range(arity_or_attributes))
        else:
            attrs = tuple(arity_or_attributes)
        object.__setattr__(self, "attributes", attrs)

    def output_attributes(self, schema: DatabaseSchema) -> tuple[str, ...]:
        return self.attributes


@dataclass(frozen=True)
class UnifAntiSemiJoin(Query):
    """Q1 ⋉⇑ Q2: rows of Q1 that do not unify with any row of Q2.

    This is the anti-semijoin whose join condition is *unifiability* of
    tuples (Section 4.2): ``r̄`` and ``s̄`` match when some valuation makes
    them equal.  Children must have the same arity; attribute names come
    from the left child.
    """

    left: Query
    right: Query

    def children(self) -> tuple[Query, ...]:
        return (self.left, self.right)

    def output_attributes(self, schema: DatabaseSchema) -> tuple[str, ...]:
        left_attrs = self.left.output_attributes(schema)
        right_attrs = self.right.output_attributes(schema)
        if len(left_attrs) != len(right_attrs):
            raise ValueError(
                "unification anti-semijoin requires children of equal arity: "
                f"{left_attrs} vs {right_attrs}"
            )
        return left_attrs


@dataclass(frozen=True)
class NaturalJoin(Query):
    """Natural join on the shared attribute names."""

    left: Query
    right: Query

    def children(self) -> tuple[Query, ...]:
        return (self.left, self.right)

    def output_attributes(self, schema: DatabaseSchema) -> tuple[str, ...]:
        left_attrs = self.left.output_attributes(schema)
        right_attrs = self.right.output_attributes(schema)
        return left_attrs + tuple(a for a in right_attrs if a not in left_attrs)


@dataclass(frozen=True)
class SemiJoin(Query):
    """Q1 ⋉ Q2: rows of Q1 that join with some row of Q2 on the shared attributes."""

    left: Query
    right: Query

    def children(self) -> tuple[Query, ...]:
        return (self.left, self.right)

    def output_attributes(self, schema: DatabaseSchema) -> tuple[str, ...]:
        return self.left.output_attributes(schema)


@dataclass(frozen=True)
class AntiSemiJoin(Query):
    """Q1 ▷ Q2: rows of Q1 that join with no row of Q2 on the shared attributes."""

    left: Query
    right: Query

    def children(self) -> tuple[Query, ...]:
        return (self.left, self.right)

    def output_attributes(self, schema: DatabaseSchema) -> tuple[str, ...]:
        return self.left.output_attributes(schema)


@dataclass(frozen=True)
class EquiJoin(Query):
    """Physical hash equi-join: ``σ_{a₁=b₁ ∧ …}(Q1 × Q2)`` without the product.

    Not part of the paper's algebra — introduced by the optimizer
    (:mod:`repro.algebra.optimize`) when a selection over a Cartesian
    product carries attribute-to-attribute equality conditions.  The
    output attributes and multiplicities are exactly those of the
    selected product; how null join keys behave follows the evaluator's
    ``condition_mode`` (a null equals only itself under naïve
    evaluation, while under 3VL a comparison with a null is unknown and
    the row is dropped), so the node itself is mode-agnostic.

    ``pairs`` lists ``(left_attribute, right_attribute)`` equalities.

    ``build`` optionally pins which side the hash table is built on
    (``"left"`` / ``"right"``), chosen by the optimizer from estimated
    cardinalities (:mod:`repro.algebra.stats`) so sharded fragments can
    plan before materialising; ``None`` lets the evaluator fall back to
    comparing the actual input sizes.  The choice affects cost only —
    both orders produce identical rows and multiplicities.
    """

    left: Query
    right: Query
    pairs: tuple[tuple[str, str], ...]
    build: str | None

    def __init__(
        self,
        left: Query,
        right: Query,
        pairs: Iterable[Sequence[str]],
        build: str | None = None,
    ):
        if build not in (None, "left", "right"):
            raise ValueError(
                f"EquiJoin build side must be 'left', 'right' or None, not {build!r}"
            )
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)
        object.__setattr__(self, "pairs", tuple((a, b) for a, b in pairs))
        object.__setattr__(self, "build", build)

    def children(self) -> tuple[Query, ...]:
        return (self.left, self.right)

    def output_attributes(self, schema: DatabaseSchema) -> tuple[str, ...]:
        left_attrs = self.left.output_attributes(schema)
        right_attrs = self.right.output_attributes(schema)
        overlap = set(left_attrs) & set(right_attrs)
        if overlap:
            raise ValueError(
                f"equi-join with overlapping attributes {sorted(overlap)}; rename first"
            )
        return left_attrs + right_attrs


@dataclass(frozen=True)
class ConstrainedDomainRelation(Query):
    """``σ_θ(Dom^k)`` enumerated directly instead of materialised then filtered.

    Physical counterpart of a selection over :class:`DomainRelation`,
    introduced by the optimizer.  The full condition is kept and
    re-checked per enumerated tuple (in the evaluator's own condition
    mode), so the node is sound in every mode; the derived fields only
    *prune* the enumeration with necessary consequences of the
    condition:

    * ``groups`` — attribute classes forced equal by ``A = B`` conjuncts
      (enumerated with one shared value per class);
    * ``bindings`` — attributes pinned to a literal by ``A = c``;
    * ``require_const`` / ``require_null`` — attributes guarded by
      ``const(A)`` / ``null(A)`` conjuncts.
    """

    attributes: tuple[str, ...]
    condition: Condition
    groups: tuple[tuple[str, ...], ...] = ()
    bindings: tuple[tuple[str, Any], ...] = ()
    require_const: tuple[str, ...] = ()
    require_null: tuple[str, ...] = ()

    def __init__(
        self,
        attributes: Sequence[str],
        condition: Condition,
        groups: Iterable[Sequence[str]] = (),
        bindings: Iterable[Sequence[Any]] = (),
        require_const: Sequence[str] = (),
        require_null: Sequence[str] = (),
    ):
        object.__setattr__(self, "attributes", tuple(attributes))
        object.__setattr__(self, "condition", condition)
        object.__setattr__(self, "groups", tuple(tuple(g) for g in groups))
        object.__setattr__(self, "bindings", tuple((a, v) for a, v in bindings))
        object.__setattr__(self, "require_const", tuple(require_const))
        object.__setattr__(self, "require_null", tuple(require_null))

    def output_attributes(self, schema: DatabaseSchema) -> tuple[str, ...]:
        return self.attributes


def _compatible_attributes(node: Query, schema: DatabaseSchema) -> tuple[str, ...]:
    left_attrs = node.left.output_attributes(schema)  # type: ignore[attr-defined]
    right_attrs = node.right.output_attributes(schema)  # type: ignore[attr-defined]
    if len(left_attrs) != len(right_attrs):
        raise ValueError(
            f"{type(node).__name__} requires children of equal arity: "
            f"{left_attrs} vs {right_attrs}"
        )
    return left_attrs


def walk(query: Query):
    """Yield every node of the query tree (pre-order)."""
    yield query
    for child in query.children():
        yield from walk(child)


def operator_count(query: Query) -> dict[str, int]:
    """Count operator occurrences by class name; used in reports and ablations."""
    counts: dict[str, int] = {}
    for node in walk(query):
        name = type(node).__name__
        counts[name] = counts.get(name, 0) + 1
    return counts
