"""Convenience constructors for building relational algebra queries.

The functions here are thin wrappers around the AST classes with the
names used in the paper (σ, π, and so on spelled out), plus a few common
derived forms (theta-join, attribute equality selections over products).
They keep the examples, workloads and tests readable.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from . import ast
from .conditions import (
    And,
    Attr,
    Condition,
    Eq,
    Literal,
    Neq,
    conjoin,
)

__all__ = [
    "relation",
    "constant_table",
    "select",
    "project",
    "product",
    "union",
    "difference",
    "intersection",
    "rename",
    "division",
    "dom",
    "unif_antijoin",
    "natural_join",
    "semijoin",
    "antijoin",
    "theta_join",
    "eq",
    "neq",
    "attr",
    "lit",
]


def relation(name: str) -> ast.RelationRef:
    """Reference a base relation by name."""
    return ast.RelationRef(name)


def constant_table(attributes: Sequence[str], rows: Sequence[Sequence[Any]]) -> ast.ConstantRelation:
    """An inline table literal."""
    return ast.ConstantRelation(attributes, rows)


def select(child: ast.Query, condition: Condition) -> ast.Selection:
    """σ_condition(child)."""
    return ast.Selection(child, condition)


def project(child: ast.Query, attributes: Sequence[str]) -> ast.Projection:
    """π_attributes(child)."""
    return ast.Projection(child, attributes)


def product(left: ast.Query, right: ast.Query) -> ast.Product:
    """left × right (attribute names must be disjoint)."""
    return ast.Product(left, right)


def union(left: ast.Query, right: ast.Query) -> ast.Union:
    """left ∪ right."""
    return ast.Union(left, right)


def difference(left: ast.Query, right: ast.Query) -> ast.Difference:
    """left − right."""
    return ast.Difference(left, right)


def intersection(left: ast.Query, right: ast.Query) -> ast.Intersection:
    """left ∩ right."""
    return ast.Intersection(left, right)


def rename(child: ast.Query, mapping: Mapping[str, str]) -> ast.Rename:
    """ρ_mapping(child)."""
    return ast.Rename(child, mapping)


def division(left: ast.Query, right: ast.Query) -> ast.Division:
    """left ÷ right."""
    return ast.Division(left, right)


def dom(arity_or_attributes) -> ast.DomainRelation:
    """Dom^k: the k-fold product of the active domain."""
    return ast.DomainRelation(arity_or_attributes)


def unif_antijoin(left: ast.Query, right: ast.Query) -> ast.UnifAntiSemiJoin:
    """left ⋉⇑ right: rows of left unifiable with no row of right."""
    return ast.UnifAntiSemiJoin(left, right)


def natural_join(left: ast.Query, right: ast.Query) -> ast.NaturalJoin:
    """Natural join on shared attribute names."""
    return ast.NaturalJoin(left, right)


def semijoin(left: ast.Query, right: ast.Query) -> ast.SemiJoin:
    """left ⋉ right on shared attribute names."""
    return ast.SemiJoin(left, right)


def antijoin(left: ast.Query, right: ast.Query) -> ast.AntiSemiJoin:
    """left ▷ right on shared attribute names."""
    return ast.AntiSemiJoin(left, right)


def theta_join(left: ast.Query, right: ast.Query, condition: Condition) -> ast.Selection:
    """σ_condition(left × right)."""
    return ast.Selection(ast.Product(left, right), condition)


def eq(left: Any, right: Any) -> Eq:
    """Equality condition; strings are attribute names, other values literals."""
    return Eq(left, right)


def neq(left: Any, right: Any) -> Neq:
    """Disequality condition; strings are attribute names, other values literals."""
    return Neq(left, right)


def attr(name: str) -> Attr:
    """An attribute term (for when a string would be ambiguous)."""
    return Attr(name)


def lit(value: Any) -> Literal:
    """A literal term (for when the literal is a string)."""
    return Literal(value)


def equijoin_condition(pairs: Sequence[tuple[str, str]]) -> Condition:
    """A conjunction of attribute equalities, e.g. for explicit join conditions."""
    return conjoin([Eq(Attr(a), Attr(b)) for a, b in pairs])
