"""Pretty printing of relational algebra queries.

Produces a compact single-line rendering using the paper's symbols
(σ, π, ×, ∪, −, ∩, ÷, ⋉⇑) and an indented multi-line rendering for
larger queries; both are used by the examples and by EXPERIMENTS.md
tables.
"""

from __future__ import annotations

from . import ast

__all__ = ["to_text", "to_tree_text"]


def to_text(query: ast.Query) -> str:
    """A compact, single-line rendering of the query."""
    if isinstance(query, ast.RelationRef):
        return query.name
    if isinstance(query, ast.ConstantRelation):
        return f"⟨{len(query.rows)} rows⟩"
    if isinstance(query, ast.DomainRelation):
        return f"Dom^{len(query.attributes)}"
    if isinstance(query, ast.Selection):
        return f"σ[{query.condition}]({to_text(query.child)})"
    if isinstance(query, ast.Projection):
        return f"π[{', '.join(query.attributes)}]({to_text(query.child)})"
    if isinstance(query, ast.Rename):
        renames = ", ".join(f"{old}→{new}" for old, new in query.mapping)
        return f"ρ[{renames}]({to_text(query.child)})"
    if isinstance(query, ast.Product):
        return f"({to_text(query.left)} × {to_text(query.right)})"
    if isinstance(query, ast.Union):
        return f"({to_text(query.left)} ∪ {to_text(query.right)})"
    if isinstance(query, ast.Difference):
        return f"({to_text(query.left)} − {to_text(query.right)})"
    if isinstance(query, ast.Intersection):
        return f"({to_text(query.left)} ∩ {to_text(query.right)})"
    if isinstance(query, ast.Division):
        return f"({to_text(query.left)} ÷ {to_text(query.right)})"
    if isinstance(query, ast.UnifAntiSemiJoin):
        return f"({to_text(query.left)} ⋉⇑ {to_text(query.right)})"
    if isinstance(query, ast.NaturalJoin):
        return f"({to_text(query.left)} ⋈ {to_text(query.right)})"
    if isinstance(query, ast.SemiJoin):
        return f"({to_text(query.left)} ⋉ {to_text(query.right)})"
    if isinstance(query, ast.AntiSemiJoin):
        return f"({to_text(query.left)} ▷ {to_text(query.right)})"
    if isinstance(query, ast.EquiJoin):
        pairs = ", ".join(f"{a}={b}" for a, b in query.pairs)
        return f"({to_text(query.left)} ⋈ₕ[{pairs}] {to_text(query.right)})"
    if isinstance(query, ast.ConstrainedDomainRelation):
        return f"Dom^{len(query.attributes)}[{query.condition}]"
    return f"<{type(query).__name__}>"


def to_tree_text(query: ast.Query, indent: int = 0) -> str:
    """An indented, one-node-per-line rendering of the query tree."""
    pad = "  " * indent
    label = _node_label(query)
    lines = [f"{pad}{label}"]
    for child in query.children():
        lines.append(to_tree_text(child, indent + 1))
    return "\n".join(lines)


def _node_label(query: ast.Query) -> str:
    if isinstance(query, ast.RelationRef):
        return f"Relation {query.name}"
    if isinstance(query, ast.ConstantRelation):
        return f"Constant table ({len(query.rows)} rows)"
    if isinstance(query, ast.DomainRelation):
        return f"Dom^{len(query.attributes)}"
    if isinstance(query, ast.Selection):
        return f"σ {query.condition}"
    if isinstance(query, ast.Projection):
        return f"π {', '.join(query.attributes)}"
    if isinstance(query, ast.Rename):
        return "ρ " + ", ".join(f"{old}→{new}" for old, new in query.mapping)
    if isinstance(query, ast.EquiJoin):
        return "⋈ₕ " + ", ".join(f"{a}={b}" for a, b in query.pairs)
    if isinstance(query, ast.ConstrainedDomainRelation):
        return f"Dom^{len(query.attributes)} σ {query.condition}"
    return {
        ast.Product: "×",
        ast.Union: "∪",
        ast.Difference: "−",
        ast.Intersection: "∩",
        ast.Division: "÷",
        ast.UnifAntiSemiJoin: "⋉⇑",
        ast.NaturalJoin: "⋈",
        ast.SemiJoin: "⋉",
        ast.AntiSemiJoin: "▷",
    }.get(type(query), type(query).__name__)
