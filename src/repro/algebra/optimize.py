"""Rule-based optimization of relational algebra plans.

Every evaluation strategy in the repro ultimately evaluates relational
algebra trees, and the trees it evaluates are dominated by one shape:
``Selection(Product(...))``.  The textbook evaluator materialises the
whole Cartesian product and filters afterwards, and the Figure 2
rewritings make that shape *worse* — the (Qt, Qf) translation
mechanically emits Product towers guarded by θ*-selections plus eagerly
enumerated ``Dom^k`` relations.  This module rewrites such plans into
equivalent ones that never build the product:

* **Logical rules** (applied to a fixpoint): split conjunctive
  selections, push selections through ×/∪/∩/−/ρ/π/⋈/⋉ toward the
  leaves, drop trivial selections, push projections through ×/ρ/π so
  unused columns are pruned early.
* **Physical rules** (one bottom-up pass): convert selections over a
  Product whose conditions contain attribute-to-attribute equalities
  into a hash :class:`~repro.algebra.ast.EquiJoin`, and convert
  selections over ``Dom^k`` into a
  :class:`~repro.algebra.ast.ConstrainedDomainRelation` whose
  enumeration is pruned by the selection instead of materialising
  ``Dom^k`` and filtering.  With a :class:`~repro.algebra.stats.Stats`
  provider (``optimize_plan(..., stats=...)``), the pass additionally
  *reorders joins across whole Product towers* greedily by estimated
  output cardinality and pins each ``EquiJoin``'s hash build side from
  the estimates (``build="left"``/``"right"``), so plans are chosen
  before anything materialises; without stats the pass keeps the PR 4
  behaviour (adjacent pairs, build side decided from actual input sizes
  at evaluation time).

**Per-mode soundness.**  The evaluator's two condition modes differ on
nulls (naïve two-valued evaluation treats a null as a value equal only
to itself; 3VL makes any comparison with a null *unknown* and keeps
only Kleene-true rows), so each rule declares the condition modes it is
sound in and the optimizer only applies rules sound for the requested
mode.  Most rules are mode-agnostic because they only *move* conditions
without changing what any condition evaluates to on any row; the
exception is ``trivial-self-equality`` (``σ_{A=A}(Q) → Q``), which
holds under naïve evaluation but not under 3VL, where ``σ_{A=A}``
filters out rows with a null in ``A``.  The physical nodes re-check
their conditions in the evaluator's own mode, so they are sound in
both.  All rules preserve bag multiplicities, hence set and bag
semantics alike.

Equivalence is enforced by the randomized harness in
``tests/test_optimizer_equivalence.py`` (all six engine strategies,
set and bag semantics, both condition modes, monolithic and sharded).

The optimizer is pure and memoised: optimizing the same plan against
the same schema twice is a dictionary hit, which matters for the
strategies that evaluate one plan per possible world (``exact-certain``)
or per shard.  Once plans depend on statistics the memo key must too —
``optimize_plan`` folds ``stats.key()`` (a stable summary of every
relation's statistics) into the key, so a mutated database replans
instead of being served the stale physical plan its old statistics
chose.
"""

from __future__ import annotations

import threading
import warnings
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Mapping

from ..datamodel.schema import DatabaseSchema, RelationSchema
from ..datamodel.values import is_const
from . import ast as ra
from .conditions import (
    And,
    Attr,
    Comparison,
    Condition,
    Eq,
    FalseCondition,
    IsConst,
    IsNull,
    Neq,
    Not,
    Or,
    TrueCondition,
    attrs_in_condition,
    conjoin,
)
from .stats import PlanEstimator, Stats

__all__ = [
    "Rule",
    "OPTIMIZER_RULES",
    "optimize_plan",
    "clear_optimize_memo",
    "split_conjuncts",
    "rename_condition",
    "describe_rules",
]

#: How many node rewrites one optimization may perform before giving up
#: and returning the plan as-is (a safety valve, not a tuning knob: the
#: rules only move selections/projections downward, so real plans
#: converge long before this).
REWRITE_BUDGET = 20_000


# ----------------------------------------------------------------------
# Condition helpers
# ----------------------------------------------------------------------
def split_conjuncts(condition: Condition) -> list[Condition]:
    """Flatten a conjunction into its list of conjuncts (itself if not ∧)."""
    if isinstance(condition, And):
        return split_conjuncts(condition.left) + split_conjuncts(condition.right)
    return [condition]


def rename_condition(condition: Condition, mapping: Mapping[str, str]) -> Condition:
    """Rewrite every attribute reference through ``mapping`` (one pass)."""
    if not mapping:
        return condition

    def term(t):
        if isinstance(t, Attr) and t.name in mapping:
            return Attr(mapping[t.name])
        return t

    if isinstance(condition, (TrueCondition, FalseCondition)):
        return condition
    if isinstance(condition, IsConst):
        return IsConst(term(condition.term))
    if isinstance(condition, IsNull):
        return IsNull(term(condition.term))
    if isinstance(condition, Comparison):
        return type(condition)(term(condition.left), term(condition.right))
    if isinstance(condition, And):
        return And(
            rename_condition(condition.left, mapping),
            rename_condition(condition.right, mapping),
        )
    if isinstance(condition, Or):
        return Or(
            rename_condition(condition.left, mapping),
            rename_condition(condition.right, mapping),
        )
    if isinstance(condition, Not):
        return Not(rename_condition(condition.operand, mapping))
    raise TypeError(f"cannot rename condition of type {type(condition).__name__}")


# ----------------------------------------------------------------------
# The rule table
# ----------------------------------------------------------------------
BOTH_MODES = frozenset({"naive", "3vl"})
NAIVE_ONLY = frozenset({"naive"})


@dataclass(frozen=True)
class Rule:
    """One rewrite rule with its soundness declaration.

    For ``phase == "logical"``, ``fn(optimizer, node)`` returns the
    rewritten node or ``None`` when the rule does not apply; the
    fixpoint driver calls it directly.  For ``phase == "physical"`` the
    entry is declarative only — the transforms need the whole selection
    stack, so :meth:`_PlanOptimizer.physical_pass` dispatches them
    structurally by rule *name*, consulting the same per-mode gate
    (``fn`` is a never-called placeholder there; do not invoke it).
    ``modes`` lists the condition modes the rule is sound in; the
    optimizer skips rules whose modes do not include the requested one.
    """

    name: str
    description: str
    modes: frozenset
    phase: str
    fn: Callable


# -- logical rules ------------------------------------------------------
def _rule_drop_true_selection(opt, node):
    if isinstance(node, ra.Selection) and isinstance(node.condition, TrueCondition):
        return node.child
    return None


def _rule_empty_false_selection(opt, node):
    if isinstance(node, ra.Selection) and isinstance(node.condition, FalseCondition):
        return ra.ConstantRelation(opt.attrs(node.child), ())
    return None


def _rule_trivial_self_equality(opt, node):
    # σ_{A=A}(Q) → Q.  Naïve mode only: under 3VL the comparison is
    # unknown on rows where A is null, so the selection filters them.
    if not (isinstance(node, ra.Selection) and isinstance(node.condition, Eq)):
        return None
    left, right = node.condition.left, node.condition.right
    if (
        isinstance(left, Attr)
        and isinstance(right, Attr)
        and left.name == right.name
        and left.name in opt.attrs(node.child)
    ):
        return node.child
    return None


def _rule_trivial_self_disequality(opt, node):
    # σ_{A≠A}(Q) → ∅.  Sound in both modes: naïvely v ≠ v is false for
    # every value, and under 3VL the comparison is false on constants
    # and unknown on nulls — never Kleene-true.
    if not (isinstance(node, ra.Selection) and isinstance(node.condition, Neq)):
        return None
    left, right = node.condition.left, node.condition.right
    if (
        isinstance(left, Attr)
        and isinstance(right, Attr)
        and left.name == right.name
        and left.name in opt.attrs(node.child)
    ):
        return ra.ConstantRelation(opt.attrs(node.child), ())
    return None


def _rule_split_conjunction(opt, node):
    if isinstance(node, ra.Selection) and isinstance(node.condition, And):
        return ra.Selection(
            ra.Selection(node.child, node.condition.right), node.condition.left
        )
    return None


def _rule_push_selection_projection(opt, node):
    if not (isinstance(node, ra.Selection) and isinstance(node.child, ra.Projection)):
        return None
    projection = node.child
    if not attrs_in_condition(node.condition) <= set(projection.attributes):
        return None
    return ra.Projection(
        ra.Selection(projection.child, node.condition), projection.attributes
    )


def _rule_push_selection_rename(opt, node):
    if not (isinstance(node, ra.Selection) and isinstance(node.child, ra.Rename)):
        return None
    rename = node.child
    # The condition must reference only the rename's *output* attributes;
    # pushing an invalid reference below the rename would resolve it
    # against the pre-rename names and silently repair a malformed plan.
    if not attrs_in_condition(node.condition) <= set(opt.attrs(rename)):
        return None
    mapping = rename.mapping_dict()
    # A mapping entry whose old name is absent from the child is a no-op
    # for Rename (``mapping.get(a, a)``); inverting it would rewrite the
    # condition to reference an attribute the child does not have.
    child_attrs = set(opt.attrs(rename.child))
    effective = {old: new for old, new in mapping.items() if old in child_attrs}
    inverse = {new: old for old, new in effective.items()}
    if len(inverse) != len(effective):  # non-invertible rename: leave alone
        return None
    return ra.Rename(
        ra.Selection(rename.child, rename_condition(node.condition, inverse)), mapping
    )


def _rule_push_selection_setop(opt, node):
    # σ_θ(A ∪ B) → σ_θ(A) ∪ σ_θ'(B); same for ∩ (both sides) and − (the
    # left side only: filtering the subtrahend changes what survives).
    # The right child may use different attribute names (set operations
    # are positional, names come from the left), so θ is renamed
    # positionally for the right side.
    if not (
        isinstance(node, ra.Selection)
        and isinstance(node.child, (ra.Union, ra.Intersection, ra.Difference))
    ):
        return None
    child = node.child
    left_attrs = opt.attrs(child.left)
    if not attrs_in_condition(node.condition) <= set(left_attrs):
        return None
    left_selected = ra.Selection(child.left, node.condition)
    if isinstance(child, ra.Difference):
        return ra.Difference(left_selected, child.right)
    right_attrs = opt.attrs(child.right)
    mapping = {l: r for l, r in zip(left_attrs, right_attrs) if l != r}
    right_condition = rename_condition(node.condition, mapping)
    return type(child)(left_selected, ra.Selection(child.right, right_condition))


def _rule_push_selection_product(opt, node):
    # σ_θ(A × B) → σ_θ(A) × B when θ only reads A's attributes (and
    # symmetrically); also the left side of ⋈/⋉/▷ and of the unification
    # anti-semijoin, whose outputs keep every left attribute.  For the
    # Figure 2a translation the last case is the one that pays: its base
    # case is ``UnifAntiSemiJoin(Dom^k, R)``, so pushing θ* selections
    # into the Dom side lets the physical constrain-domain rule prune
    # the ``Dom^k`` enumeration instead of materialising it.  (The
    # anti-semijoin keeps a left row based only on that row and the
    # right side, so filtering the left first commutes in both condition
    # modes and preserves multiplicities.)
    if not isinstance(node, ra.Selection):
        return None
    child = node.child
    condition_attrs = attrs_in_condition(node.condition)
    if isinstance(child, (ra.Product, ra.EquiJoin)):
        left_attrs = set(opt.attrs(child.left))
        right_attrs = set(opt.attrs(child.right))
        if condition_attrs <= left_attrs:
            return opt.with_children(
                child, (ra.Selection(child.left, node.condition), child.right)
            )
        if condition_attrs <= right_attrs:
            return opt.with_children(
                child, (child.left, ra.Selection(child.right, node.condition))
            )
        return None
    if isinstance(
        child, (ra.NaturalJoin, ra.SemiJoin, ra.AntiSemiJoin, ra.UnifAntiSemiJoin)
    ):
        if condition_attrs <= set(opt.attrs(child.left)):
            return type(child)(ra.Selection(child.left, node.condition), child.right)
    return None


def _rule_collapse_projection(opt, node):
    if (
        isinstance(node, ra.Projection)
        and isinstance(node.child, ra.Projection)
        and set(node.attributes) <= set(node.child.attributes)
        # The inner projection must itself be valid: collapsing an inner
        # π that references attributes missing from its child would
        # swallow the KeyError the plan is due to raise.
        and set(node.child.attributes) <= set(opt.attrs(node.child.child))
    ):
        return ra.Projection(node.child.child, node.attributes)
    return None


def _rule_identity_projection(opt, node):
    if isinstance(node, ra.Projection) and node.attributes == opt.attrs(node.child):
        return node.child
    return None


def _rule_push_projection_rename(opt, node):
    if not (isinstance(node, ra.Projection) and isinstance(node.child, ra.Rename)):
        return None
    rename = node.child
    # Only push projections that reference the rename's actual output —
    # see the matching guard in _rule_push_selection_rename.
    if not set(node.attributes) <= set(opt.attrs(rename)):
        return None
    mapping = rename.mapping_dict()
    # Ignore no-op mapping entries (old name absent from the child), as
    # in _rule_push_selection_rename: inverting one would project a
    # nonexistent attribute.
    child_attrs = set(opt.attrs(rename.child))
    effective = {old: new for old, new in mapping.items() if old in child_attrs}
    inverse = {new: old for old, new in effective.items()}
    if len(inverse) != len(effective):
        return None
    kept = set(node.attributes)
    inner_attrs = tuple(inverse.get(a, a) for a in node.attributes)
    restricted = {old: new for old, new in effective.items() if new in kept}
    inner = ra.Projection(rename.child, inner_attrs)
    return ra.Rename(inner, restricted) if restricted else inner


def _rule_split_projection_product(opt, node):
    # π_α(A × B) → π_α(π_{α∩A}(A) × π_{α∩B}(B)): prune the columns a
    # product carries before it multiplies them out.
    if not (isinstance(node, ra.Projection) and isinstance(node.child, ra.Product)):
        return None
    product = node.child
    kept = set(node.attributes)
    left_attrs = opt.attrs(product.left)
    right_attrs = opt.attrs(product.right)
    left_kept = tuple(a for a in left_attrs if a in kept)
    right_kept = tuple(a for a in right_attrs if a in kept)
    if left_kept == left_attrs and right_kept == right_attrs:
        return None  # nothing to prune (also the fixpoint guard)
    return ra.Projection(
        ra.Product(
            ra.Projection(product.left, left_kept),
            ra.Projection(product.right, right_kept),
        ),
        node.attributes,
    )


# -- physical rules ----------------------------------------------------
# Declarative placeholders: the actual transforms live in
# _PlanOptimizer.physical_pass (they consume whole σ-stacks, which the
# per-node fn contract cannot express) and are gated there by rule name
# through the same modes filter as the logical rules.
def _rule_hash_equijoin(opt, node):  # pragma: no cover - see physical_pass
    return None


def _rule_reorder_joins(opt, node):  # pragma: no cover - see physical_pass
    return None


def _rule_constrain_domain(opt, node):  # pragma: no cover - see physical_pass
    return None


OPTIMIZER_RULES: tuple[Rule, ...] = (
    Rule(
        "drop-true-selection",
        "σ_true(Q) → Q",
        BOTH_MODES,
        "logical",
        _rule_drop_true_selection,
    ),
    Rule(
        "empty-false-selection",
        "σ_false(Q) → ∅ (a rowless constant table over Q's attributes)",
        BOTH_MODES,
        "logical",
        _rule_empty_false_selection,
    ),
    Rule(
        "trivial-self-equality",
        "σ_{A=A}(Q) → Q — naïve mode only (3VL filters null A)",
        NAIVE_ONLY,
        "logical",
        _rule_trivial_self_equality,
    ),
    Rule(
        "trivial-self-disequality",
        "σ_{A≠A}(Q) → ∅",
        BOTH_MODES,
        "logical",
        _rule_trivial_self_disequality,
    ),
    Rule(
        "split-conjunction",
        "σ_{θ₁∧θ₂}(Q) → σ_{θ₁}(σ_{θ₂}(Q))",
        BOTH_MODES,
        "logical",
        _rule_split_conjunction,
    ),
    Rule(
        "push-selection-projection",
        "σ_θ(π_α(Q)) → π_α(σ_θ(Q))",
        BOTH_MODES,
        "logical",
        _rule_push_selection_projection,
    ),
    Rule(
        "push-selection-rename",
        "σ_θ(ρ_m(Q)) → ρ_m(σ_{m⁻¹(θ)}(Q))",
        BOTH_MODES,
        "logical",
        _rule_push_selection_rename,
    ),
    Rule(
        "push-selection-setop",
        "σ_θ(A ∪/∩ B) → σ_θ(A) ∪/∩ σ_θ(B);  σ_θ(A − B) → σ_θ(A) − B",
        BOTH_MODES,
        "logical",
        _rule_push_selection_setop,
    ),
    Rule(
        "push-selection-product",
        "σ_θ(A × B) → σ_θ(A) × B when attrs(θ) ⊆ attrs(A) (and symmetric; "
        "left side of ⋈/⋉/▷ and of the unification anti-semijoin — which "
        "routes Figure 2a's θ* selections into the Dom^k side)",
        BOTH_MODES,
        "logical",
        _rule_push_selection_product,
    ),
    Rule(
        "collapse-projection",
        "π_α(π_β(Q)) → π_α(Q) when α ⊆ β",
        BOTH_MODES,
        "logical",
        _rule_collapse_projection,
    ),
    Rule(
        "identity-projection",
        "π_α(Q) → Q when α is exactly Q's attribute list",
        BOTH_MODES,
        "logical",
        _rule_identity_projection,
    ),
    Rule(
        "push-projection-rename",
        "π_α(ρ_m(Q)) → ρ_{m|α}(π_{m⁻¹(α)}(Q))",
        BOTH_MODES,
        "logical",
        _rule_push_projection_rename,
    ),
    Rule(
        "split-projection-product",
        "π_α(A × B) → π_α(π_{α∩A}(A) × π_{α∩B}(B))",
        BOTH_MODES,
        "logical",
        _rule_split_projection_product,
    ),
    Rule(
        "hash-equijoin",
        "σ-stack over A × B with A.x = B.y conjuncts → EquiJoin(A, B) "
        "plus residual selections (build side pinned from estimates when "
        "stats are available, else decided from actual sizes at eval time)",
        BOTH_MODES,
        "physical",
        _rule_hash_equijoin,
    ),
    Rule(
        "reorder-joins",
        "σ-stack over a whole ×/EquiJoin tower → greedy join tree ordered "
        "by estimated output cardinality (stats required; joins are "
        "commutative/associative on bags, so any order is equivalent)",
        BOTH_MODES,
        "physical",
        _rule_reorder_joins,
    ),
    Rule(
        "constrain-domain",
        "σ-stack over Dom^k → ConstrainedDomainRelation (enumeration pruned "
        "by bindings/equality groups/const-null guards, condition re-checked "
        "per tuple)",
        BOTH_MODES,
        "physical",
        _rule_constrain_domain,
    ),
)


def describe_rules() -> str:
    """A plain-text rule table (used by DESIGN.md and the examples)."""
    lines = []
    for rule in OPTIMIZER_RULES:
        modes = "+".join(sorted(rule.modes))
        lines.append(f"{rule.name:28s} [{rule.phase}, {modes}]  {rule.description}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# The optimizer
# ----------------------------------------------------------------------
class _PlanOptimizer:
    def __init__(
        self,
        schema: DatabaseSchema,
        condition_mode: str,
        bag: bool,
        physical: bool,
        stats: Stats | None = None,
    ):
        self.schema = schema
        self.condition_mode = condition_mode
        self.bag = bag
        self.physical = physical
        self.stats = stats
        self._estimator = (
            None if stats is None else PlanEstimator(schema, stats)
        )
        self._attrs_cache: dict[ra.Query, tuple[str, ...]] = {}
        self._budget = REWRITE_BUDGET
        self._logical_rules = [
            rule
            for rule in OPTIMIZER_RULES
            if rule.phase == "logical" and condition_mode in rule.modes
        ]
        # Physical rules go through the same per-mode gate as logical
        # ones: physical_pass checks membership here before applying a
        # transform, so a future mode-restricted physical rule cannot
        # silently run in a mode it did not declare.
        self._physical_rules = {
            rule.name
            for rule in OPTIMIZER_RULES
            if rule.phase == "physical" and condition_mode in rule.modes
        }

    # -- helpers -------------------------------------------------------
    def attrs(self, node: ra.Query) -> tuple[str, ...]:
        cached = self._attrs_cache.get(node)
        if cached is None:
            cached = tuple(node.output_attributes(self.schema))
            self._attrs_cache[node] = cached
        return cached

    @staticmethod
    def with_children(node: ra.Query, children) -> ra.Query:
        """Rebuild ``node`` with the given children (same operator)."""
        if isinstance(node, ra.Selection):
            return ra.Selection(children[0], node.condition)
        if isinstance(node, ra.Projection):
            return ra.Projection(children[0], node.attributes)
        if isinstance(node, ra.Rename):
            return ra.Rename(children[0], node.mapping_dict())
        if isinstance(node, ra.EquiJoin):
            return ra.EquiJoin(children[0], children[1], node.pairs, build=node.build)
        if isinstance(
            node,
            (
                ra.Product,
                ra.Union,
                ra.Difference,
                ra.Intersection,
                ra.Division,
                ra.UnifAntiSemiJoin,
                ra.NaturalJoin,
                ra.SemiJoin,
                ra.AntiSemiJoin,
            ),
        ):
            return type(node)(children[0], children[1])
        return node  # leaves

    # -- logical fixpoint ----------------------------------------------
    def rewrite(self, node: ra.Query) -> ra.Query:
        children = node.children()
        if children:
            new_children = [self.rewrite(child) for child in children]
            if tuple(new_children) != children:
                node = self.with_children(node, new_children)
        if self._budget <= 0:
            return node
        for rule in self._logical_rules:
            rewritten = rule.fn(self, node)
            if rewritten is not None and rewritten != node:
                self._budget -= 1
                return self.rewrite(rewritten)
        return node

    # -- physical pass -------------------------------------------------
    def physical_pass(self, node: ra.Query) -> ra.Query:
        if not isinstance(node, ra.Selection):
            children = node.children()
            if children:
                new_children = [self.physical_pass(child) for child in children]
                if tuple(new_children) != children:
                    node = self.with_children(node, new_children)
            return node
        # A σ-stack is one unit: gather every conjunct down to the base
        # operator *before* recursing.  Recursing into the inner
        # selections first would let an inner rewrite (in particular the
        # restore-order Projection that reorder-joins emits) hide the
        # join tower from the outer conjuncts, splitting one stack's
        # conjuncts across two half-informed rewrites.
        conjuncts: list[Condition] = []
        stack: list[ra.Selection] = []
        base: ra.Query = node
        while isinstance(base, ra.Selection):
            stack.append(base)
            conjuncts.extend(split_conjuncts(base.condition))
            base = base.child
        new_base = self.physical_pass(base)
        if isinstance(new_base, (ra.Product, ra.EquiJoin)):
            if "hash-equijoin" in self._physical_rules:
                if (
                    self._estimator is not None
                    and "reorder-joins" in self._physical_rules
                ):
                    reordered = self._reorder_joins(node, new_base, conjuncts)
                    if reordered is not None:
                        return reordered
                converted = self._to_equijoin(new_base, conjuncts)
                if converted is not None:
                    return converted
        elif "constrain-domain" in self._physical_rules:
            if isinstance(new_base, ra.DomainRelation) and new_base.attributes:
                return self._to_constrained_domain(new_base.attributes, conjuncts)
            if isinstance(new_base, ra.ConstrainedDomainRelation):
                return self._to_constrained_domain(
                    new_base.attributes,
                    split_conjuncts(new_base.condition) + conjuncts,
                )
        if new_base is base:
            return node
        rebuilt = new_base
        for selection in reversed(stack):
            rebuilt = ra.Selection(rebuilt, selection.condition)
        return rebuilt

    def _to_equijoin(self, base, conjuncts) -> ra.Query | None:
        """Turn a σ-stack over × (or an existing equi-join) into EquiJoin."""
        left_attrs = set(self.attrs(base.left))
        right_attrs = set(self.attrs(base.right))
        pairs: list[tuple[str, str]] = (
            list(base.pairs) if isinstance(base, ra.EquiJoin) else []
        )
        found_new = False
        residual: list[Condition] = []
        for conjunct in conjuncts:
            if isinstance(conjunct, Eq):
                a, b = conjunct.left, conjunct.right
                if isinstance(a, Attr) and isinstance(b, Attr):
                    if a.name in left_attrs and b.name in right_attrs:
                        pairs.append((a.name, b.name))
                        found_new = True
                        continue
                    if a.name in right_attrs and b.name in left_attrs:
                        pairs.append((b.name, a.name))
                        found_new = True
                        continue
            residual.append(conjunct)
        if not found_new:
            return None
        build = self._build_side(base.left, base.right)
        plan: ra.Query = ra.EquiJoin(base.left, base.right, pairs, build=build)
        for conjunct in residual:
            plan = ra.Selection(plan, conjunct)
        return plan

    # -- estimate-driven planning (stats required) ---------------------
    def _estimate_rows(self, node: ra.Query) -> float | None:
        """Estimated cardinality of a subplan, or None when unavailable."""
        if self._estimator is None:
            return None
        try:
            return self._estimator.estimate(node).rows
        except (ValueError, KeyError, TypeError):
            return None

    def _build_side(self, left: ra.Query, right: ra.Query) -> str | None:
        """Which side to build the hash table on, from estimates.

        Ties go to the right side, matching the evaluator's actuals
        fallback (``len(right) <= len(left)`` builds right); without
        estimates the choice is left to the evaluator entirely.
        """
        left_rows = self._estimate_rows(left)
        right_rows = self._estimate_rows(right)
        if left_rows is None or right_rows is None:
            return None
        return "left" if left_rows < right_rows else "right"

    def _reorder_joins(self, node, base, conjuncts) -> ra.Query | None:
        """Rebuild a whole ×/EquiJoin tower as a greedy cost-ordered join tree.

        The σ-stack's conjuncts, the tower's internal residual selections
        and the pairs of already-formed equi-joins all go into one pool;
        leaves become singleton components; components are then merged
        smallest-estimated-join-first (equality-connected pairs become
        hash EquiJoins, disconnected components fall back to the
        smallest Product), applying every pooled conjunct as soon as one
        component covers its attributes.  Products/joins are commutative
        and associative on bags and selections commute with both, so any
        merge order is equivalent; a final Projection restores the
        original column order (a pure permutation, multiplicity-safe).
        """
        pool: list[Condition] = []
        leaves: list[ra.Query] = []
        self._flatten_join_tree(base, leaves, pool)
        pool.extend(conjuncts)
        if len(leaves) < 2:
            return None

        components: list[tuple[ra.Query, frozenset, float]] = []
        for leaf in leaves:
            rows = self._estimate_rows(leaf)
            if rows is None:
                return None
            components.append((leaf, frozenset(self.attrs(leaf)), rows))

        def absorb(component):
            """Apply every pooled conjunct the component now covers."""
            plan, attrs, rows = component
            remaining: list[Condition] = []
            for conjunct in pool:
                if attrs_in_condition(conjunct) <= attrs:
                    plan = ra.Selection(plan, conjunct)
                else:
                    remaining.append(conjunct)
            pool[:] = remaining
            if plan is not component[0]:
                rows = self._estimate_rows(plan)
                if rows is None:
                    return None
            return (plan, attrs, rows)

        for index, component in enumerate(components):
            absorbed = absorb(component)
            if absorbed is None:
                return None
            components[index] = absorbed

        def connecting_pairs(left_attrs, right_attrs):
            pairs = []
            used = []
            for conjunct in pool:
                if isinstance(conjunct, Eq):
                    a, b = conjunct.left, conjunct.right
                    if isinstance(a, Attr) and isinstance(b, Attr):
                        if a.name in left_attrs and b.name in right_attrs:
                            pairs.append((a.name, b.name))
                            used.append(conjunct)
                            continue
                        if a.name in right_attrs and b.name in left_attrs:
                            pairs.append((b.name, a.name))
                            used.append(conjunct)
            return pairs, used

        while len(components) > 1:
            best = None  # (rows, i, j, pairs, used)
            for i in range(len(components)):
                for j in range(i + 1, len(components)):
                    left_plan, left_attrs, left_rows = components[i]
                    right_plan, right_attrs, right_rows = components[j]
                    pairs, used = connecting_pairs(left_attrs, right_attrs)
                    if not pairs:
                        continue
                    build = "left" if left_rows < right_rows else "right"
                    candidate = ra.EquiJoin(
                        left_plan, right_plan, pairs, build=build
                    )
                    rows = self._estimate_rows(candidate)
                    if rows is None:
                        return None
                    if best is None or rows < best[0]:
                        best = (rows, i, j, candidate, used)
            if best is None:
                # No equality connects any pair: cross-product the two
                # smallest components (unavoidable; keep it cheap).
                order = sorted(
                    range(len(components)), key=lambda k: components[k][2]
                )
                i, j = sorted(order[:2])
                left_plan, left_attrs, left_rows = components[i]
                right_plan, right_attrs, right_rows = components[j]
                joined: ra.Query = ra.Product(left_plan, right_plan)
                rows = left_rows * right_rows
            else:
                rows, i, j, joined, used = best
                for conjunct in used:
                    pool.remove(conjunct)
                left_attrs = components[i][1]
                right_attrs = components[j][1]
            merged = absorb((joined, left_attrs | right_attrs, rows))
            if merged is None:
                return None
            components[i] = merged
            del components[j]

        plan, _attrs, _rows = components[0]
        for conjunct in pool:  # uncovered conjuncts: keep plan behaviour
            plan = ra.Selection(plan, conjunct)
        original = self.attrs(node)
        if self.attrs(plan) != original:
            plan = ra.Projection(plan, original)
        return plan

    def _flatten_join_tree(self, node: ra.Query, leaves, pool) -> None:
        """Decompose nested ×/EquiJoin/σ into leaves plus a conjunct pool."""
        if isinstance(node, ra.Product):
            self._flatten_join_tree(node.left, leaves, pool)
            self._flatten_join_tree(node.right, leaves, pool)
        elif isinstance(node, ra.EquiJoin):
            for a, b in node.pairs:
                pool.append(Eq(Attr(a), Attr(b)))
            self._flatten_join_tree(node.left, leaves, pool)
            self._flatten_join_tree(node.right, leaves, pool)
        elif isinstance(node, ra.Selection):
            pool.extend(split_conjuncts(node.condition))
            self._flatten_join_tree(node.child, leaves, pool)
        else:
            leaves.append(node)

    def _to_constrained_domain(self, attrs: tuple[str, ...], conjuncts) -> ra.Query:
        attr_set = set(attrs)
        parent = {a: a for a in attrs}

        def find(a: str) -> str:
            while parent[a] != a:
                parent[a] = parent[parent[a]]
                a = parent[a]
            return a

        bindings: list[tuple[str, object]] = []
        require_const: list[str] = []
        require_null: list[str] = []
        for conjunct in conjuncts:
            if isinstance(conjunct, Eq):
                a, b = conjunct.left, conjunct.right
                if (
                    isinstance(a, Attr)
                    and isinstance(b, Attr)
                    and a.name in attr_set
                    and b.name in attr_set
                ):
                    parent[find(a.name)] = find(b.name)
                    continue
                for attr_term, lit_term in ((a, b), (b, a)):
                    if (
                        isinstance(attr_term, Attr)
                        and attr_term.name in attr_set
                        and lit_term.is_literal()
                        and is_const(lit_term.value)
                    ):
                        bindings.append((attr_term.name, lit_term.value))
                        break
            elif isinstance(conjunct, IsConst) and isinstance(conjunct.term, Attr):
                if conjunct.term.name in attr_set:
                    require_const.append(conjunct.term.name)
            elif isinstance(conjunct, IsNull) and isinstance(conjunct.term, Attr):
                if conjunct.term.name in attr_set:
                    require_null.append(conjunct.term.name)
        classes: dict[str, list[str]] = {}
        for a in attrs:
            classes.setdefault(find(a), []).append(a)
        groups = tuple(
            tuple(members) for members in classes.values() if len(members) > 1
        )
        return ra.ConstrainedDomainRelation(
            attrs,
            conjoin(conjuncts),
            groups=groups,
            bindings=bindings,
            require_const=tuple(require_const),
            require_null=tuple(require_null),
        )

    def run(self, query: ra.Query) -> ra.Query:
        query = self.rewrite(query)
        if self.physical:
            query = self.physical_pass(query)
        return query


def _schema_key(schema: DatabaseSchema) -> tuple:
    return tuple(sorted((rs.name, rs.attributes) for rs in schema))


def _plan_is_well_formed(query: ra.Query, schema: DatabaseSchema) -> bool:
    """Can every node's output attributes be computed under ``schema``?"""
    try:
        for node in ra.walk(query):
            node.output_attributes(schema)
    except (ValueError, KeyError, TypeError):
        return False
    return True


_OPTIMIZE_MEMO: OrderedDict[tuple, ra.Query] = OrderedDict()
_OPTIMIZE_MEMO_SIZE = 2048
_MEMO_LOCK = threading.Lock()


def clear_optimize_memo() -> None:
    """Drop every memoised plan (for tests that patch the rule table).

    Ordinary use never needs this: the memo key carries the schema, the
    mode flags and the stats fingerprint, so anything that should change
    the output already misses.
    """
    with _MEMO_LOCK:
        _OPTIMIZE_MEMO.clear()


def _optimize_uncached(
    query: ra.Query,
    schema_key: tuple,
    condition_mode: str,
    bag: bool,
    physical: bool,
    stats: Stats | None,
) -> ra.Query:
    schema = DatabaseSchema(RelationSchema(name, attrs) for name, attrs in schema_key)
    if not _plan_is_well_formed(query, schema):
        # Malformed plans (overlapping product attributes, unknown
        # relations, ...) are returned untouched so evaluation raises
        # exactly the error it would have raised without the optimizer.
        return query
    optimizer = _PlanOptimizer(schema, condition_mode, bag, physical, stats=stats)
    try:
        return optimizer.run(query)
    except (ValueError, KeyError, TypeError) as exc:
        # A failure on a *well-formed* plan is an optimizer bug, not a
        # user error: fall back to the unoptimized plan (results stay
        # correct) but say so, lest the speedups silently vanish.
        warnings.warn(
            f"plan optimizer failed on a well-formed plan ({exc!r}); "
            "evaluating unoptimized",
            RuntimeWarning,
            stacklevel=3,
        )
        return query


def optimize_plan(
    query: ra.Query,
    schema: DatabaseSchema,
    *,
    condition_mode: str = "naive",
    bag: bool = False,
    physical: bool = True,
    stats: Stats | None = None,
) -> ra.Query:
    """Optimize a relational algebra plan for evaluation on ``schema``.

    ``condition_mode`` selects which rules are sound (see the module
    docstring); ``bag`` is carried for future bag-only rules (every
    current rule preserves multiplicities); ``physical=False`` restricts
    the rewrite to the logical rules, for consumers — like the c-table
    evaluator — that cannot execute the physical operator nodes.
    ``stats`` enables the estimate-driven physical rules (join
    reordering, hash build sides): pass a :class:`~repro.algebra.stats.Stats`
    provider built over the database the plan will run against.

    The result is memoised on ``(plan, schema, mode, bag, physical,
    stats fingerprint)``, so repeated optimization of one plan (per
    possible world, per shard, per Qt/Qf pair member) costs one
    dictionary lookup.  The stats fingerprint — ``stats.key()``, which
    hashes every relation's content-addressed statistics — is part of
    the key, so mutating the database yields a fresh physical plan
    rather than a stale memo hit.
    """
    key = (
        query,
        _schema_key(schema),
        condition_mode,
        bool(bag),
        bool(physical),
        None if stats is None else stats.key(),
    )
    with _MEMO_LOCK:
        cached = _OPTIMIZE_MEMO.get(key)
        if cached is not None:
            _OPTIMIZE_MEMO.move_to_end(key)
            return cached
    result = _optimize_uncached(
        query, key[1], condition_mode, bool(bag), bool(physical), stats
    )
    with _MEMO_LOCK:
        _OPTIMIZE_MEMO[key] = result
        _OPTIMIZE_MEMO.move_to_end(key)
        while len(_OPTIMIZE_MEMO) > _OPTIMIZE_MEMO_SIZE:
            _OPTIMIZE_MEMO.popitem(last=False)
    return result
