"""Syntactic fragment classification of relational algebra plans.

The calculus side of Theorem 4.4 is classified by
:mod:`repro.calculus.fragments`; this module is its algebra twin, so the
``strategy="auto"`` planner can recognise the exact-for-naïve fragments
on plans built with :mod:`repro.algebra.builder` (and on SQL queries
compiled through :mod:`repro.sql.compiler`) too.

The mapping to the paper's fragments is the textbook correspondence:

* **CQ** — select-project-join plans: base relations, constant tables of
  constants, σ with (conjunctions of) equalities, π, ρ, ×, ⋈, ⋉ and ∩
  (an intersection of equal-arity queries is a join);
* **UCQ** — CQ plus ∪ anywhere and ∨ inside selection conditions (the
  existential positive fragment);
* **Pos∀G** — UCQ plus division by a base relation: ``Q ÷ S`` is
  ``π(Q) ∧ ∀ȳ (S(ȳ) → Q(x̄, ȳ))``, a universally *guarded* implication
  because the divisor atom ``S(ȳ)`` has pairwise distinct variables (a
  relation's attributes).  A renamed base relation is still an atom, so
  ``Rename``-wrapped divisors qualify; any other divisor subquery is not
  an atomic guard and falls outside the fragment;
* **FO** — everything else: difference, anti-semijoins, ``Dom^k``,
  non-equality comparisons (<, ≤, ≠, …), ``¬``/``is null``/``is const``
  conditions, and the physical operators the optimizer emits.

The classification is deliberately conservative (sufficient, never
necessary): a plan classified CQ/UCQ/Pos∀G is guaranteed to be in the
fragment, so naïve evaluation of it computes the certain answers under
CWA (Theorem 4.4); a plan classified FO merely gets no guarantee.
"""

from __future__ import annotations

from . import ast as ra
from . import conditions as rc

__all__ = ["classify_plan", "condition_level"]

# Fragment lattice positions; higher absorbs lower.
_CQ, _UCQ, _POS_FORALL_G, _FO = 0, 1, 2, 3
_NAMES = {_CQ: "CQ", _UCQ: "UCQ", _POS_FORALL_G: "Pos∀G", _FO: "FO"}


def _term_has_null(term: rc.Term) -> bool:
    from ..datamodel.values import is_null

    return isinstance(term, rc.Literal) and is_null(term.value)


def condition_level(condition: rc.Condition) -> int:
    """The fragment level a selection condition contributes.

    Equalities and ``true`` are conjunctive atoms; ``∨`` lifts to UCQ;
    anything else (negation, ≠, order comparisons, null/const tests) is
    outside the positive grammar.  An equality against a *null literal*
    is outside it too: Theorem 4.4 speaks of constants, and naïve
    evaluation of ``σ_{a=⊥}`` matches the null by label while no
    valuation-quantified semantics does, so claiming exactness there
    would be unsound.
    """
    if isinstance(condition, rc.TrueCondition):
        return _CQ
    if isinstance(condition, rc.Eq):
        if _term_has_null(condition.left) or _term_has_null(condition.right):
            return _FO
        return _CQ
    if isinstance(condition, rc.And):
        return max(condition_level(condition.left), condition_level(condition.right))
    if isinstance(condition, rc.Or):
        return max(
            _UCQ, condition_level(condition.left), condition_level(condition.right)
        )
    return _FO


def _is_atomic_divisor(node: ra.Query) -> bool:
    """A base relation, possibly renamed — an atomic guard α(ȳ)."""
    while isinstance(node, ra.Rename):
        node = node.child
    return isinstance(node, ra.RelationRef)


def _level(node: ra.Query) -> int:
    if isinstance(node, ra.RelationRef):
        return _CQ
    if isinstance(node, ra.ConstantRelation):
        # A literal table of constants is a disjunction of equality CQs;
        # one row stays conjunctive, several need the union.  Nulls in a
        # literal table have no naïve-evaluation guarantee.
        from ..datamodel.values import is_null

        if any(is_null(value) for row in node.rows for value in row):
            return _FO
        return _CQ if len(node.rows) <= 1 else _UCQ
    if isinstance(node, ra.Selection):
        return max(_level(node.child), condition_level(node.condition))
    if isinstance(node, (ra.Projection, ra.Rename)):
        return _level(node.child)
    if isinstance(node, (ra.Product, ra.NaturalJoin, ra.SemiJoin, ra.Intersection)):
        return max(_level(node.left), _level(node.right))
    if isinstance(node, ra.Union):
        return max(_UCQ, _level(node.left), _level(node.right))
    if isinstance(node, ra.Division):
        if _is_atomic_divisor(node.right):
            return max(_POS_FORALL_G, _level(node.left))
        return _FO
    # Difference, AntiSemiJoin, UnifAntiSemiJoin, DomainRelation and the
    # physical EquiJoin/ConstrainedDomainRelation nodes: no guarantee.
    return _FO


def classify_plan(query: ra.Query) -> str:
    """The most specific fragment name for an algebra plan.

    One of ``"CQ"``, ``"UCQ"``, ``"Pos∀G"``, ``"FO"`` — the same
    vocabulary as :func:`repro.calculus.fragments.classify` (the algebra
    grammar has no unguarded ∀, so ``"positive"`` never arises here).
    """
    return _NAMES[_level(query)]
