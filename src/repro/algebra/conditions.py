"""Selection conditions for relational algebra.

The grammar follows Section 2 of the paper::

    θ ::= const(A) | null(A) | A = B | A = c | A ≠ B | A ≠ c | θ ∨ θ | θ ∧ θ

extended with order comparisons (<, ≤, >, ≥) so that realistic TPC-H-like
workloads can be expressed; the paper notes (Section 6, "Types of
attributes") that type-specific comparisons are treated like
disequalities by the approximation schemes, and that is exactly what the
``star`` translation below does.

Conditions support three evaluation modes:

* :meth:`Condition.eval_naive` — two-valued evaluation where nulls are
  treated as ordinary values (equal only to themselves).  This is the
  evaluation used by naïve evaluation and by the rewritten queries of
  Figure 2 (whose soundness comes from the θ* guards, not from the
  evaluation mode).
* :meth:`Condition.eval_3vl` — SQL-style three-valued evaluation where
  any comparison involving a null is ``unknown``.
* negation is not part of the grammar; :func:`negate` propagates ¬
  through a condition (interchanging = and ≠, const and null, ∧ and ∨),
  as described in the paper.

The θ* translation used by both approximation schemes of Figure 2 is
provided by :func:`star`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from ..datamodel.values import Value, is_const, is_null
from ..mvl.truthvalues import FALSE, TRUE, UNKNOWN, TruthValue, from_bool

__all__ = [
    "Term",
    "Attr",
    "Literal",
    "Condition",
    "TrueCondition",
    "FalseCondition",
    "IsConst",
    "IsNull",
    "Comparison",
    "Eq",
    "Neq",
    "Lt",
    "Le",
    "Gt",
    "Ge",
    "And",
    "Or",
    "Not",
    "negate",
    "star",
    "attrs_in_condition",
    "conjoin",
    "disjoin",
]


# ----------------------------------------------------------------------
# Terms
# ----------------------------------------------------------------------
class Term:
    """A term in a selection condition: an attribute reference or a literal."""

    def resolve(self, row: Sequence[Value], index: Mapping[str, int]) -> Value:
        raise NotImplementedError

    def is_literal(self) -> bool:
        return isinstance(self, Literal)


@dataclass(frozen=True)
class Attr(Term):
    """Reference to an attribute by name."""

    name: str

    def resolve(self, row: Sequence[Value], index: Mapping[str, int]) -> Value:
        try:
            return row[index[self.name]]
        except KeyError:
            raise KeyError(f"attribute {self.name!r} not available in {list(index)}") from None

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Literal(Term):
    """A constant literal appearing in the query text."""

    value: Any

    def resolve(self, row: Sequence[Value], index: Mapping[str, int]) -> Value:
        return self.value

    def __str__(self) -> str:
        return repr(self.value)


def _as_term(value: Any) -> Term:
    if isinstance(value, Term):
        return value
    if isinstance(value, str):
        return Attr(value)
    return Literal(value)


# ----------------------------------------------------------------------
# Conditions
# ----------------------------------------------------------------------
class Condition:
    """Base class of selection conditions."""

    # -- evaluation ----------------------------------------------------
    def eval_naive(self, row: Sequence[Value], index: Mapping[str, int]) -> bool:
        """Two-valued evaluation treating nulls as ordinary values."""
        raise NotImplementedError

    def eval_3vl(self, row: Sequence[Value], index: Mapping[str, int]) -> TruthValue:
        """SQL-style three-valued evaluation (null comparisons are unknown)."""
        raise NotImplementedError

    # -- syntax --------------------------------------------------------
    def children(self) -> tuple["Condition", ...]:
        return ()

    def attributes(self) -> set[str]:
        return attrs_in_condition(self)

    # -- connective sugar ----------------------------------------------
    def __and__(self, other: "Condition") -> "Condition":
        return And(self, other)

    def __or__(self, other: "Condition") -> "Condition":
        return Or(self, other)

    def __invert__(self) -> "Condition":
        return negate(self)


@dataclass(frozen=True)
class TrueCondition(Condition):
    """The always-true condition."""

    def eval_naive(self, row, index) -> bool:
        return True

    def eval_3vl(self, row, index) -> TruthValue:
        return TRUE

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class FalseCondition(Condition):
    """The always-false condition."""

    def eval_naive(self, row, index) -> bool:
        return False

    def eval_3vl(self, row, index) -> TruthValue:
        return FALSE

    def __str__(self) -> str:
        return "false"


@dataclass(frozen=True)
class IsConst(Condition):
    """``const(A)``: the value of the term is a constant."""

    term: Term

    def __init__(self, term: Any):
        object.__setattr__(self, "term", _as_term(term))

    def eval_naive(self, row, index) -> bool:
        return is_const(self.term.resolve(row, index))

    def eval_3vl(self, row, index) -> TruthValue:
        # The const/null tests themselves are never unknown: they inspect
        # the value's kind, not its (missing) content.
        return from_bool(is_const(self.term.resolve(row, index)))

    def __str__(self) -> str:
        return f"const({self.term})"


@dataclass(frozen=True)
class IsNull(Condition):
    """``null(A)``: the value of the term is a null."""

    term: Term

    def __init__(self, term: Any):
        object.__setattr__(self, "term", _as_term(term))

    def eval_naive(self, row, index) -> bool:
        return is_null(self.term.resolve(row, index))

    def eval_3vl(self, row, index) -> TruthValue:
        return from_bool(is_null(self.term.resolve(row, index)))

    def __str__(self) -> str:
        return f"null({self.term})"


@dataclass(frozen=True)
class Comparison(Condition):
    """A binary comparison between two terms."""

    left: Term
    right: Term

    #: Symbol used in pretty printing; subclasses override.
    symbol = "?"

    def __init__(self, left: Any, right: Any):
        object.__setattr__(self, "left", _as_term(left))
        object.__setattr__(self, "right", _as_term(right))

    def compare(self, left_value: Value, right_value: Value) -> bool:
        raise NotImplementedError

    def eval_naive(self, row, index) -> bool:
        return self.compare(
            self.left.resolve(row, index), self.right.resolve(row, index)
        )

    def eval_3vl(self, row, index) -> TruthValue:
        left_value = self.left.resolve(row, index)
        right_value = self.right.resolve(row, index)
        if is_null(left_value) or is_null(right_value):
            return UNKNOWN
        return from_bool(self.compare(left_value, right_value))

    def __str__(self) -> str:
        return f"{self.left} {self.symbol} {self.right}"


class Eq(Comparison):
    """Equality ``A = B`` / ``A = c``.  Under naïve evaluation a null equals only itself."""

    symbol = "="

    def compare(self, left_value, right_value) -> bool:
        return left_value == right_value


class Neq(Comparison):
    """Disequality ``A ≠ B`` / ``A ≠ c``."""

    symbol = "≠"

    def compare(self, left_value, right_value) -> bool:
        return left_value != right_value


class _OrderComparison(Comparison):
    """Order comparisons; only defined between constants of comparable types."""

    op: Callable[[Any, Any], bool] = staticmethod(lambda a, b: False)

    def compare(self, left_value, right_value) -> bool:
        if is_null(left_value) or is_null(right_value):
            # Under naïve evaluation a null is an unordered fresh value:
            # order comparisons with it are simply false.
            return False
        try:
            return type(self).op(left_value, right_value)
        except TypeError:
            return False


class Lt(_OrderComparison):
    symbol = "<"
    op = staticmethod(lambda a, b: a < b)


class Le(_OrderComparison):
    symbol = "≤"
    op = staticmethod(lambda a, b: a <= b)


class Gt(_OrderComparison):
    symbol = ">"
    op = staticmethod(lambda a, b: a > b)


class Ge(_OrderComparison):
    symbol = "≥"
    op = staticmethod(lambda a, b: a >= b)


@dataclass(frozen=True)
class And(Condition):
    """Conjunction of two conditions."""

    left: Condition
    right: Condition

    def eval_naive(self, row, index) -> bool:
        return self.left.eval_naive(row, index) and self.right.eval_naive(row, index)

    def eval_3vl(self, row, index) -> TruthValue:
        return _kleene_and(self.left.eval_3vl(row, index), self.right.eval_3vl(row, index))

    def children(self) -> tuple[Condition, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} ∧ {self.right})"


@dataclass(frozen=True)
class Or(Condition):
    """Disjunction of two conditions."""

    left: Condition
    right: Condition

    def eval_naive(self, row, index) -> bool:
        return self.left.eval_naive(row, index) or self.right.eval_naive(row, index)

    def eval_3vl(self, row, index) -> TruthValue:
        return _kleene_or(self.left.eval_3vl(row, index), self.right.eval_3vl(row, index))

    def children(self) -> tuple[Condition, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} ∨ {self.right})"


@dataclass(frozen=True)
class Not(Condition):
    """Explicit negation.

    The paper's condition grammar has no ¬; SQL's WHERE clauses do.  We
    keep an explicit node for the SQL frontend and provide :func:`negate`
    to push negations through into the negation-free grammar.
    """

    operand: Condition

    def eval_naive(self, row, index) -> bool:
        return not self.operand.eval_naive(row, index)

    def eval_3vl(self, row, index) -> TruthValue:
        return _kleene_not(self.operand.eval_3vl(row, index))

    def children(self) -> tuple[Condition, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"¬({self.operand})"


def _kleene_and(a: TruthValue, b: TruthValue) -> TruthValue:
    if a is FALSE or b is FALSE:
        return FALSE
    if a is TRUE and b is TRUE:
        return TRUE
    return UNKNOWN


def _kleene_or(a: TruthValue, b: TruthValue) -> TruthValue:
    if a is TRUE or b is TRUE:
        return TRUE
    if a is FALSE and b is FALSE:
        return FALSE
    return UNKNOWN


def _kleene_not(a: TruthValue) -> TruthValue:
    if a is TRUE:
        return FALSE
    if a is FALSE:
        return TRUE
    return UNKNOWN


# ----------------------------------------------------------------------
# Negation propagation and the θ* translation
# ----------------------------------------------------------------------
_COMPLEMENT: dict[type, type] = {}


def _register_complements() -> None:
    pairs = [(Eq, Neq), (Lt, Ge), (Le, Gt)]
    for a, b in pairs:
        _COMPLEMENT[a] = b
        _COMPLEMENT[b] = a


_register_complements()


def negate(condition: Condition) -> Condition:
    """Propagate negation through a condition (¬ pushed to the atoms).

    Following the paper: ∧/∨ are interchanged, = and ≠ are interchanged,
    const and null are interchanged.  Explicit :class:`Not` nodes are
    eliminated by double negation.
    """
    if isinstance(condition, TrueCondition):
        return FalseCondition()
    if isinstance(condition, FalseCondition):
        return TrueCondition()
    if isinstance(condition, Not):
        return condition.operand
    if isinstance(condition, And):
        return Or(negate(condition.left), negate(condition.right))
    if isinstance(condition, Or):
        return And(negate(condition.left), negate(condition.right))
    if isinstance(condition, IsConst):
        return IsNull(condition.term)
    if isinstance(condition, IsNull):
        return IsConst(condition.term)
    if isinstance(condition, Comparison):
        complement = _COMPLEMENT.get(type(condition))
        if complement is None:
            raise TypeError(f"cannot negate comparison {condition}")
        return complement(condition.left, condition.right)
    raise TypeError(f"cannot negate condition of type {type(condition).__name__}")


def star(condition: Condition) -> Condition:
    """The θ* translation of Figure 2.

    Every comparison of the form ``A ≠ x`` is replaced by

    * ``(A ≠ x) ∧ const(A)`` when ``x`` is a constant literal, and
    * ``(A ≠ x) ∧ const(A) ∧ const(x)`` when ``x`` is an attribute,

    which makes the (naïvely evaluated) condition sound for certainty:
    a disequality is only asserted when both sides are known constants.
    Order comparisons are guarded in the same way, following the paper's
    remark that type-specific comparisons are treated like disequalities.
    Equalities, const/null tests, ∧ and ∨ are left untouched.
    """
    if isinstance(condition, (TrueCondition, FalseCondition, IsConst, IsNull)):
        return condition
    if isinstance(condition, Not):
        return star(negate(condition.operand))
    if isinstance(condition, And):
        return And(star(condition.left), star(condition.right))
    if isinstance(condition, Or):
        return Or(star(condition.left), star(condition.right))
    if isinstance(condition, Eq):
        return condition
    if isinstance(condition, (Neq, Lt, Le, Gt, Ge)):
        # Guard every non-literal side with const(): the disequality is only
        # asserted when the compared values are known constants.
        guarded: Condition = condition
        for term in (condition.left, condition.right):
            if not term.is_literal():
                guarded = And(guarded, IsConst(term))
        return guarded
    raise TypeError(f"cannot star-translate condition of type {type(condition).__name__}")


def attrs_in_condition(condition: Condition) -> set[str]:
    """All attribute names mentioned in a condition."""
    attrs: set[str] = set()

    def visit(node: Condition) -> None:
        if isinstance(node, (IsConst, IsNull)):
            if isinstance(node.term, Attr):
                attrs.add(node.term.name)
        elif isinstance(node, Comparison):
            for term in (node.left, node.right):
                if isinstance(term, Attr):
                    attrs.add(term.name)
        for child in node.children():
            visit(child)

    visit(condition)
    return attrs


def conjoin(conditions: Sequence[Condition]) -> Condition:
    """Conjunction of a list of conditions (true if empty)."""
    result: Condition | None = None
    for condition in conditions:
        result = condition if result is None else And(result, condition)
    return result if result is not None else TrueCondition()


def disjoin(conditions: Sequence[Condition]) -> Condition:
    """Disjunction of a list of conditions (false if empty)."""
    result: Condition | None = None
    for condition in conditions:
        result = condition if result is None else Or(result, condition)
    return result if result is not None else FalseCondition()
