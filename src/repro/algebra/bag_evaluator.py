"""Bag-semantics evaluation of relational algebra (SQL's data model).

As prescribed by the SQL standard and recalled in Section 4.2 of the
paper, real systems evaluate queries over bags: union adds up
multiplicities, difference subtracts them down to zero, projection and
product multiply and preserve them.  The heavy lifting lives in
:class:`repro.algebra.evaluator.Evaluator`; this module provides the
bag-flavoured entry points used by the bag-certainty machinery
(:mod:`repro.approx.bag_bounds`) and by the SQL frontend.
"""

from __future__ import annotations

from ..datamodel.database import Database
from ..datamodel.relation import Relation
from . import ast
from .evaluator import Evaluator

__all__ = ["BagEvaluator", "evaluate_bag", "multiplicity_of"]


class BagEvaluator(Evaluator):
    """Evaluator that preserves multiplicities (bag semantics)."""

    def __init__(self, **kwargs):
        kwargs.setdefault("bag", True)
        super().__init__(**kwargs)


def evaluate_bag(query: ast.Query, database: Database, **kwargs) -> Relation:
    """Evaluate a query under bag semantics (convenience wrapper)."""
    return BagEvaluator(**kwargs).evaluate(query, database)


def multiplicity_of(query: ast.Query, database: Database, row: tuple, **kwargs) -> int:
    """``#(ā, Q(D))``: the multiplicity of ``row`` in the bag answer."""
    return evaluate_bag(query, database, **kwargs).multiplicity(row)
