"""Per-request metrics and the ``/stats`` aggregation.

Every admitted request records one :class:`RequestRecord` — queue wait
(time between admission and winning an execution slot), execution time,
whether the result came from the tenant's cache slice, and the strategy
that actually ran (for ``strategy="auto"`` that is the planner's
:class:`~repro.engine.planner.PlanDecision` choice, read off the result
metadata).  The aggregator keeps bounded reservoirs of the recent
latencies, so ``/stats`` can serve p50/p99 in O(window log window)
without unbounded memory on a long-running server.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, deque
from dataclasses import dataclass
from typing import Any

__all__ = ["RequestRecord", "ServerMetrics", "percentile"]


def percentile(samples: list[float], q: float) -> float:
    """The q-th percentile (0..100) of ``samples``, 0.0 when empty."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


@dataclass(frozen=True)
class RequestRecord:
    """What one finished request contributes to the aggregates."""

    tenant: str
    outcome: str  # "ok" | "error" | "cancelled" | "rejected"
    queue_wait: float = 0.0
    execution: float = 0.0
    total: float = 0.0
    cache_hit: bool | None = None
    strategy: str | None = None


class ServerMetrics:
    """Thread-safe aggregation of request records for ``/stats``."""

    def __init__(self, window: int = 4096):
        self._lock = threading.Lock()
        self._started = time.time()
        self._outcomes: Counter = Counter()
        self._tenants: Counter = Counter()
        self._strategies: Counter = Counter()
        self._cache_hits = 0
        self._cache_misses = 0
        self._latency: deque[float] = deque(maxlen=window)
        self._queue_wait: deque[float] = deque(maxlen=window)
        self._execution: deque[float] = deque(maxlen=window)

    def record(self, record: RequestRecord) -> None:
        with self._lock:
            self._outcomes[record.outcome] += 1
            self._tenants[record.tenant] += 1
            if record.strategy:
                self._strategies[record.strategy] += 1
            if record.cache_hit is not None:
                if record.cache_hit:
                    self._cache_hits += 1
                else:
                    self._cache_misses += 1
            if record.outcome == "ok":
                self._latency.append(record.total)
                self._queue_wait.append(record.queue_wait)
                self._execution.append(record.execution)

    @staticmethod
    def _summary(samples: deque[float]) -> dict[str, float]:
        data = list(samples)
        return {
            "count": len(data),
            "mean": sum(data) / len(data) if data else 0.0,
            "p50": percentile(data, 50),
            "p99": percentile(data, 99),
            "max": max(data) if data else 0.0,
        }

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            completed = self._outcomes.get("ok", 0)
            total_cache = self._cache_hits + self._cache_misses
            uptime = time.time() - self._started
            return {
                "uptime": uptime,
                "requests": dict(self._outcomes),
                "completed": completed,
                "qps": completed / uptime if uptime > 0 else 0.0,
                "tenants": dict(self._tenants),
                "strategies": dict(self._strategies),
                "cache": {
                    "hits": self._cache_hits,
                    "misses": self._cache_misses,
                    "hit_rate": (
                        self._cache_hits / total_cache if total_cache else 0.0
                    ),
                },
                "latency": self._summary(self._latency),
                "queue_wait": self._summary(self._queue_wait),
                "execution": self._summary(self._execution),
            }
