"""A small stdlib client for the evaluation service.

:class:`ServerClient` wraps ``http.client`` — one keep-alive connection,
JSON in/out, and an iterator over the server's chunked NDJSON batch
stream so callers consume results in completion order:

    with ServerClient("127.0.0.1", 8080, tenant="alice") as client:
        client.register_dataset("toy", database)
        answer = client.query("SELECT a FROM R", db="toy")
        for item in client.batch(["SELECT ...", "SELECT ..."], db="toy"):
            ...

``cancel()`` needs a *second* connection (the first is blocked inside
the pending request), so it opens a one-shot connection of its own.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from typing import Any, Iterator, Mapping

from ..datamodel.database import Database
from ..resilience import RetryPolicy, resolve_retry
from .wire import encode_database

__all__ = [
    "ServerClient",
    "ServerRequestError",
    "ServerBusyError",
    "ServerTimeoutError",
]


class ServerRequestError(RuntimeError):
    """The server answered with an error status."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServerBusyError(ServerRequestError):
    """Admission control rejected the request (HTTP 429)."""


class ServerTimeoutError(ServerRequestError):
    """The request blew its ``timeout_ms`` budget (HTTP 504)."""


class ServerClient:
    """One tenant's connection to an :class:`~repro.server.EvalServer`."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        tenant: str | None = None,
        timeout: float = 60.0,
        retry: RetryPolicy | bool | None = None,
    ):
        self.host = host
        self.port = port
        self.tenant = tenant
        self.timeout = timeout
        #: Applied to *idempotent* requests (GETs, ``/query``,
        #: ``/datasets``) whose connection died before a response came
        #: back — evaluation is read-only and dataset registration is
        #: content-keyed, so replaying them is safe.  ``retry=False``
        #: disables; the default is a small capped-backoff policy.
        self.retry = resolve_retry(retry)
        self._conn: http.client.HTTPConnection | None = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def _headers(self) -> dict[str, str]:
        headers = {"Content-Type": "application/json"}
        if self.tenant is not None:
            headers["X-Repro-Tenant"] = self.tenant
        return headers

    @staticmethod
    def _raise_for_status(status: int, payload: Mapping[str, Any]) -> None:
        message = str(payload.get("error", payload))
        if status == 429:
            raise ServerBusyError(status, message)
        if status == 504:
            raise ServerTimeoutError(status, message)
        raise ServerRequestError(status, message)

    def _request(
        self,
        method: str,
        path: str,
        body: Mapping[str, Any] | None = None,
        *,
        idempotent: bool | None = None,
    ) -> dict[str, Any]:
        if idempotent is None:
            idempotent = method == "GET"
        policy = self.retry if idempotent else None
        attempts = 0
        while True:
            try:
                return self._request_once(method, path, body)
            except ServerRequestError:
                raise  # the server answered; nothing transient about that
            except (http.client.HTTPException, OSError) as exc:
                attempts += 1
                if (
                    policy is None
                    or attempts >= policy.max_attempts
                    or not policy.is_retryable(exc)
                ):
                    raise
                self.close()
                time.sleep(policy.delay(attempts))

    def _request_once(
        self, method: str, path: str, body: Mapping[str, Any] | None = None
    ) -> dict[str, Any]:
        with self._lock:
            conn = self._connection()
            data = json.dumps(body).encode("utf-8") if body is not None else None
            try:
                conn.request(method, path, body=data, headers=self._headers())
                response = conn.getresponse()
                raw = response.read()
            except (http.client.HTTPException, OSError):
                # Stale keep-alive connection: reconnect once.  (The
                # request never reached the server on a dead keep-alive,
                # so this is safe even for non-idempotent POSTs.)
                self.close()
                conn = self._connection()
                conn.request(method, path, body=data, headers=self._headers())
                response = conn.getresponse()
                raw = response.read()
            payload = json.loads(raw.decode("utf-8")) if raw else {}
            if response.status >= 400:
                self._raise_for_status(response.status, payload)
            return payload

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def healthz(self) -> dict[str, Any]:
        return self._request("GET", "/healthz")

    def stats(self) -> dict[str, Any]:
        return self._request("GET", "/stats")

    def strategies(self) -> list[str]:
        return list(self._request("GET", "/strategies")["strategies"])

    def datasets(self) -> dict[str, Any]:
        return self._request("GET", "/datasets")

    def register_dataset(self, name: str, database: Database) -> str:
        """Upload a tenant-private dataset; returns its fingerprint."""
        payload = {"name": name, **encode_database(database)}
        return str(
            self._request("POST", "/datasets", payload, idempotent=True)[
                "fingerprint"
            ]
        )

    def query(
        self,
        query: Any = None,
        *,
        db: str,
        query_ref: str | None = None,
        strategy: str | None = None,
        semantics: str | None = None,
        use_cache: bool = True,
        request_id: str | None = None,
        timeout_ms: float | None = None,
        on_shard_error: str | None = None,
        **options: Any,
    ) -> dict[str, Any]:
        """Evaluate one query; returns the decoded response object.

        ``timeout_ms`` caps the server-side evaluation wall clock (the
        server answers 504, raised here as :class:`ServerTimeoutError`);
        ``on_shard_error`` selects the sharded failure policy
        (``"raise"``/``"retry"``/``"degrade"``).
        """
        payload: dict[str, Any] = {"db": db, "use_cache": use_cache}
        if query is not None:
            payload["query"] = query
        if query_ref is not None:
            payload["query_ref"] = query_ref
        if strategy is not None:
            payload["strategy"] = strategy
        if semantics is not None:
            payload["semantics"] = semantics
        if request_id is not None:
            payload["id"] = request_id
        if timeout_ms is not None:
            payload["timeout_ms"] = timeout_ms
        if on_shard_error is not None:
            payload["on_shard_error"] = on_shard_error
        if options:
            payload["options"] = options
        # Evaluation is read-only, so a replay after a dead connection
        # is safe.
        return self._request("POST", "/query", payload, idempotent=True)

    def batch(
        self,
        queries: list[Any],
        *,
        db: str,
        strategy: str | None = None,
        semantics: str | None = None,
        use_cache: bool = True,
        request_id: str | None = None,
        timeout_ms: float | None = None,
        on_shard_error: str | None = None,
    ) -> Iterator[dict[str, Any]]:
        """Stream batch results as the server finishes them.

        Yields one dict per query (``{"index": i, "result": ...}`` or
        ``{"index": i, "error": ...}``) followed by the summary line
        (``{"done": true, ...}``).  The stream must be consumed from a
        single thread.
        """
        payload: dict[str, Any] = {
            "db": db,
            "queries": queries,
            "use_cache": use_cache,
        }
        if strategy is not None:
            payload["strategy"] = strategy
        if semantics is not None:
            payload["semantics"] = semantics
        if request_id is not None:
            payload["id"] = request_id
        if timeout_ms is not None:
            payload["timeout_ms"] = timeout_ms
        if on_shard_error is not None:
            payload["on_shard_error"] = on_shard_error
        with self._lock:
            conn = self._connection()
            conn.request(
                "POST",
                "/batch",
                body=json.dumps(payload).encode("utf-8"),
                headers=self._headers(),
            )
            response = conn.getresponse()
            if response.status >= 400:
                raw = response.read()
                body = json.loads(raw.decode("utf-8")) if raw else {}
                self._raise_for_status(response.status, body)
            # http.client undoes the chunked framing; NDJSON lines remain.
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))

    def cancel(self, request_id: str) -> bool:
        """Cancel an in-flight request by id (uses a fresh connection)."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            conn.request(
                "POST",
                "/cancel",
                body=json.dumps({"id": request_id}).encode("utf-8"),
                headers=self._headers(),
            )
            response = conn.getresponse()
            payload = json.loads(response.read().decode("utf-8"))
            return bool(payload.get("cancelled"))
        finally:
            conn.close()
