"""``repro.server`` — a multi-tenant evaluation service over the engine.

One long-running process hosts the engine stack behind a stdlib
HTTP/JSON front end: per-tenant cache namespaces over a shared backend,
bounded admission with 429 backpressure, chunked NDJSON streaming for
batches, and cancellation that reaches in-flight worker processes (and
never populates the cache).  See :mod:`repro.server.service` for the
architecture, :mod:`repro.server.client` for the matching client, and
``python -m repro.server`` to run one.
"""

from .client import ServerBusyError, ServerClient, ServerRequestError
from ..obs.metrics import RequestRecord, ServerMetrics, percentile
from .pool import BrokenWorkerError, CancellableFuture, CancellableProcessExecutor
from .service import DEFAULT_TENANT, EvalServer, ServerConfig, serve

__all__ = [
    "BrokenWorkerError",
    "CancellableFuture",
    "CancellableProcessExecutor",
    "DEFAULT_TENANT",
    "EvalServer",
    "RequestRecord",
    "ServerBusyError",
    "ServerClient",
    "ServerConfig",
    "ServerMetrics",
    "ServerRequestError",
    "percentile",
    "serve",
]
