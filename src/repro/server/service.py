"""The evaluation service: one engine, many tenants, HTTP/JSON front door.

``EvalServer`` turns the repo's engine stack into a long-running,
multi-client service (stdlib only — ``http.server`` threads in front of
one asyncio event loop hosting per-tenant
:class:`~repro.engine.aio.AsyncEngine` twins):

* **Tenant isolation.**  Every tenant gets a private
  :class:`~repro.engine.cache.NamespacedCacheBackend` slice of one
  shared backend (memory, ``disk:<path>``, or ``shm:<name>``), its own
  sync/async engine pair, and a tenant-scoped dataset namespace layered
  over the server-wide datasets.  Identical (query, database)
  fingerprints from different tenants never share cache entries.
* **Admission control.**  A bounded gate of
  ``max_concurrency + queue_limit`` slots sits in front of the loop;
  a full gate answers ``429 {"error": "busy"}`` immediately instead of
  queueing unboundedly.  Admitted requests wait on an asyncio semaphore
  for one of ``max_concurrency`` execution slots — that wait is the
  ``queue_wait`` metric.
* **Streaming.**  ``POST /batch`` answers with a chunked NDJSON stream:
  one line per query *in completion order* (each line carries its input
  index), so clients consume tuples as evaluations finish rather than
  after the slowest one.
* **Cancellation.**  An explicit ``POST /cancel`` (or the client
  vanishing — detected by half-close while a request is pending, or by
  a failed chunk write while streaming) cancels the request's asyncio
  task.  Cancellation unwinds the engine's single-flight group (see
  :mod:`repro.engine.aio`), so the abandoned result is never cached,
  and — with the ``process`` pool's
  :class:`~repro.server.pool.CancellableProcessExecutor` — terminates
  the worker process actually computing it.
* **Metrics.**  ``GET /stats`` aggregates per-request queue wait,
  execution time, cache hit rate and the strategy that ran (the
  planner's choice for ``strategy="auto"``), plus admission and cache
  backend counters (:class:`repro.obs.ServerMetrics`).  ``GET
  /metrics`` exposes the process-wide engine metrics registry
  (:mod:`repro.obs.metrics`): cache hits per backend, backend
  resolutions, shard retries, breaker transitions.
* **Tracing.**  A ``"trace": true`` flag on ``/query`` or ``/batch``
  evaluates with the engine's span tracing on; the exported span tree
  comes back under ``result.metadata.trace`` in the response.

Endpoints: ``GET /healthz``, ``GET /stats``, ``GET /metrics``,
``GET /strategies``, ``GET /datasets``, ``POST /datasets``,
``POST /query``, ``POST /batch``, ``POST /cancel``.  See
:mod:`repro.server.client` for the matching client and
:mod:`repro.server.__main__` for the CLI entry point.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import contextlib
import json
import socket
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Mapping

from ..datamodel.database import Database
from ..engine import (
    AsyncEngine,
    Engine,
    EngineError,
    NormalizationError,
    StrategyNotApplicableError,
    UnknownStrategyError,
    database_fingerprint,
    resolve_cache_backend,
)
from ..engine.cache import CacheBackend, NamespacedCacheBackend
from ..resilience import DeadlineExceeded, breaker_snapshots
from ..obs.metrics import RequestRecord, ServerMetrics
from ..obs.metrics import snapshot as obs_snapshot
from .pool import CancellableProcessExecutor
from .wire import decode_database, encode_result, json_safe

__all__ = ["ServerConfig", "EvalServer", "serve"]

_POOLS = ("process", "thread", "serial")
DEFAULT_TENANT = "public"

_ENGINE_ERRORS = (
    EngineError,
    NormalizationError,
    StrategyNotApplicableError,
    UnknownStrategyError,
    ValueError,
    LookupError,
    TypeError,
)


@dataclass
class ServerConfig:
    """Tunables of one :class:`EvalServer`."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = pick a free port; read it back from server.address
    #: Worker pool for strategy execution: ``"process"`` uses the
    #: cancellable pool (cancellation terminates workers), ``"thread"``
    #: keeps evaluation in-process (cancellation abandons the result but
    #: the thread runs on), ``"serial"`` computes on the event loop
    #: (debugging only — blocks all concurrency).
    pool: str = "thread"
    max_workers: int = 2
    #: Concurrent executions; additional admitted requests queue.
    max_concurrency: int = 4
    #: Admitted-but-waiting requests beyond ``max_concurrency``; past
    #: that the server answers 429.
    queue_limit: int = 16
    #: Shared cache backend spec (``None``/"memory", ``"disk:<path>"``,
    #: ``"shm:<name>"``, or a :class:`~repro.engine.cache.CacheBackend`).
    cache: Any = None
    cache_size: int = 1024
    default_strategy: str = "auto"
    default_semantics: str = "set"
    #: Default execution backend for tenant engines
    #: (:data:`repro.exec.BACKEND_NAMES`): ``"auto"`` pushes expressible
    #: algebra plans into SQLite, ``"interpreter"`` forces the
    #: tree-walking evaluator; per-request ``"backend"`` overrides it.
    backend: str = "auto"
    #: Server-wide datasets, visible to every tenant (cache still
    #: namespaced per tenant).
    datasets: Mapping[str, Database] = field(default_factory=dict)
    #: Named queries resolvable through ``{"query_ref": name}`` (e.g.
    #: the TPC-H-lite suite); values are anything the engine frontend
    #: normalizes.
    queries: Mapping[str, Any] = field(default_factory=dict)
    #: Seconds between client-liveness probes while a request is pending.
    poll_interval: float = 0.05
    verbose: bool = False


class _Tenant:
    """One tenant's engines and cache slice."""

    def __init__(self, name: str, server: "EvalServer"):
        self.name = name
        self.cache = NamespacedCacheBackend(server._backend, name)
        self.engine = Engine(
            cache=self.cache,
            default_semantics=server.config.default_semantics,
            backend=server.config.backend,
        )
        self.aengine = AsyncEngine(engine=self.engine, pool=server._engine_pool())


class _AdmissionGate:
    """A non-blocking bounded counter: try-acquire or reject."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._lock = threading.Lock()
        self._in_flight = 0

    def try_acquire(self) -> bool:
        with self._lock:
            if self._in_flight >= self.capacity:
                return False
            self._in_flight += 1
            return True

    def release(self) -> None:
        with self._lock:
            self._in_flight = max(0, self._in_flight - 1)

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight


class EvalServer:
    """A multi-tenant evaluation service over one shared cache backend."""

    def __init__(self, config: ServerConfig | None = None, **overrides: Any):
        if config is None:
            config = ServerConfig(**overrides)
        elif overrides:
            raise TypeError("pass either a ServerConfig or keyword overrides")
        if config.pool not in _POOLS:
            raise EngineError(
                f"unknown server pool {config.pool!r}; expected one of {_POOLS}"
            )
        if config.max_concurrency < 1:
            raise EngineError("max_concurrency must be a positive integer")
        if config.queue_limit < 0:
            raise EngineError("queue_limit must be non-negative")
        self.config = config
        self.metrics = ServerMetrics()
        self._owns_backend = not isinstance(config.cache, CacheBackend)
        self._backend = resolve_cache_backend(
            config.cache, cache_size=config.cache_size
        )
        self._pool: Any = None
        if config.pool == "process":
            self._pool = CancellableProcessExecutor(max_workers=config.max_workers)
        elif config.pool == "thread":
            self._pool = concurrent.futures.ThreadPoolExecutor(
                max_workers=config.max_workers,
                thread_name_prefix="repro-server-worker",
            )
        self._admission = _AdmissionGate(config.max_concurrency + config.queue_limit)
        self._exec_slots = asyncio.Semaphore(config.max_concurrency)
        self._tenants: dict[str, _Tenant] = {}
        self._tenants_lock = threading.Lock()
        # (tenant, scope) dataset namespace; server-wide entries under
        # tenant None.  Values are (database, memoised fingerprint).
        self._datasets: dict[tuple[str | None, str], tuple[Database, str]] = {}
        self._datasets_lock = threading.Lock()
        self._inflight: dict[tuple[str, str], concurrent.futures.Future] = {}
        self._inflight_lock = threading.Lock()
        self._active_requests = 0
        self._active_lock = threading.Lock()
        self._rejected = 0
        self._closing = False
        self._loop = asyncio.new_event_loop()
        self._loop_thread: threading.Thread | None = None
        self._http_thread: threading.Thread | None = None
        self._httpd = _HTTPServer((config.host, config.port), _Handler)
        self._httpd.eval_server = self
        for name, database in config.datasets.items():
            self.add_dataset(name, database)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "EvalServer":
        """Start the event loop and the HTTP front end (non-blocking)."""
        if self._loop_thread is not None:
            return self
        self._loop_thread = threading.Thread(
            target=self._loop.run_forever, name="repro-server-loop", daemon=True
        )
        self._loop_thread.start()
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-server-http",
            daemon=True,
        )
        self._http_thread.start()
        return self

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — port resolved when config asked for 0."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def close(self) -> None:
        """Stop accepting, cancel in-flight work, release every resource."""
        if self._closing:
            return
        self._closing = True
        self._httpd.shutdown()
        with self._inflight_lock:
            pending = list(self._inflight.values())
        for future in pending:
            future.cancel()
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            with self._active_lock:
                if self._active_requests == 0:
                    break
            time.sleep(0.02)
        with self._tenants_lock:
            tenants = list(self._tenants.values())
        for tenant in tenants:
            tenant.engine.close()
        if self._loop_thread is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._loop_thread.join(timeout=10.0)
        self._loop.close()
        if self._pool is not None:
            if isinstance(self._pool, CancellableProcessExecutor):
                self._pool.shutdown(wait=True, cancel_futures=True)
            else:
                self._pool.shutdown(wait=True)
        if self._owns_backend:
            close = getattr(self._backend, "close", None)
            if callable(close):
                close()
        self._httpd.server_close()

    def __enter__(self) -> "EvalServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Tenants and datasets
    # ------------------------------------------------------------------
    def _engine_pool(self) -> Any:
        return self._pool if self._pool is not None else "serial"

    def _tenant(self, name: str) -> _Tenant:
        with self._tenants_lock:
            tenant = self._tenants.get(name)
            if tenant is None:
                tenant = self._tenants[name] = _Tenant(name, self)
            return tenant

    def add_dataset(
        self, name: str, database: Database, *, tenant: str | None = None
    ) -> str:
        """Register a dataset (server-wide, or private to one tenant).

        The content fingerprint is computed once here, so requests skip
        re-hashing the database — the dominant per-request cost for
        cached evaluations of non-trivial databases.
        """
        fingerprint = database_fingerprint(database)
        with self._datasets_lock:
            self._datasets[(tenant, str(name))] = (database, fingerprint)
        return fingerprint

    def add_queries(self, queries: Mapping[str, Any]) -> None:
        """Merge named queries into the ``query_ref`` namespace."""
        merged = dict(self.config.queries)
        merged.update(queries)
        self.config.queries = merged

    def _dataset(self, tenant: str, name: str) -> tuple[Database, str]:
        with self._datasets_lock:
            entry = self._datasets.get((tenant, name))
            if entry is None:
                entry = self._datasets.get((None, name))
        if entry is None:
            raise LookupError(f"unknown dataset {name!r}")
        return entry

    def dataset_names(self, tenant: str) -> list[str]:
        with self._datasets_lock:
            return sorted(
                {
                    name
                    for owner, name in self._datasets
                    if owner is None or owner == tenant
                }
            )

    # ------------------------------------------------------------------
    # Request execution (event-loop side)
    # ------------------------------------------------------------------
    def _resolve_query(self, payload: Mapping[str, Any]) -> Any:
        if "query" in payload and payload["query"] is not None:
            return payload["query"]
        ref = payload.get("query_ref")
        if ref is None:
            raise ValueError("request needs 'query' (SQL) or 'query_ref' (name)")
        try:
            return self.config.queries[ref]
        except KeyError:
            raise LookupError(f"unknown query_ref {ref!r}") from None

    async def _evaluate_one(
        self,
        tenant: _Tenant,
        payload: Mapping[str, Any],
        admitted_at: float,
    ) -> dict[str, Any]:
        """Acquire an execution slot, evaluate, record metrics."""
        query = self._resolve_query(payload)
        database, fingerprint = self._dataset(
            tenant.name, str(payload.get("db", ""))
        )
        strategy = payload.get("strategy") or self.config.default_strategy
        semantics = payload.get("semantics") or None
        use_cache = bool(payload.get("use_cache", True))
        options: dict[str, Any] = dict(payload.get("options") or {})
        if payload.get("optimize") is not None:
            options["optimize"] = bool(payload["optimize"])
        if payload.get("backend") is not None:
            options["backend"] = str(payload["backend"])
        if payload.get("timeout_ms") is not None:
            timeout_ms = float(payload["timeout_ms"])
            if timeout_ms <= 0:
                raise ValueError("timeout_ms must be a positive number")
            options["timeout"] = timeout_ms / 1000.0
        if payload.get("on_shard_error") is not None:
            options["on_shard_error"] = str(payload["on_shard_error"])
        if payload.get("trace") is not None:
            # The span tree rides back in result.metadata["trace"]
            # (encode_result serialises metadata as-is).
            options["trace"] = bool(payload["trace"])
        outcome = "error"
        record = None
        try:
            async with self._exec_slots:
                queue_wait = time.perf_counter() - admitted_at
                started = time.perf_counter()
                result = await tenant.aengine.evaluate(
                    query,
                    database,
                    strategy=strategy,
                    semantics=semantics,
                    use_cache=use_cache,
                    database_fp=fingerprint if use_cache else None,
                    **options,
                )
                execution = time.perf_counter() - started
            plan = result.metadata.get("plan") if isinstance(result.metadata, Mapping) else None
            ran = plan.get("strategy") if isinstance(plan, Mapping) else result.strategy
            outcome = "ok"
            record = RequestRecord(
                tenant=tenant.name,
                outcome="ok",
                queue_wait=queue_wait,
                execution=execution,
                total=time.perf_counter() - admitted_at,
                cache_hit=result.from_cache,
                strategy=ran,
            )
            return {
                "result": encode_result(result),
                "queue_wait": queue_wait,
                "execution": execution,
            }
        except DeadlineExceeded:
            outcome = "deadline"
            raise
        except asyncio.CancelledError:
            outcome = "cancelled"
            raise
        finally:
            if record is None:
                record = RequestRecord(tenant=tenant.name, outcome=outcome)
            self.metrics.record(record)

    async def _evaluate_batch(
        self,
        tenant: _Tenant,
        payload: Mapping[str, Any],
        admitted_at: float,
        out: "Any",
    ) -> dict[str, Any]:
        """Fan a batch out; push each item to ``out`` as it completes."""
        items = payload.get("queries")
        if not isinstance(items, list) or not items:
            raise ValueError("batch request needs a non-empty 'queries' list")
        shared = {
            key: payload[key]
            for key in (
                "db",
                "strategy",
                "semantics",
                "use_cache",
                "optimize",
                "backend",
                "timeout_ms",
                "on_shard_error",
                "trace",
            )
            if key in payload
        }
        completed = errors = 0

        async def run_item(index: int, item: Any) -> None:
            nonlocal completed, errors
            spec = dict(shared)
            if isinstance(item, Mapping):
                spec.update(item)
            else:
                spec["query"] = item
            try:
                answer = await self._evaluate_one(tenant, spec, admitted_at)
            except asyncio.CancelledError:
                raise
            except DeadlineExceeded as exc:
                errors += 1
                out.put({"index": index, "error": _message(exc), "deadline": True})
            except _ENGINE_ERRORS as exc:
                errors += 1
                out.put({"index": index, "error": _message(exc)})
            else:
                completed += 1
                out.put({"index": index, **answer})

        try:
            await asyncio.gather(
                *(run_item(i, item) for i, item in enumerate(items))
            )
        finally:
            out.put(None)  # sentinel: stream finished (even on cancel)
        return {"done": True, "completed": completed, "errors": errors}

    # ------------------------------------------------------------------
    # Handler-side plumbing (HTTP threads)
    # ------------------------------------------------------------------
    def submit(self, coro) -> concurrent.futures.Future:
        return asyncio.run_coroutine_threadsafe(coro, self._loop)

    def register_inflight(
        self, tenant: str, request_id: str, future: concurrent.futures.Future
    ) -> None:
        with self._inflight_lock:
            self._inflight[(tenant, request_id)] = future

    def unregister_inflight(self, tenant: str, request_id: str) -> None:
        with self._inflight_lock:
            self._inflight.pop((tenant, request_id), None)

    def cancel_inflight(self, tenant: str, request_id: str) -> bool:
        with self._inflight_lock:
            future = self._inflight.get((tenant, request_id))
        if future is None:
            return False
        return future.cancel()

    def note_rejected(self, tenant: str) -> None:
        self._rejected += 1
        self.metrics.record(RequestRecord(tenant=tenant, outcome="rejected"))

    def begin_request(self) -> None:
        with self._active_lock:
            self._active_requests += 1

    def end_request(self) -> None:
        with self._active_lock:
            self._active_requests -= 1

    def stats(self) -> dict[str, Any]:
        snapshot = self.metrics.snapshot()
        backend_stats = self._backend.stats
        snapshot["admission"] = {
            "capacity": self._admission.capacity,
            "in_flight": self._admission.in_flight,
            "max_concurrency": self.config.max_concurrency,
            "queue_limit": self.config.queue_limit,
            "rejected": self._rejected,
        }
        snapshot["backend"] = {
            "kind": type(self._backend).__name__,
            "size": backend_stats.size,
            "max_size": backend_stats.max_size,
        }
        snapshot["pool"] = {
            "kind": self.config.pool,
            "max_workers": self.config.max_workers,
        }
        with self._tenants_lock:
            snapshot["tenant_caches"] = {
                name: {
                    "hits": tenant.cache.stats.hits,
                    "misses": tenant.cache.stats.misses,
                }
                for name, tenant in self._tenants.items()
            }
        return snapshot


class _HTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    eval_server: EvalServer = None  # attached right after construction


def _message(exc: BaseException) -> str:
    text = str(exc)
    return text if text else type(exc).__name__


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: _HTTPServer

    # ------------------------------------------------------------------
    # Small helpers
    # ------------------------------------------------------------------
    @property
    def eval_server(self) -> EvalServer:
        return self.server.eval_server

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if self.eval_server.config.verbose:
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: Mapping[str, Any]) -> None:
        body = json.dumps(json_safe(payload)).encode("utf-8")
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError, OSError):
            self.close_connection = True

    def _read_body(self) -> dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            return {}
        raw = self.rfile.read(length)
        payload = json.loads(raw.decode("utf-8"))
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    def _tenant_name(self, payload: Mapping[str, Any]) -> str:
        return str(
            payload.get("tenant")
            or self.headers.get("X-Repro-Tenant")
            or DEFAULT_TENANT
        )

    def _client_gone(self) -> bool:
        """Has the peer half-closed (EOF readable) while we wait?"""
        try:
            self.connection.setblocking(False)
            try:
                data = self.connection.recv(1, socket.MSG_PEEK)
            finally:
                self.connection.setblocking(True)
        except (BlockingIOError, InterruptedError):
            return False  # alive, nothing to read
        except OSError:
            return True
        return data == b""

    def _await_future(
        self, future: concurrent.futures.Future
    ) -> tuple[str, Any]:
        """Wait for the loop-side result, watching the client socket.

        Returns ``("ok", value)``, ``("cancelled", None)`` — the request
        was cancelled via RPC — or ``("gone", None)`` when the client
        disconnected (the future is then cancelled here: disconnect *is*
        cancellation, and it propagates into the engine and its worker).
        """
        poll = self.eval_server.config.poll_interval
        while True:
            try:
                return "ok", future.result(timeout=poll)
            except concurrent.futures.TimeoutError:
                # concurrent.futures.TimeoutError IS builtin TimeoutError
                # (3.8+), so a DeadlineExceeded raised *by the coroutine*
                # lands here too — distinguishable because the future is
                # done.  Re-raise it for the 504 mapping; only a pending
                # future means the poll itself timed out.
                if future.done():
                    raise
                if self._client_gone():
                    future.cancel()
                    return "gone", None
            except concurrent.futures.CancelledError:
                return "cancelled", None

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler contract
        self.eval_server.begin_request()
        try:
            if self.path == "/healthz":
                self._send_json(
                    200, {"status": "ok", "breakers": breaker_snapshots()}
                )
            elif self.path == "/stats":
                self._send_json(200, self.eval_server.stats())
            elif self.path == "/metrics":
                # The process-wide engine metrics (repro.obs), distinct
                # from the per-request aggregation under /stats.
                self._send_json(200, obs_snapshot())
            elif self.path == "/strategies":
                from ..engine.registry import get_strategy

                self._send_json(
                    200,
                    {
                        "strategies": list(Engine.strategies()),
                        "default": self.eval_server.config.default_strategy,
                        "backends": {
                            name: list(get_strategy(name).supported_backends)
                            for name in Engine.strategies()
                        },
                        "default_backend": self.eval_server.config.backend,
                    },
                )
            elif self.path == "/datasets":
                tenant = self._tenant_name({})
                self._send_json(
                    200,
                    {
                        "datasets": self.eval_server.dataset_names(tenant),
                        "queries": sorted(self.eval_server.config.queries),
                    },
                )
            else:
                self._send_json(404, {"error": f"unknown path {self.path!r}"})
        finally:
            self.eval_server.end_request()

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler contract
        self.eval_server.begin_request()
        try:
            try:
                payload = self._read_body()
            except (ValueError, json.JSONDecodeError) as exc:
                self._send_json(400, {"error": f"bad request body: {exc}"})
                return
            if self.path == "/query":
                self._handle_query(payload)
            elif self.path == "/batch":
                self._handle_batch(payload)
            elif self.path == "/cancel":
                self._handle_cancel(payload)
            elif self.path == "/datasets":
                self._handle_register_dataset(payload)
            else:
                self._send_json(404, {"error": f"unknown path {self.path!r}"})
        finally:
            self.eval_server.end_request()

    # ------------------------------------------------------------------
    # POST /query
    # ------------------------------------------------------------------
    def _handle_query(self, payload: dict[str, Any]) -> None:
        server = self.eval_server
        tenant_name = self._tenant_name(payload)
        if server._closing:
            self._send_json(503, {"error": "shutting down"})
            return
        if not server._admission.try_acquire():
            server.note_rejected(tenant_name)
            self._send_json(
                429, {"error": "busy", "in_flight": server._admission.in_flight}
            )
            return
        request_id = payload.get("id")
        try:
            tenant = server._tenant(tenant_name)
            admitted_at = time.perf_counter()
            future = server.submit(
                server._evaluate_one(tenant, payload, admitted_at)
            )
            if request_id is not None:
                server.register_inflight(tenant_name, str(request_id), future)
            try:
                state, value = self._await_future(future)
            finally:
                if request_id is not None:
                    server.unregister_inflight(tenant_name, str(request_id))
            if state == "gone":
                self.close_connection = True
                return
            if state == "cancelled":
                self._send_json(409, {"error": "cancelled", "id": request_id})
                return
            self._send_json(200, {"id": request_id, **value})
        except DeadlineExceeded as exc:
            # Never folded into the 400s: a blown budget is a gateway
            # timeout, and the caller may well succeed with a bigger one.
            self._send_json(504, {"error": _message(exc), "id": request_id})
        except _ENGINE_ERRORS as exc:
            self._send_json(400, {"error": _message(exc)})
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            self._send_json(500, {"error": _message(exc)})
        finally:
            server._admission.release()

    # ------------------------------------------------------------------
    # POST /batch (chunked NDJSON stream)
    # ------------------------------------------------------------------
    def _write_chunk(self, line: Mapping[str, Any]) -> None:
        data = (json.dumps(json_safe(line)) + "\n").encode("utf-8")
        self.wfile.write(f"{len(data):X}\r\n".encode("ascii"))
        self.wfile.write(data + b"\r\n")
        self.wfile.flush()

    def _handle_batch(self, payload: dict[str, Any]) -> None:
        import queue as _queue

        server = self.eval_server
        tenant_name = self._tenant_name(payload)
        if server._closing:
            self._send_json(503, {"error": "shutting down"})
            return
        if not server._admission.try_acquire():
            server.note_rejected(tenant_name)
            self._send_json(429, {"error": "busy"})
            return
        request_id = payload.get("id")
        out: _queue.Queue = _queue.Queue()
        try:
            tenant = server._tenant(tenant_name)
            admitted_at = time.perf_counter()
            future = server.submit(
                server._evaluate_batch(tenant, payload, admitted_at, out)
            )
            if request_id is not None:
                server.register_inflight(tenant_name, str(request_id), future)
            try:
                self.send_response(200)
                self.send_header("Content-Type", "application/x-ndjson")
                self.send_header("Transfer-Encoding", "chunked")
                self.end_headers()
                while True:
                    try:
                        item = out.get(timeout=server.config.poll_interval)
                    except _queue.Empty:
                        if future.done() and out.empty():
                            break
                        continue
                    if item is None:
                        break
                    try:
                        self._write_chunk(item)
                    except (BrokenPipeError, ConnectionResetError, OSError):
                        # Client went away mid-stream: cancel everything
                        # still running for this batch.
                        future.cancel()
                        self.close_connection = True
                        return
                try:
                    summary = future.result(timeout=10.0)
                except concurrent.futures.CancelledError:
                    summary = {"done": True, "cancelled": True}
                except _ENGINE_ERRORS as exc:
                    summary = {"done": True, "error": _message(exc)}
                with contextlib.suppress(OSError):
                    self._write_chunk(summary)
                    self.wfile.write(b"0\r\n\r\n")
                    self.wfile.flush()
            finally:
                if request_id is not None:
                    server.unregister_inflight(tenant_name, str(request_id))
        finally:
            server._admission.release()

    # ------------------------------------------------------------------
    # POST /cancel, POST /datasets
    # ------------------------------------------------------------------
    def _handle_cancel(self, payload: dict[str, Any]) -> None:
        request_id = payload.get("id")
        if request_id is None:
            self._send_json(400, {"error": "cancel needs an 'id'"})
            return
        tenant = self._tenant_name(payload)
        cancelled = self.eval_server.cancel_inflight(tenant, str(request_id))
        self._send_json(200, {"cancelled": cancelled, "id": request_id})

    def _handle_register_dataset(self, payload: dict[str, Any]) -> None:
        name = payload.get("name")
        if not name:
            self._send_json(400, {"error": "dataset registration needs a 'name'"})
            return
        tenant = self._tenant_name(payload)
        try:
            database = decode_database(payload)
        except (ValueError, KeyError, TypeError) as exc:
            self._send_json(400, {"error": f"bad dataset payload: {exc}"})
            return
        fingerprint = self.eval_server.add_dataset(
            str(name), database, tenant=tenant
        )
        self._send_json(
            200, {"name": name, "tenant": tenant, "fingerprint": fingerprint}
        )


def serve(config: ServerConfig | None = None, **overrides: Any) -> EvalServer:
    """Create and start an :class:`EvalServer` (returns it running)."""
    return EvalServer(config, **overrides).start()
