"""A process pool whose in-flight tasks can actually be cancelled.

``concurrent.futures.ProcessPoolExecutor`` cannot cancel a running
task: ``Future.cancel()`` returns ``False`` once a worker has picked the
task up, so a cancelled client request leaves the worker grinding
through an evaluation nobody wants — on a saturated server that is a
stolen execution slot, not a cosmetic leak.

:class:`CancellableProcessExecutor` closes that gap with a deliberately
different state machine: futures are never moved to RUNNING, so the
*base* ``cancel()`` transition (PENDING → CANCELLED, waiters notified)
always succeeds, and the override additionally **terminates the worker
process** that was executing the task, then respawns it for the next
one.  Combined with asyncio's executor-future chaining
(``loop.run_in_executor`` propagates task cancellation into
``Future.cancel()``), cancelling an ``await`` inside
:class:`~repro.engine.aio.AsyncEngine` reaches all the way into the
worker process — the behaviour :mod:`repro.server` needs for client
disconnects and cancel RPCs.

Design: one dispatcher *thread* per worker *process*, joined by a shared
deque of jobs.  Each dispatcher sends one pickled ``(fn, args, kwargs)``
triple down its pipe, blocks on the reply, and resolves the future.  A
terminated worker surfaces as ``EOFError`` on the pipe; the dispatcher
respawns the process and moves on (expected after a cancel, a
``BrokenWorkerError`` on the future otherwise).  Workers are forked
lazily on first submit, so strategies registered at runtime are
inherited on platforms whose default start method is ``fork``.
"""

from __future__ import annotations

import collections
import concurrent.futures
import itertools
import multiprocessing
import os
import threading
from typing import Any, Callable

from ..resilience import fault_point

__all__ = ["BrokenWorkerError", "CancellableFuture", "CancellableProcessExecutor"]


class BrokenWorkerError(RuntimeError):
    """A worker process died while running a task that was not cancelled."""


def _worker_main(conn) -> None:
    """Worker-process loop: receive ``(fn, args, kwargs)``, reply once each."""
    while True:
        try:
            item = conn.recv()
        except (EOFError, OSError):
            return
        if item is None:
            return
        fn, args, kwargs = item
        try:
            fault_point("pool.worker", fn=getattr(fn, "__name__", str(fn)))
            reply = (True, fn(*args, **kwargs))
        except BaseException as exc:  # noqa: BLE001 - shipped to the parent
            reply = (False, exc)
        try:
            conn.send(reply)
        except (OSError, BrokenPipeError):
            return
        except Exception as exc:  # unpicklable result/exception
            try:
                conn.send((False, RuntimeError(f"unpicklable worker reply: {exc}")))
            except (OSError, BrokenPipeError):
                return


class _Job:
    __slots__ = ("future", "fn", "args", "kwargs", "dispatcher")

    def __init__(self, future, fn, args, kwargs):
        self.future = future
        self.fn = fn
        self.args = args
        self.kwargs = kwargs
        #: The dispatcher currently running this job (None while queued).
        self.dispatcher: "_Dispatcher | None" = None


class CancellableFuture(concurrent.futures.Future):
    """A future whose ``cancel()`` also works while the task is running.

    The executor never calls ``set_running_or_notify_cancel``, so the
    base-class transition succeeds at any point before completion; when
    the job is already on a worker, the worker process is terminated
    (and respawned by its dispatcher).
    """

    def __init__(self, executor: "CancellableProcessExecutor", job_factory):
        super().__init__()
        self._executor = executor
        self._job: _Job = job_factory(self)

    def cancel(self) -> bool:
        executor = self._executor
        with executor._lock:
            cancelled = super().cancel()
            if not cancelled:
                return False
            job = self._job
            try:
                executor._queue.remove(job)
            except ValueError:
                # Not queued: a dispatcher owns it — kill its worker.
                if job.dispatcher is not None:
                    job.dispatcher.terminate_worker()
        return True


class _Dispatcher:
    """One parent-side thread driving one reusable worker process."""

    def __init__(self, executor: "CancellableProcessExecutor", index: int):
        self.executor = executor
        self.index = index
        self.conn = None
        self.process = None
        self.thread = threading.Thread(
            target=self._run, name=f"repro-pool-{index}", daemon=True
        )
        self.thread.start()

    # Called with the executor lock held (from cancel / shutdown).
    def terminate_worker(self) -> None:
        if self.process is not None and self.process.is_alive():
            self.process.terminate()

    def _spawn(self) -> None:
        ctx = self.executor._ctx
        parent_conn, child_conn = ctx.Pipe()
        process = ctx.Process(
            target=_worker_main, args=(child_conn,), daemon=True,
            name=f"repro-pool-worker-{self.index}",
        )
        process.start()
        child_conn.close()
        with self.executor._lock:
            self.conn, self.process = parent_conn, process

    def _retire(self) -> None:
        with self.executor._lock:
            conn, process = self.conn, self.process
            self.conn = self.process = None
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass
        if process is not None:
            if process.is_alive():
                process.terminate()
            process.join()

    def _run(self) -> None:
        executor = self.executor
        try:
            while True:
                job = executor._next_job(self)
                if job is None:
                    return
                try:
                    self._execute(job)
                except BaseException as exc:  # noqa: BLE001 - keep dispatching
                    # A dispatcher must never die holding a job: an
                    # unexpected raise (a pipe gone weird, an injected
                    # fault) used to kill this thread silently, leaving
                    # the job's future — and every job queued behind it —
                    # pending forever.  Fail the future, drop the worker,
                    # and keep serving the queue with a fresh one.
                    self._fail_job(job, exc)
        finally:
            self._retire()

    def _fail_job(self, job: _Job, exc: BaseException) -> None:
        self._retire()
        with self.executor._lock:
            job.dispatcher = None
        if not job.future.done():
            try:
                job.future.set_exception(
                    BrokenWorkerError(
                        f"dispatcher crashed while running {job.fn!r} "
                        f"({type(exc).__name__}: {exc})"
                    )
                )
            except concurrent.futures.InvalidStateError:
                pass  # cancelled in the race window

    def _execute(self, job: _Job) -> None:
        executor = self.executor
        fault_point("pool.dispatch", worker=self.index)
        if self.process is None or not self.process.is_alive():
            self._retire()
            self._spawn()
        try:
            self.conn.send((job.fn, job.args, job.kwargs))
            ok, payload = self.conn.recv()
        except (EOFError, OSError, BrokenPipeError):
            # The worker died mid-task: expected when the job (or the
            # whole executor) was cancelled, a broken worker otherwise.
            self._retire()
            if not job.future.cancelled() and not executor._shutdown:
                job.future.set_exception(
                    BrokenWorkerError(
                        f"worker process died while running {job.fn!r}"
                    )
                )
            return
        except Exception as exc:  # the job itself would not pickle
            if not job.future.cancelled():
                job.future.set_exception(exc)
            return
        finally:
            with executor._lock:
                job.dispatcher = None
        try:
            if ok:
                job.future.set_result(payload)
            else:
                job.future.set_exception(payload)
        except concurrent.futures.InvalidStateError:
            # Cancelled in the race window after the reply arrived; the
            # cancel path also terminated the (already idle) worker, so
            # the next _execute respawns it.
            pass


class CancellableProcessExecutor(concurrent.futures.Executor):
    """A ``concurrent.futures.Executor`` with running-task cancellation.

    Drop-in for the ``pool=`` argument of
    :class:`~repro.engine.aio.AsyncEngine`; the extra guarantee is that
    ``future.cancel()`` succeeds (and kills the worker) even after the
    task started.  ``max_workers`` defaults to the CPU count.
    """

    def __init__(self, max_workers: int | None = None, mp_context=None):
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be a positive integer or None")
        self._max_workers = max_workers or os.cpu_count() or 1
        self._ctx = mp_context or multiprocessing.get_context()
        self._lock = threading.Lock()
        self._have_work = threading.Condition(self._lock)
        self._queue: collections.deque[_Job] = collections.deque()
        self._dispatchers: list[_Dispatcher] = []
        self._counter = itertools.count()
        self._shutdown = False

    # ------------------------------------------------------------------
    # Executor surface
    # ------------------------------------------------------------------
    def submit(self, fn: Callable, /, *args: Any, **kwargs: Any) -> CancellableFuture:
        with self._lock:
            if self._shutdown:
                raise RuntimeError("cannot schedule new futures after shutdown")
            future = CancellableFuture(
                self, lambda f: _Job(f, fn, args, kwargs)
            )
            self._queue.append(future._job)
            if len(self._dispatchers) < self._max_workers:
                self._dispatchers.append(_Dispatcher(self, next(self._counter)))
            self._have_work.notify()
        return future

    def _next_job(self, dispatcher: _Dispatcher) -> _Job | None:
        with self._lock:
            while True:
                if self._shutdown and not self._queue:
                    return None
                if self._queue:
                    job = self._queue.popleft()
                    job.dispatcher = dispatcher
                    return job
                self._have_work.wait()

    def shutdown(self, wait: bool = True, *, cancel_futures: bool = False) -> None:
        with self._lock:
            self._shutdown = True
            if cancel_futures:
                queued, self._queue = list(self._queue), collections.deque()
            else:
                queued = []
            dispatchers = list(self._dispatchers)
            self._have_work.notify_all()
        for job in queued:
            job.future.cancel()
        if wait:
            for dispatcher in dispatchers:
                dispatcher.thread.join()
        else:
            # Dispatchers drain the remaining queue; just unblock them.
            pass

    # ------------------------------------------------------------------
    # Introspection (for tests and /stats)
    # ------------------------------------------------------------------
    @property
    def max_workers(self) -> int:
        return self._max_workers

    def worker_pids(self) -> list[int]:
        """PIDs of the currently live worker processes."""
        with self._lock:
            return [
                d.process.pid
                for d in self._dispatchers
                if d.process is not None and d.process.is_alive()
            ]

    def queued(self) -> int:
        with self._lock:
            return len(self._queue)
