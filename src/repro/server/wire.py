"""JSON wire encoding for the evaluation service.

The engine's values are JSON-friendly scalars plus one special case: the
marked null ⊥ₗ (:class:`~repro.datamodel.values.Null`).  A null crosses
the wire as the one-key object ``{"⊥": <label>}`` — unambiguous because
no workload uses that key as a string value, and symmetric
(:func:`decode_value` restores a ``Null`` with the same label, which is
exactly the paper's semantics: nulls are equal iff their labels are).

Relations travel as ``{"attributes": [...], "rows": [[...], ...]}`` with
bag multiplicities spelled out by repetition; databases as a
``{"relations": {...}}`` object; results as a flat JSON object carrying
the answer rows, the per-tuple certainty annotations, the timings and
the (sanitised) strategy metadata — including the ``PlanDecision`` that
``strategy="auto"`` records, which the server's ``/stats`` aggregates.
"""

from __future__ import annotations

from typing import Any, Mapping

from ..datamodel.database import Database
from ..datamodel.relation import Relation
from ..datamodel.values import Null
from ..engine.result import QueryResult

__all__ = [
    "NULL_KEY",
    "encode_value",
    "decode_value",
    "encode_relation",
    "decode_relation",
    "encode_database",
    "decode_database",
    "encode_result",
    "json_safe",
]

NULL_KEY = "⊥"


def encode_value(value: Any) -> Any:
    if isinstance(value, Null):
        label = value.label
        if not isinstance(label, (str, int, float, bool)) and label is not None:
            label = str(label)
        return {NULL_KEY: label}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def decode_value(value: Any) -> Any:
    if isinstance(value, dict) and set(value.keys()) == {NULL_KEY}:
        return Null(value[NULL_KEY])
    return value


def encode_relation(relation: Relation) -> dict[str, Any]:
    return {
        "attributes": list(relation.attributes),
        "rows": [
            [encode_value(v) for v in row] for row in relation.iter_rows_bag()
        ],
    }


def decode_relation(payload: Mapping[str, Any]) -> Relation:
    attributes = tuple(payload["attributes"])
    rows = [tuple(decode_value(v) for v in row) for row in payload["rows"]]
    return Relation(attributes, rows)


def encode_database(database: Database) -> dict[str, Any]:
    return {
        "relations": {
            name: encode_relation(database[name])
            for name in database.relation_names()
        }
    }


def decode_database(payload: Mapping[str, Any]) -> Database:
    relations = payload.get("relations")
    if not isinstance(relations, Mapping):
        raise ValueError("dataset payload needs a 'relations' object")
    return Database(
        {name: decode_relation(spec) for name, spec in relations.items()}
    )


def json_safe(value: Any) -> Any:
    """Best-effort projection of metadata onto JSON types (fallback: str)."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, Mapping):
        return {str(k): json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [json_safe(v) for v in value]
    if isinstance(value, Null):
        return {NULL_KEY: json_safe(value.label)}
    return str(value)


def encode_result(result: QueryResult) -> dict[str, Any]:
    """One evaluation result as a flat JSON object."""
    return {
        "strategy": result.strategy,
        "semantics": result.semantics,
        "attributes": list(result.relation.attributes),
        "rows": [
            [encode_value(v) for v in row] for row in result.relation.sorted_rows()
        ],
        "annotated": [
            {
                "row": [encode_value(v) for v in t.row],
                "status": t.status.value,
                "multiplicity": t.multiplicity,
            }
            for t in result.tuples
        ],
        "certain_count": len(result.certain) if result.certain is not None else None,
        "possible_count": len(result.possible) if result.possible is not None else None,
        "elapsed": result.elapsed,
        "from_cache": result.from_cache,
        "fingerprint": result.fingerprint,
        "metadata": json_safe(result.metadata),
    }
