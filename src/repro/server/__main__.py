"""``python -m repro.server`` — run the evaluation service.

Examples::

    python -m repro.server --port 8080
    python -m repro.server --workload tpch-lite --scale 0.05 --pool process
    python -m repro.server --cache shm:reprosrv --max-concurrency 8

The server stays up until SIGINT/SIGTERM, then shuts down cleanly
(cancelling in-flight work and releasing pool workers and the cache
backend).
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading

from .service import EvalServer, ServerConfig

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Multi-tenant certain-answer evaluation service.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument(
        "--pool",
        choices=("process", "thread", "serial"),
        default="thread",
        help="worker pool for strategy execution (process = cancellable)",
    )
    parser.add_argument("--max-workers", type=int, default=2)
    parser.add_argument("--max-concurrency", type=int, default=4)
    parser.add_argument(
        "--queue-limit",
        type=int,
        default=16,
        help="admitted-but-waiting requests before answering 429",
    )
    parser.add_argument(
        "--cache",
        default=None,
        help="shared cache backend: memory (default), disk:<path>, shm:<name>",
    )
    parser.add_argument("--cache-size", type=int, default=1024)
    parser.add_argument(
        "--workload",
        choices=("none", "tpch-lite"),
        default="tpch-lite",
        help="pre-register a server-wide dataset and its named queries",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="row-count multiplier over the TPC-H-lite defaults",
    )
    parser.add_argument(
        "--null-rate", type=float, default=0.1, help="workload null rate"
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--verbose", action="store_true")
    return parser


def _load_workload(server: EvalServer, args: argparse.Namespace) -> None:
    if args.workload != "tpch-lite":
        return
    from ..workloads import TpchLiteConfig, generate_tpch_lite, tpch_lite_queries

    base = TpchLiteConfig()
    config = TpchLiteConfig(
        customers=max(1, round(base.customers * args.scale)),
        orders=max(1, round(base.orders * args.scale)),
        lineitems=max(1, round(base.lineitems * args.scale)),
        suppliers=max(1, round(base.suppliers * args.scale)),
        parts=max(1, round(base.parts * args.scale)),
        null_rate=args.null_rate,
        seed=args.seed,
    )
    server.add_dataset("tpch-lite", generate_tpch_lite(config))
    server.add_queries(tpch_lite_queries())


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    server = EvalServer(
        ServerConfig(
            host=args.host,
            port=args.port,
            pool=args.pool,
            max_workers=args.max_workers,
            max_concurrency=args.max_concurrency,
            queue_limit=args.queue_limit,
            cache=args.cache,
            cache_size=args.cache_size,
            verbose=args.verbose,
        )
    )
    _load_workload(server, args)
    stop = threading.Event()

    def _signal_handler(signum, frame):  # noqa: ARG001
        stop.set()

    signal.signal(signal.SIGINT, _signal_handler)
    signal.signal(signal.SIGTERM, _signal_handler)
    server.start()
    host, port = server.address
    print(f"repro.server listening on http://{host}:{port}", flush=True)
    try:
        stop.wait()
    finally:
        print("repro.server shutting down ...", flush=True)
        server.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
