"""Circuit breakers: stop hammering a backend that keeps failing.

``backend="auto"`` prefers the SQLite pushdown when a plan is
expressible — but when SQLite itself is unhealthy (injected faults, shm
pressure, a corrupted tmpfs), every request would pay a failed pushdown
attempt (plus retries) before falling back to the interpreter.  A
:class:`CircuitBreaker` per ``(strategy, backend)`` pair cuts that
short with the classic three-state machine:

* **closed** — requests flow; ``failure_threshold`` *consecutive*
  failures trip the breaker;
* **open** — requests are refused (``backend="auto"`` resolves straight
  to the interpreter) until ``cooldown`` seconds pass;
* **half-open** — after the cooldown, up to ``half_open_probes``
  requests are admitted as probes: one success closes the breaker,
  one failure re-opens it for another cooldown.

The registry (:func:`breaker_for`) is process-global so every engine in
a server shares one health view per pair; :func:`breaker_snapshots`
feeds the server's ``/healthz``, and :func:`reset_breakers` gives tests
a clean slate.  An explicit ``backend="sqlite"`` request bypasses the
breaker — a demand is a demand — but still records its outcome.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Callable

__all__ = [
    "CircuitBreaker",
    "add_transition_listener",
    "breaker_for",
    "breaker_snapshots",
    "remove_transition_listener",
    "reset_breakers",
]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

# State-transition listeners: called as ``listener(name, old, new)``
# whenever any breaker changes state.  Resilience imports nothing from
# the rest of the package, so observability subscribes from the outside
# (``repro.obs.metrics`` counts transitions per breaker).  Listeners run
# under the breaker's lock and must be fast and never call back into
# the breaker.
_TRANSITION_LISTENERS: list[Callable[[str, str, str], None]] = []


def add_transition_listener(listener: Callable[[str, str, str], None]) -> None:
    if listener not in _TRANSITION_LISTENERS:
        _TRANSITION_LISTENERS.append(listener)


def remove_transition_listener(listener: Callable[[str, str, str], None]) -> None:
    try:
        _TRANSITION_LISTENERS.remove(listener)
    except ValueError:
        pass


def _env_float(name: str, default: float) -> float:
    try:
        return float(os.environ.get(name, default))
    except (TypeError, ValueError):
        return default


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except (TypeError, ValueError):
        return default


class CircuitBreaker:
    """A thread-safe closed → open → half-open breaker.

    ``clock`` is injectable for deterministic tests (defaults to
    :func:`time.monotonic`).
    """

    def __init__(
        self,
        *,
        failure_threshold: int | None = None,
        cooldown: float | None = None,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold is None:
            failure_threshold = _env_int("REPRO_BREAKER_THRESHOLD", 5)
        if cooldown is None:
            cooldown = _env_float("REPRO_BREAKER_COOLDOWN", 30.0)
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be a positive integer")
        if cooldown < 0:
            raise ValueError("cooldown must be non-negative")
        if half_open_probes < 1:
            raise ValueError("half_open_probes must be a positive integer")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.half_open_probes = half_open_probes
        self.name = "breaker"  # overwritten by breaker_for with "strategy/backend"
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        self._probes_in_flight = 0
        self._trips = 0
        self._successes = 0
        self._failures = 0

    # ------------------------------------------------------------------
    # State machine
    # ------------------------------------------------------------------
    def _transition(self, new_state: str) -> None:
        # Caller holds the lock.
        old_state = self._state
        if old_state == new_state:
            return
        self._state = new_state
        for listener in list(_TRANSITION_LISTENERS):
            try:
                listener(self.name, old_state, new_state)
            except Exception:  # a broken listener must not break the breaker
                pass

    def _maybe_half_open(self) -> None:
        # Caller holds the lock.
        if (
            self._state == OPEN
            and self._opened_at is not None
            and self._clock() - self._opened_at >= self.cooldown
        ):
            self._transition(HALF_OPEN)
            self._probes_in_flight = 0

    def allow(self) -> bool:
        """May a request go through right now?

        In the half-open state, admitted requests count as probes (at
        most ``half_open_probes`` concurrently); their recorded outcome
        decides whether the breaker closes or re-opens.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN:
                if self._probes_in_flight < self.half_open_probes:
                    self._probes_in_flight += 1
                    return True
                return False
            return False

    def record_success(self) -> None:
        with self._lock:
            self._successes += 1
            self._consecutive_failures = 0
            if self._state == HALF_OPEN:
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
            self._transition(CLOSED)
            self._opened_at = None

    def release_probe(self) -> None:
        """Return a half-open probe slot without recording an outcome.

        For results that say nothing about backend health — a capability
        miss, a blown deadline — so an admitted probe can neither close
        nor re-open the breaker, but does not leak its slot either.
        """
        with self._lock:
            if self._state == HALF_OPEN:
                self._probes_in_flight = max(0, self._probes_in_flight - 1)

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            self._consecutive_failures += 1
            if self._state == HALF_OPEN:
                # The probe failed: straight back to open, fresh cooldown.
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
                self._transition(OPEN)
                self._opened_at = self._clock()
                self._trips += 1
            elif (
                self._state == CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._transition(OPEN)
                self._opened_at = self._clock()
                self._trips += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open()
            return self._state

    def snapshot(self) -> dict:
        """Plain-data health record (for ``/healthz`` and tests)."""
        with self._lock:
            self._maybe_half_open()
            remaining = None
            if self._state == OPEN and self._opened_at is not None:
                remaining = max(
                    0.0, self.cooldown - (self._clock() - self._opened_at)
                )
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "failure_threshold": self.failure_threshold,
                "trips": self._trips,
                "successes": self._successes,
                "failures": self._failures,
                "cooldown": self.cooldown,
                "cooldown_remaining": remaining,
            }

    def reset(self) -> None:
        with self._lock:
            self._transition(CLOSED)
            self._consecutive_failures = 0
            self._opened_at = None
            self._probes_in_flight = 0


# ----------------------------------------------------------------------
# The process-global registry
# ----------------------------------------------------------------------
_REGISTRY: dict[tuple[str, str], CircuitBreaker] = {}
_REGISTRY_LOCK = threading.Lock()


def breaker_for(strategy: str, backend: str, **kwargs) -> CircuitBreaker:
    """The shared breaker for one ``(strategy, backend)`` pair.

    ``kwargs`` (``failure_threshold``, ``cooldown``, ...) apply only
    when this call *creates* the breaker; an existing breaker keeps its
    configuration.
    """
    key = (str(strategy), str(backend))
    with _REGISTRY_LOCK:
        breaker = _REGISTRY.get(key)
        if breaker is None:
            breaker = _REGISTRY[key] = CircuitBreaker(**kwargs)
            breaker.name = f"{key[0]}/{key[1]}"
        return breaker


def breaker_snapshots() -> dict[str, dict]:
    """Every registered breaker's snapshot, keyed ``"strategy/backend"``."""
    with _REGISTRY_LOCK:
        items = list(_REGISTRY.items())
    return {f"{strategy}/{backend}": b.snapshot() for (strategy, backend), b in items}


def reset_breakers() -> None:
    """Forget every breaker (tests and benchmark harnesses)."""
    with _REGISTRY_LOCK:
        _REGISTRY.clear()
