"""Wall-clock deadlines, propagated through every execution layer.

A :class:`Deadline` is an absolute point on the monotonic clock plus the
original budget (for error messages).  It is a frozen dataclass of two
floats, hence picklable: :class:`~repro.sharding.executor.ShardTask` and
:class:`~repro.engine.aio.EngineTask` carry it across worker-process
boundaries (on Linux ``CLOCK_MONOTONIC`` is system-wide, so the absolute
point means the same thing in the worker as in the parent).

Propagation is explicit at process boundaries (the task object) and
implicit within a process: :func:`deadline_scope` binds the deadline to
a :class:`contextvars.ContextVar`, and the checkpoints —
:meth:`Evaluator._eval <repro.algebra.evaluator.Evaluator>` per plan
node, the ``Dom^k`` enumeration loops via :meth:`Deadline.ticked`, the
SQLite backend via a progress handler — read :func:`active_deadline`.
With no deadline armed the checks cost one context-variable read.

:class:`DeadlineExceeded` subclasses :class:`TimeoutError` (not
:class:`~repro.engine.errors.EngineError`): a blown budget is an
operational condition, not a bad query, so the paths that skip or
translate engine errors (``compare(skip_inapplicable=True)``, the
server's 400 mapping) never swallow it — the server maps it to 504.
"""

from __future__ import annotations

import contextlib
import contextvars
import time
from dataclasses import dataclass
from typing import Any, Iterable, Iterator

__all__ = [
    "Deadline",
    "DeadlineExceeded",
    "active_deadline",
    "deadline_scope",
    "resolve_deadline",
]


class DeadlineExceeded(TimeoutError):
    """The evaluation's wall-clock budget ran out before it finished."""


@dataclass(frozen=True)
class Deadline:
    """An absolute wall-clock budget on the monotonic clock."""

    #: Absolute expiry, in :func:`time.monotonic` seconds.
    at: float
    #: The original budget in seconds (messages only; may be ``inf``).
    budget: float = float("inf")

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        """A deadline ``seconds`` from now."""
        seconds = float(seconds)
        if seconds < 0:
            raise ValueError("timeout must be non-negative")
        return cls(at=time.monotonic() + seconds, budget=seconds)

    def remaining(self) -> float:
        """Seconds left, clamped at zero."""
        return max(0.0, self.at - time.monotonic())

    @property
    def expired(self) -> bool:
        return time.monotonic() >= self.at

    def check(self, where: Any = None) -> None:
        """Raise :class:`DeadlineExceeded` if the budget has run out."""
        if time.monotonic() >= self.at:
            suffix = f" (at {where})" if where is not None else ""
            raise DeadlineExceeded(
                f"evaluation exceeded its {self.budget:.3f}s deadline{suffix}"
            )

    def ticked(
        self, iterable: Iterable, *, every: int = 4096, where: Any = None
    ) -> Iterator:
        """Yield from ``iterable``, checking the deadline every ``every`` items.

        The check granularity for tight enumeration loops: frequent
        enough that a runaway ``Dom^k`` product aborts promptly, rare
        enough that the clock read does not dominate the loop.
        """
        count = 0
        for item in iterable:
            count += 1
            if count >= every:
                count = 0
                self.check(where)
            yield item

    def tightened(self, other: "Deadline | None") -> "Deadline":
        """The tighter of this deadline and ``other``."""
        if other is None or self.at <= other.at:
            return self
        return other


#: The deadline governing the current logical execution, if any.
_ACTIVE: contextvars.ContextVar[Deadline | None] = contextvars.ContextVar(
    "repro_deadline", default=None
)


def active_deadline() -> Deadline | None:
    """The deadline bound by the nearest enclosing :func:`deadline_scope`."""
    return _ACTIVE.get()


@contextlib.contextmanager
def deadline_scope(deadline: Deadline | None):
    """Bind ``deadline`` for the duration of the ``with`` block.

    Nested scopes keep the *tighter* deadline, so an outer request
    budget is never loosened by an inner call; binding ``None`` is a
    no-op (the enclosing deadline, if any, stays active).
    """
    if deadline is None:
        yield None
        return
    current = _ACTIVE.get()
    effective = deadline.tightened(current)
    token = _ACTIVE.set(effective)
    try:
        yield effective
    finally:
        _ACTIVE.reset(token)


def resolve_deadline(
    timeout: "float | Deadline | None", default: "float | Deadline | None" = None
) -> Deadline | None:
    """Turn a ``timeout=`` argument into a deadline (``None`` disables).

    Accepts seconds (the budget starts *now*) or an existing
    :class:`Deadline` (passed through, so one deadline can bound a whole
    batch); ``timeout=None`` falls back to ``default`` — an engine-level
    default budget, also in seconds.
    """
    if timeout is None:
        timeout = default
    if timeout is None:
        return None
    if isinstance(timeout, Deadline):
        return timeout
    return Deadline.after(float(timeout))
