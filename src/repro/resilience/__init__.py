"""Resilience primitives: deadlines, retries, circuit breakers, faults.

PRs 2–8 built the scale machinery — sharding, process pools, a
multi-tenant server, pluggable execution backends — but a single hung
shard or crashed worker could still stall or fail a whole request.
This package supplies the four primitives the execution layers thread
through to close that gap:

* :mod:`repro.resilience.deadline` — :class:`Deadline`, a wall-clock
  budget accepted as ``timeout=`` on ``Engine``/``Session`` (and their
  async twins) and as ``timeout_ms`` per server request.  It propagates
  into :class:`~repro.sharding.executor.ShardTask` /
  :class:`~repro.engine.aio.EngineTask` and is checked at evaluator
  loop boundaries, so long ``Dom^k`` enumerations and shard fan-outs
  abort with :class:`DeadlineExceeded` instead of hanging.
* :mod:`repro.resilience.retry` — :class:`RetryPolicy`, capped
  exponential backoff with *deterministic* jitter, applied to transient
  failures (killed pool workers, shm attach races, SQLite
  ``OperationalError``); retry counts land in
  ``result.metadata["resilience"]``.
* :mod:`repro.resilience.breaker` — a per-``(strategy, backend)``
  :class:`CircuitBreaker`.  Repeated SQLite-backend failures trip
  ``backend="auto"`` to the interpreter for a cool-down window
  (half-open probes recover), visible in the server's ``/healthz``.
* :mod:`repro.resilience.faults` — named :func:`fault_point` hooks in
  the shard executors, pool dispatch, cache backends and the SQLite
  backend.  No-ops unless a seeded :class:`FaultPlan` is armed
  (programmatically or via ``REPRO_FAULT_PLAN``), powering the chaos
  harness in ``tests/test_chaos_equivalence.py``.

Everything here is stdlib-only and imports nothing from the rest of
``repro`` — the execution layers import *us*, never the other way
around, so the package is cycle-free by construction.

Graceful shard degradation (``on_shard_error="degrade"``) lives with
the shard orchestration in :mod:`repro.sharding.evaluate`; it is
capability-gated to monotone fragments, where certain answers computed
over a *subset* of shards remain a sound under-approximation
(``"sound-subset"``) of the fault-free certain answer.
"""

from .breaker import (
    CircuitBreaker,
    breaker_for,
    breaker_snapshots,
    reset_breakers,
)
from .deadline import (
    Deadline,
    DeadlineExceeded,
    active_deadline,
    deadline_scope,
    resolve_deadline,
)
from .faults import (
    FaultPlan,
    FaultRule,
    InjectedFault,
    TransientFault,
    arm_faults,
    armed_plan,
    disarm_faults,
    fault_point,
    faults_armed,
)
from .retry import DEFAULT_RETRY_POLICY, RetryPolicy, resolve_retry

__all__ = [
    # Deadlines
    "Deadline",
    "DeadlineExceeded",
    "active_deadline",
    "deadline_scope",
    "resolve_deadline",
    # Retries
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
    "resolve_retry",
    # Circuit breakers
    "CircuitBreaker",
    "breaker_for",
    "breaker_snapshots",
    "reset_breakers",
    # Fault injection
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "TransientFault",
    "fault_point",
    "arm_faults",
    "disarm_faults",
    "faults_armed",
    "armed_plan",
]
