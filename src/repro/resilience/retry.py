"""Retry policies: capped exponential backoff with deterministic jitter.

A :class:`RetryPolicy` decides *whether* an error is worth another
attempt and *how long* to wait before it.  Two design constraints shape
it:

* **Determinism.**  The chaos harness replays fixed-seed fault
  schedules; a retry delay drawn from global ``random`` state would make
  those runs unreproducible.  Jitter is therefore derived from
  ``(seed, attempt)`` through a private :class:`random.Random`, so the
  same policy produces the same delay sequence every run.
* **No imports from the rest of ``repro``.**  Transient error classes
  live in layers that import *this* package
  (:class:`~repro.server.pool.BrokenWorkerError`, the executors'
  ``BrokenProcessPool``), so the retryable set matches exception types
  *by name along the MRO* as well as by class — cycle-free and
  pickle-friendly.

:class:`DeadlineExceeded` is never retryable: a blown budget must
surface immediately, however transient the underlying stall was.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Sequence

from .deadline import Deadline, DeadlineExceeded

__all__ = ["RetryPolicy", "DEFAULT_RETRY_POLICY", "resolve_retry"]


#: Exception classes (by name, matched along the MRO) treated as
#: transient by default: worker-process deaths, connection hiccups,
#: SQLite's operational failures, and the fault injector's transient
#: kind.  Genuine evaluation errors (EngineError and friends) are not
#: here — retrying a deterministic failure only wastes the budget.
DEFAULT_TRANSIENT_NAMES: tuple[str, ...] = (
    "BrokenWorkerError",
    "BrokenProcessPool",
    "BrokenThreadPool",
    "BrokenExecutor",
    "ConnectionError",
    "ConnectionResetError",
    "RemoteDisconnected",
    "EOFError",
    "BrokenPipeError",
    "InterruptedError",
    "OperationalError",
    "TransientFault",
)


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic jitter.

    ``max_attempts`` counts *total* tries (1 = no retries).  The delay
    before retry ``n`` (1-based) is ``base_delay * multiplier**(n-1)``
    capped at ``max_delay``, plus a jitter fraction in
    ``[0, jitter * delay]`` drawn deterministically from ``seed``.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    seed: int = 0
    #: Extra exception *types* treated as transient besides the
    #: name-matched defaults.
    retryable: Sequence[type] = field(default_factory=tuple)
    #: Exception-class names (matched along the MRO) treated as
    #: transient.
    retryable_names: Sequence[str] = DEFAULT_TRANSIENT_NAMES

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be a positive integer")

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    def is_retryable(self, exc: BaseException) -> bool:
        """Is this failure transient (worth another attempt)?"""
        if isinstance(exc, DeadlineExceeded):
            return False
        if self.retryable and isinstance(exc, tuple(self.retryable)):
            return True
        names = set(self.retryable_names)
        return any(cls.__name__ in names for cls in type(exc).__mro__)

    # ------------------------------------------------------------------
    # Delays
    # ------------------------------------------------------------------
    def delay(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based), jitter included."""
        if attempt < 1:
            return 0.0
        base = min(self.base_delay * self.multiplier ** (attempt - 1), self.max_delay)
        if self.jitter <= 0:
            return base
        rng = random.Random(f"{self.seed}:{attempt}")
        return base * (1.0 + self.jitter * rng.random())

    def delays(self) -> Iterator[float]:
        """The delay sequence for retries 1..max_attempts-1."""
        for attempt in range(1, self.max_attempts):
            yield self.delay(attempt)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def call(
        self,
        fn: Callable[[], Any],
        *,
        deadline: Deadline | None = None,
        on_retry: Callable[[int, BaseException], None] | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> tuple[Any, int]:
        """Run ``fn`` under this policy; returns ``(result, retries)``.

        Non-transient errors propagate immediately.  A ``deadline``
        bounds the whole affair: no retry starts with the budget spent,
        and backoff sleeps never overshoot the remaining time.
        """
        retries = 0
        while True:
            try:
                return fn(), retries
            except Exception as exc:
                retries += 1
                if retries >= self.max_attempts or not self.is_retryable(exc):
                    raise
                if deadline is not None and deadline.expired:
                    raise
                pause = self.delay(retries)
                if deadline is not None:
                    pause = min(pause, deadline.remaining())
                if pause > 0:
                    sleep(pause)
                if on_retry is not None:
                    on_retry(retries, exc)


#: The engine-wide default: one retry with a short backoff — enough to
#: absorb a killed-and-respawned pool worker without stretching genuine
#: failures.
DEFAULT_RETRY_POLICY = RetryPolicy(max_attempts=2, base_delay=0.02, max_delay=0.2)


def resolve_retry(retry: "RetryPolicy | bool | None") -> RetryPolicy | None:
    """Turn a ``retry=`` argument into a policy.

    ``None`` means the engine default, ``False`` disables retries
    entirely, a :class:`RetryPolicy` is used as-is.
    """
    if retry is None:
        return DEFAULT_RETRY_POLICY
    if retry is False:
        return None
    if retry is True:
        return DEFAULT_RETRY_POLICY
    if not isinstance(retry, RetryPolicy):
        raise TypeError(
            f"retry must be a RetryPolicy, True/False or None, not {retry!r}"
        )
    return retry
