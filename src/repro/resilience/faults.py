"""Seedable fault injection: named hooks that do nothing until armed.

The execution layers call :func:`fault_point` at the places where the
real world fails — shard-task execution, pool dispatch, cache backend
reads/writes, the SQLite backend::

    fault_point("shard.task", shard=task.shard, strategy=task.strategy)

With no :class:`FaultPlan` armed the call is a module-global ``None``
check — effectively free, safe to leave in production paths.  The chaos
harness arms a plan (programmatically via :func:`faults_armed`, or
through the ``REPRO_FAULT_PLAN`` environment variable so spawned worker
processes inherit it) and the hooks start failing on a *deterministic
schedule*: each decision is drawn from ``(plan seed, point name, per-
point fire counter)``, so a fixed seed replays the exact same crash/
delay/error sequence run after run.

Three fault kinds:

* ``"error"`` — raise (``error=`` names the class: ``"transient"`` is
  retryable by :class:`~repro.resilience.retry.RetryPolicy`,
  ``"fatal"`` is not, ``"operational"`` is SQLite's
  ``OperationalError``, ``"connection-reset"``/``"broken-pipe"`` mimic
  network failures);
* ``"delay"`` — sleep ``delay`` seconds (deadline checks still fire
  around it, so an injected hang tests the timeout machinery);
* ``"crash"`` — ``os._exit(3)``: the hard death of a worker process,
  exactly what a pool must survive.

Rules can be scoped with ``where={...}``: the rule fires only when the
fault point's keyword info matches every entry (e.g. only shard 0).
"""

from __future__ import annotations

import contextlib
import fnmatch
import json
import os
import sqlite3
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

__all__ = [
    "InjectedFault",
    "TransientFault",
    "FaultRule",
    "FaultPlan",
    "fault_point",
    "arm_faults",
    "disarm_faults",
    "faults_armed",
    "armed_plan",
]

#: Environment variable holding a JSON fault plan (see
#: :meth:`FaultPlan.to_json`); read lazily on the first fault point so
#: spawned worker processes arm themselves.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"


class InjectedFault(RuntimeError):
    """A failure raised by the fault injector (non-transient kind)."""


class TransientFault(InjectedFault):
    """An injected failure that retry policies classify as transient."""


#: Named error kinds a rule can raise — names, not classes, so plans
#: serialize to JSON and survive the ``spawn`` start method.
ERROR_KINDS: dict[str, type[BaseException]] = {
    "transient": TransientFault,
    "fatal": InjectedFault,
    "operational": sqlite3.OperationalError,
    "connection-reset": ConnectionResetError,
    "broken-pipe": BrokenPipeError,
}


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: where, how often, and what happens."""

    #: Fault-point name, ``fnmatch``-style (``"shard.*"`` matches all
    #: shard hooks).
    point: str
    probability: float = 1.0
    kind: str = "error"  # "error" | "delay" | "crash"
    error: str = "transient"
    delay: float = 0.05
    #: Stop firing after this many hits (``None`` = unlimited).
    max_fires: int | None = None
    #: Fire only when the fault point's info matches every entry.
    where: Mapping[str, Any] | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("error", "delay", "crash"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.kind == "error" and self.error not in ERROR_KINDS:
            raise ValueError(
                f"unknown error kind {self.error!r}; expected one of "
                f"{sorted(ERROR_KINDS)}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")

    def matches(self, point: str, info: Mapping[str, Any]) -> bool:
        if not fnmatch.fnmatchcase(point, self.point):
            return False
        if self.where:
            return all(info.get(k) == v for k, v in self.where.items())
        return True

    def as_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "point": self.point,
            "probability": self.probability,
            "kind": self.kind,
        }
        if self.kind == "error":
            data["error"] = self.error
        if self.kind == "delay":
            data["delay"] = self.delay
        if self.max_fires is not None:
            data["max_fires"] = self.max_fires
        if self.where:
            data["where"] = dict(self.where)
        return data


class FaultPlan:
    """A seeded set of fault rules with deterministic decisions.

    Every decision draws from ``(seed, point, n)`` where ``n`` is the
    per-point invocation counter — the schedule depends only on the
    seed and the order of fault-point hits, never on global random
    state.
    """

    def __init__(self, rules: Sequence[FaultRule], *, seed: int = 0):
        self.rules = tuple(rules)
        self.seed = int(seed)
        self._lock = threading.Lock()
        self._hits: dict[str, int] = {}
        self._fires: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def _draw(self, point: str) -> tuple[float, int]:
        import random

        with self._lock:
            n = self._hits.get(point, 0)
            self._hits[point] = n + 1
        return random.Random(f"{self.seed}:{point}:{n}").random(), n

    def decide(self, point: str, info: Mapping[str, Any]) -> FaultRule | None:
        """The rule that fires at this hit of ``point``, if any."""
        matching = [
            (i, rule)
            for i, rule in enumerate(self.rules)
            if rule.matches(point, info)
        ]
        if not matching:
            return None
        draw, _ = self._draw(point)
        for index, rule in matching:
            if draw >= rule.probability:
                continue
            with self._lock:
                fired = self._fires.get(index, 0)
                if rule.max_fires is not None and fired >= rule.max_fires:
                    continue
                self._fires[index] = fired + 1
            return rule
        return None

    def fire_counts(self) -> dict[str, int]:
        """How many times each rule fired, keyed by rule point."""
        with self._lock:
            return {
                self.rules[i].point: count for i, count in self._fires.items()
            }

    # ------------------------------------------------------------------
    # Serialization (for REPRO_FAULT_PLAN / spawned workers)
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(
            {"seed": self.seed, "rules": [rule.as_dict() for rule in self.rules]}
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        data = json.loads(text)
        rules = [FaultRule(**rule) for rule in data.get("rules", ())]
        return cls(rules, seed=int(data.get("seed", 0)))


# ----------------------------------------------------------------------
# Arming
# ----------------------------------------------------------------------
_PLAN: FaultPlan | None = None
_ENV_CHECKED = False
_ARM_LOCK = threading.Lock()


def arm_faults(plan: FaultPlan) -> None:
    """Arm ``plan`` process-wide (until :func:`disarm_faults`)."""
    global _PLAN, _ENV_CHECKED
    with _ARM_LOCK:
        _PLAN = plan
        _ENV_CHECKED = True


def disarm_faults() -> None:
    global _PLAN, _ENV_CHECKED
    with _ARM_LOCK:
        _PLAN = None
        _ENV_CHECKED = True


def armed_plan() -> FaultPlan | None:
    """The currently armed plan, consulting the environment once."""
    global _PLAN, _ENV_CHECKED
    if _PLAN is None and not _ENV_CHECKED:
        with _ARM_LOCK:
            if not _ENV_CHECKED:
                _ENV_CHECKED = True
                text = os.environ.get(FAULT_PLAN_ENV)
                if text:
                    try:
                        _PLAN = FaultPlan.from_json(text)
                    except (ValueError, TypeError, KeyError):
                        _PLAN = None
    return _PLAN


@contextlib.contextmanager
def faults_armed(plan: FaultPlan):
    """Arm ``plan`` for the duration of the ``with`` block."""
    previous = armed_plan()
    arm_faults(plan)
    try:
        yield plan
    finally:
        if previous is None:
            disarm_faults()
        else:
            arm_faults(previous)


def fault_point(name: str, **info: Any) -> None:
    """A named injection hook; a no-op unless a plan is armed.

    The fast path is one global read and a ``None`` check — cheap
    enough to sit on production hot paths.
    """
    plan = _PLAN
    if plan is None:
        plan = armed_plan()
        if plan is None:
            return
    rule = plan.decide(name, info)
    if rule is None:
        return
    if rule.kind == "delay":
        time.sleep(rule.delay)
    elif rule.kind == "crash":
        os._exit(3)
    else:
        raise ERROR_KINDS[rule.error](
            f"injected fault at {name!r}"
            + (f" {dict(info)!r}" if info else "")
        )
