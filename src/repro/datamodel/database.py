"""Incomplete database instances.

A :class:`Database` maps relation names to :class:`~repro.datamodel.relation.Relation`
instances.  It exposes the notions from Section 2 of the paper: the sets
``Const(D)`` and ``Null(D)`` of constants and nulls occurring in ``D``,
the active domain ``dom(D)``, and completeness (no nulls).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from .relation import Relation
from .schema import DatabaseSchema, RelationSchema
from .values import Value, is_const, is_null

__all__ = ["Database"]


class Database:
    """A named collection of relations, possibly containing nulls."""

    def __init__(self, relations: Mapping[str, Relation] | None = None):
        self._relations: dict[str, Relation] = dict(relations or {})

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(
        cls, data: Mapping[str, tuple[Sequence[str], Iterable[Sequence[Value]]]]
    ) -> "Database":
        """Build a database from ``{name: (attributes, rows)}``."""
        relations = {
            name: Relation(attributes, rows) for name, (attributes, rows) in data.items()
        }
        return cls(relations)

    def copy(self) -> "Database":
        return Database(dict(self._relations))

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def __getitem__(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise KeyError(f"relation {name!r} not in database") from None

    def get(self, name: str) -> Relation | None:
        return self._relations.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[str]:
        return iter(self._relations)

    def __len__(self) -> int:
        return len(self._relations)

    def relation_names(self) -> list[str]:
        return list(self._relations)

    def relations(self) -> Iterator[tuple[str, Relation]]:
        return iter(self._relations.items())

    def with_relation(self, name: str, relation: Relation) -> "Database":
        """Return a copy of the database with ``name`` bound to ``relation``."""
        new = dict(self._relations)
        new[name] = relation
        return Database(new)

    def without_relation(self, name: str) -> "Database":
        new = dict(self._relations)
        new.pop(name, None)
        return Database(new)

    # ------------------------------------------------------------------
    # Section 2 notions
    # ------------------------------------------------------------------
    def constants(self) -> set:
        """``Const(D)``: constants occurring anywhere in the database."""
        result: set = set()
        for relation in self._relations.values():
            result |= relation.constants()
        return result

    def nulls(self) -> set:
        """``Null(D)``: nulls occurring anywhere in the database."""
        result: set = set()
        for relation in self._relations.values():
            result |= relation.nulls()
        return result

    def active_domain(self) -> set:
        """``dom(D) = Const(D) ∪ Null(D)``."""
        result: set = set()
        for relation in self._relations.values():
            result |= relation.active_domain()
        return result

    def is_complete(self) -> bool:
        """True iff the database contains no nulls."""
        return all(relation.is_complete() for relation in self._relations.values())

    def total_rows(self) -> int:
        """Total number of distinct rows across all relations."""
        return sum(len(relation) for relation in self._relations.values())

    def total_rows_bag(self) -> int:
        """Total number of rows counted with multiplicity."""
        return sum(r.total_multiplicity() for r in self._relations.values())

    def schema(self) -> DatabaseSchema:
        """The schema induced by the stored relations."""
        return DatabaseSchema(
            RelationSchema(name, relation.attributes)
            for name, relation in self._relations.items()
        )

    # ------------------------------------------------------------------
    # Mapping helpers
    # ------------------------------------------------------------------
    def map_values(self, func) -> "Database":
        """Apply ``func`` to every value in every relation."""
        return Database(
            {name: relation.map_values(func) for name, relation in self._relations.items()}
        )

    def facts(self) -> Iterator[tuple[str, tuple]]:
        """Iterate over all facts ``(relation_name, row)`` (distinct rows)."""
        for name, relation in self._relations.items():
            for row in relation:
                yield name, row

    # ------------------------------------------------------------------
    # Equality, containment and display
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Database):
            return NotImplemented
        return self._relations == other._relations

    def issubset_of(self, other: "Database", *, bag: bool = False) -> bool:
        """Fact-wise containment: every fact of ``self`` appears in ``other``.

        Relations missing from ``self`` are treated as empty.  With
        ``bag=True`` multiplicities must be dominated as well.
        """
        for name, relation in self._relations.items():
            other_rel = other.get(name)
            if other_rel is None:
                if relation:
                    return False
                continue
            if bag:
                for row, count in relation.iter_rows(with_multiplicity=True):
                    if other_rel.multiplicity(row) < count:
                        return False
            else:
                if not relation.rows_set() <= other_rel.rows_set():
                    return False
        return True

    def __repr__(self) -> str:
        parts = ", ".join(f"{name}[{len(rel)}]" for name, rel in self._relations.items())
        return f"Database({parts})"

    def to_text(self, max_rows: int | None = 20) -> str:
        """Render every relation as a small fixed-width table."""
        chunks = []
        for name, relation in self._relations.items():
            chunks.append(f"{name}:")
            chunks.append(relation.to_text(max_rows=max_rows))
            chunks.append("")
        return "\n".join(chunks).rstrip()
