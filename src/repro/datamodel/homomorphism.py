"""Homomorphisms between databases.

Section 4.1 of the paper characterises naïve evaluation via preservation
under classes of homomorphisms: a homomorphism ``h : D → D'`` maps the
active domain of ``D`` to that of ``D'`` so that every fact of ``D`` is
sent to a fact of ``D'``.  Three classes matter:

* arbitrary homomorphisms (identity on constants) — give the OWA
  semantics ``⟦D⟧_owa``;
* *onto* homomorphisms — ``h(dom(D)) = dom(D')``;
* *strong onto* homomorphisms — additionally ``h(D) = D'`` — give the
  CWA semantics ``⟦D⟧``.

This module searches for homomorphisms between (small) databases by
backtracking, and classifies a given mapping.  It is used by the tests
and by the possible-world machinery; the search is exponential in the
worst case, as expected for a reference implementation.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

from .database import Database
from .values import Value, is_const, is_null

__all__ = [
    "is_homomorphism",
    "is_onto_homomorphism",
    "is_strong_onto_homomorphism",
    "find_homomorphism",
    "find_homomorphisms",
]


def _facts(database: Database) -> list[tuple[str, tuple]]:
    return sorted(database.facts(), key=lambda fact: (fact[0], str(fact[1])))


def is_homomorphism(
    mapping: Mapping[Value, Value], source: Database, target: Database
) -> bool:
    """Check that ``mapping`` is a homomorphism ``source → target``.

    The mapping must be defined on all of ``dom(source)`` (constants may be
    omitted — they are implicitly mapped to themselves), be the identity on
    constants, and send every fact of ``source`` to a fact of ``target``.
    """

    def image(value: Value) -> Value:
        if value in mapping:
            return mapping[value]
        return value

    for value in source.active_domain():
        if is_const(value) and value in mapping and mapping[value] != value:
            return False
    for name, row in source.facts():
        target_rel = target.get(name)
        if target_rel is None:
            return False
        if tuple(image(v) for v in row) not in target_rel:
            return False
    return True


def is_onto_homomorphism(
    mapping: Mapping[Value, Value], source: Database, target: Database
) -> bool:
    """Check that ``mapping`` is an onto homomorphism: ``h(dom(D)) = dom(D')``."""
    if not is_homomorphism(mapping, source, target):
        return False
    image = {mapping.get(v, v) for v in source.active_domain()}
    return image == target.active_domain()


def is_strong_onto_homomorphism(
    mapping: Mapping[Value, Value], source: Database, target: Database
) -> bool:
    """Check that ``mapping`` is strong onto: ``h(D) = D'`` fact-for-fact."""
    if not is_homomorphism(mapping, source, target):
        return False

    def image(value: Value) -> Value:
        return mapping.get(value, value)

    for name in set(source.relation_names()) | set(target.relation_names()):
        source_rows = {
            tuple(image(v) for v in row) for row in (source.get(name) or ())
        }
        target_rows = set(target.get(name).rows_set()) if target.get(name) else set()
        if source_rows != target_rows:
            return False
    return True


def find_homomorphisms(
    source: Database,
    target: Database,
    *,
    limit: int | None = None,
) -> Iterator[dict]:
    """Enumerate homomorphisms ``source → target`` (identity on constants).

    A straightforward backtracking search over the facts of the source.
    Intended for small databases (tests, reference checks).
    """
    facts = _facts(source)
    target_domain = sorted(target.active_domain(), key=str)
    count = 0

    def backtrack(index: int, mapping: dict) -> Iterator[dict]:
        nonlocal count
        if limit is not None and count >= limit:
            return
        if index == len(facts):
            # Extend to any unmapped nulls (nulls not occurring in facts).
            remaining = [n for n in source.nulls() if n not in mapping]
            if not remaining:
                count += 1
                yield dict(mapping)
                return
            null = remaining[0]
            for candidate in target_domain:
                mapping[null] = candidate
                yield from backtrack(index, mapping)
                del mapping[null]
            return
        name, row = facts[index]
        target_rel = target.get(name)
        if target_rel is None:
            return
        for target_row in target_rel:
            extension: dict = {}
            ok = True
            for a, b in zip(row, target_row):
                current = mapping.get(a, extension.get(a))
                if is_const(a):
                    if a != b:
                        ok = False
                        break
                elif current is None:
                    extension[a] = b
                elif current != b:
                    ok = False
                    break
            if not ok:
                continue
            mapping.update(extension)
            yield from backtrack(index + 1, mapping)
            for key in extension:
                del mapping[key]

    yield from backtrack(0, {})


def find_homomorphism(source: Database, target: Database) -> dict | None:
    """Return some homomorphism ``source → target`` or None if none exists."""
    for mapping in find_homomorphisms(source, target, limit=1):
        return mapping
    return None
