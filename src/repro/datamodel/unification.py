"""Unification of tuples containing nulls.

Two tuples ``r̄`` and ``s̄`` are *unifiable*, written ``r̄ ⇑ s̄``, if there
is a valuation ``v`` with ``v(r̄) = v(s̄)`` (Section 4.2 and Section 5.1 of
the paper).  Unifiability of flat tuples is decidable in linear time via
union-find; this module implements it and exposes the most general
unifier when one exists.

Unification is the workhorse of both approximation schemes (the
unification anti-semijoin ``⋉⇑`` in Figure 2) and the three-valued atom
semantics with correctness guarantees (equation 13a).
"""

from __future__ import annotations

from typing import Sequence

from .values import Value, is_const, is_null

__all__ = ["unifiable", "unify", "most_general_unifier", "tuples_unify_componentwise"]


class _UnionFind:
    """Union-find over arbitrary hashable items, tracking one constant per class."""

    def __init__(self):
        self._parent: dict = {}
        self._constant: dict = {}

    def find(self, item):
        parent = self._parent.setdefault(item, item)
        if parent != item:
            root = self.find(parent)
            self._parent[item] = root
            return root
        return item

    def constant_of(self, item):
        return self._constant.get(self.find(item))

    def union(self, a, b) -> bool:
        """Merge the classes of ``a`` and ``b``; False on constant clash."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return True
        ca, cb = self._constant.get(ra), self._constant.get(rb)
        if ca is not None and cb is not None and ca != cb:
            return False
        self._parent[ra] = rb
        if cb is None and ca is not None:
            self._constant[rb] = ca
        return True

    def set_constant(self, item, constant) -> bool:
        root = self.find(item)
        existing = self._constant.get(root)
        if existing is not None and existing != constant:
            return False
        self._constant[root] = constant
        return True


def unifiable(left: Sequence[Value], right: Sequence[Value]) -> bool:
    """Return True iff the two tuples unify (``left ⇑ right``).

    Tuples of different arities never unify.  Constants unify only with
    equal constants or with nulls; a null can be forced to several values
    only if they are all equal.
    """
    return most_general_unifier(left, right) is not None


def most_general_unifier(
    left: Sequence[Value], right: Sequence[Value]
) -> dict | None:
    """Return a most general unifier as ``{null: representative}`` or None.

    In the unifier, each null is mapped either to a constant it must take
    or to a canonical null of its equivalence class.  Returns ``None`` when
    the tuples do not unify.
    """
    if len(left) != len(right):
        return None
    uf = _UnionFind()
    for a, b in zip(left, right):
        a_null, b_null = is_null(a), is_null(b)
        if not a_null and not b_null:
            if a != b:
                return None
        elif a_null and b_null:
            if not uf.union(a, b):
                return None
        elif a_null:
            if not uf.set_constant(a, b):
                return None
        else:
            if not uf.set_constant(b, a):
                return None
    unifier: dict = {}
    for value in list(left) + list(right):
        if is_null(value):
            constant = uf.constant_of(value)
            unifier[value] = constant if constant is not None else uf.find(value)
    return unifier


def unify(left: Sequence[Value], right: Sequence[Value]) -> tuple | None:
    """Return the unified tuple (applying the MGU to ``left``) or None.

    Positions whose class has a constant take that constant; positions whose
    class is purely null keep the class representative null.
    """
    mgu = most_general_unifier(left, right)
    if mgu is None:
        return None
    result = []
    for value in left:
        if is_null(value):
            result.append(mgu[value])
        else:
            result.append(value)
    return tuple(result)


def tuples_unify_componentwise(left: Sequence[Value], right: Sequence[Value]) -> bool:
    """A weaker test: every position pair is compatible in isolation.

    Differs from :func:`unifiable` when the same null occurs several times:
    ``(⊥, ⊥)`` and ``(1, 2)`` are componentwise compatible but not unifiable.
    Exposed because the difference matters in tests and ablations.
    """
    if len(left) != len(right):
        return False
    for a, b in zip(left, right):
        if is_const(a) and is_const(b) and a != b:
            return False
    return True
