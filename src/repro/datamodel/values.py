"""Values populating incomplete databases: constants and marked nulls.

The paper's data model (Section 2) has two countably infinite, disjoint
sets of values: ``Const`` (constants) and ``Null`` (marked, or labelled,
nulls, written ⊥ with subscripts).  We model constants as ordinary
hashable Python values (strings, integers, floats, ...) and nulls as
instances of the :class:`Null` class.  Distinct :class:`Null` objects
with the same label compare equal, so nulls can repeat across a database
(marked nulls); Codd nulls are simply marked nulls that happen not to
repeat (see :mod:`repro.datamodel.codd`).
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Iterable, Iterator

__all__ = [
    "Null",
    "NullFactory",
    "Value",
    "is_null",
    "is_const",
    "constants_in",
    "nulls_in",
    "fresh_null",
    "value_sort_key",
]

#: A database value: either a constant (any hashable non-Null object) or a Null.
Value = Any


class Null:
    """A marked (labelled) null value, written ⊥ₗ in the paper.

    Two nulls are equal iff they carry the same label.  Labels may be
    integers or strings; the global :func:`fresh_null` helper hands out
    integer-labelled nulls that are guaranteed fresh within a process.
    """

    __slots__ = ("label",)

    def __init__(self, label: Any = None):
        if label is None:
            label = _GLOBAL_FACTORY.next_label()
        self.label = label

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Null) and other.label == self.label

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return hash(("__null__", self.label))

    def __repr__(self) -> str:
        return f"⊥{self.label}"

    def __str__(self) -> str:
        return f"⊥{self.label}"


class NullFactory:
    """Hands out fresh nulls with increasing integer labels.

    A factory is handy in tests and generators that must create many
    nulls that are guaranteed not to clash with each other.
    """

    def __init__(self, prefix: str = "", start: int = 1):
        self._prefix = prefix
        self._counter = itertools.count(start)
        self._lock = threading.Lock()

    def next_label(self) -> Any:
        with self._lock:
            n = next(self._counter)
        return f"{self._prefix}{n}" if self._prefix else n

    def fresh(self) -> Null:
        """Return a fresh null, distinct from all previously created ones."""
        return Null(self.next_label())

    def fresh_many(self, count: int) -> list[Null]:
        """Return ``count`` pairwise distinct fresh nulls."""
        return [self.fresh() for _ in range(count)]


_GLOBAL_FACTORY = NullFactory(prefix="n")


def fresh_null() -> Null:
    """Return a process-unique fresh null from the global factory."""
    return _GLOBAL_FACTORY.fresh()


def is_null(value: Value) -> bool:
    """Return True iff ``value`` is a (marked) null."""
    return isinstance(value, Null)


def is_const(value: Value) -> bool:
    """Return True iff ``value`` is a constant (i.e. not a null)."""
    return not isinstance(value, Null)


def constants_in(values: Iterable[Value]) -> Iterator[Value]:
    """Yield the constants occurring in ``values`` (in order, with repeats)."""
    for value in values:
        if is_const(value):
            yield value


def nulls_in(values: Iterable[Value]) -> Iterator[Null]:
    """Yield the nulls occurring in ``values`` (in order, with repeats)."""
    for value in values:
        if is_null(value):
            yield value


def value_sort_key(value: Value) -> tuple:
    """A total order over mixed constants and nulls, used for stable output.

    Constants sort before nulls; within each group we sort by the string
    representation of the type name and then the value itself, which gives a
    deterministic (if arbitrary) order even for mixed-type columns.
    """
    if is_null(value):
        return (1, str(type(value.label).__name__), str(value.label))
    return (0, str(type(value).__name__), str(value))
