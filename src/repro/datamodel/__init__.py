"""Relational data model with marked nulls (Section 2 of the paper)."""

from .values import (
    Null,
    NullFactory,
    Value,
    constants_in,
    fresh_null,
    is_const,
    is_null,
    nulls_in,
    value_sort_key,
)
from .relation import Relation, Row
from .schema import DatabaseSchema, RelationSchema
from .database import Database
from .valuation import (
    Valuation,
    apply_valuation_to_tuple,
    bijective_valuation,
    enumerate_valuations,
)
from .unification import (
    most_general_unifier,
    tuples_unify_componentwise,
    unifiable,
    unify,
)
from .homomorphism import (
    find_homomorphism,
    find_homomorphisms,
    is_homomorphism,
    is_onto_homomorphism,
    is_strong_onto_homomorphism,
)
from .codd import (
    SQL_NULL,
    coddify_database,
    coddify_relation,
    equal_up_to_null_renaming,
    is_codd_database,
)

__all__ = [
    "Null",
    "NullFactory",
    "Value",
    "Row",
    "Relation",
    "RelationSchema",
    "DatabaseSchema",
    "Database",
    "Valuation",
    "bijective_valuation",
    "enumerate_valuations",
    "apply_valuation_to_tuple",
    "unifiable",
    "unify",
    "most_general_unifier",
    "tuples_unify_componentwise",
    "is_homomorphism",
    "is_onto_homomorphism",
    "is_strong_onto_homomorphism",
    "find_homomorphism",
    "find_homomorphisms",
    "SQL_NULL",
    "coddify_database",
    "coddify_relation",
    "is_codd_database",
    "equal_up_to_null_renaming",
    "is_null",
    "is_const",
    "fresh_null",
    "constants_in",
    "nulls_in",
    "value_sort_key",
]
