"""Codd nulls and the ``codd`` transformation of SQL nulls.

SQL has a single placeholder ``NULL``; the common theoretical reading
(discussed in the paper's "Marked nulls" open problem, Section 6) is to
interpret each occurrence of ``NULL`` as a *distinct* marked null.  The
``codd`` transformation below performs exactly that replacement, and
helpers check whether a database is in Codd form (no null repeats) and
whether two databases are equal up to a renaming of nulls — the notion
needed to state the commutation property ``Q(codd(D)) ≃ codd(Q(D))``.
"""

from __future__ import annotations

from typing import Iterable

from .database import Database
from .relation import Relation
from .values import Null, NullFactory, is_null

__all__ = [
    "SQL_NULL",
    "coddify_database",
    "coddify_relation",
    "is_codd_database",
    "equal_up_to_null_renaming",
]

#: The single SQL placeholder value.  Workload builders may use this marker
#: for "an SQL NULL"; ``coddify_*`` replaces each occurrence by a fresh
#: marked null.
SQL_NULL = Null("sql")


def coddify_relation(relation: Relation, factory: NullFactory | None = None) -> Relation:
    """Replace every null occurrence in ``relation`` with a fresh marked null."""
    factory = factory or NullFactory(prefix="codd")
    rows = []
    for row, count in relation.iter_rows(with_multiplicity=True):
        for _ in range(count):
            rows.append(tuple(factory.fresh() if is_null(v) else v for v in row))
    return Relation(relation.attributes, rows)


def coddify_database(database: Database, prefix: str = "codd") -> Database:
    """The ``codd`` transformation: each null occurrence becomes a fresh null."""
    factory = NullFactory(prefix=prefix)
    return Database(
        {name: coddify_relation(rel, factory) for name, rel in database.relations()}
    )


def is_codd_database(database: Database) -> bool:
    """True iff no null occurs more than once across the whole database."""
    seen: set[Null] = set()
    for _, relation in database.relations():
        for row, count in relation.iter_rows(with_multiplicity=True):
            occurrences = [v for v in row for _ in range(count) if is_null(v)]
            # Count each occurrence, including repeats inside a single row.
            row_nulls = [v for v in row if is_null(v)]
            if count > 1 and row_nulls:
                return False
            for value in row_nulls:
                if value in seen:
                    return False
                seen.add(value)
            del occurrences
    return True


def equal_up_to_null_renaming(left: Database, right: Database) -> bool:
    """True iff the databases are equal up to a bijective renaming of nulls.

    Used to check the commutation property ``Q(codd(D)) ≃ codd(Q(D))``
    from the paper's discussion of Codd semantics.  The search is a
    backtracking bijection search over nulls; fine for the small instances
    used in tests and examples.
    """
    if sorted(left.relation_names()) != sorted(right.relation_names()):
        return False
    left_nulls = sorted(left.nulls(), key=str)
    right_nulls = sorted(right.nulls(), key=str)
    if len(left_nulls) != len(right_nulls):
        return False
    return _match(left, right, left_nulls, {}, set())


def _match(
    left: Database,
    right: Database,
    remaining: list[Null],
    mapping: dict,
    used: set,
) -> bool:
    if not remaining:
        renamed = left.map_values(lambda v: mapping.get(v, v) if is_null(v) else v)
        return _same_facts(renamed, right)
    null = remaining[0]
    for candidate in sorted(right.nulls(), key=str):
        if candidate in used:
            continue
        mapping[null] = candidate
        used.add(candidate)
        if _match(left, right, remaining[1:], mapping, used):
            return True
        del mapping[null]
        used.discard(candidate)
    return False


def _same_facts(left: Database, right: Database) -> bool:
    for name in set(left.relation_names()) | set(right.relation_names()):
        left_rows = left.get(name).rows_set() if left.get(name) else frozenset()
        right_rows = right.get(name).rows_set() if right.get(name) else frozenset()
        if left_rows != right_rows:
            return False
    return True
