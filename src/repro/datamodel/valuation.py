"""Valuations: maps from nulls to constants.

A valuation ``v : Null(D) → Const`` assigns constants to the nulls of a
database; ``v(D)`` is the complete database obtained by replacing each
null with its image (Section 2 of the paper).  The closed-world
semantics ``⟦D⟧`` is the set of all such ``v(D)``; the open-world
semantics additionally allows arbitrary extra facts.

This module also provides *bijective* valuations onto fresh constants,
the device used to define naïve evaluation (Section 4.1), and
enumeration of all valuations into a finite constant pool, used by the
exact certain-answer and probabilistic modules.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Mapping, Sequence

from .database import Database
from .relation import Relation
from .values import Null, Value, is_null

__all__ = [
    "Valuation",
    "bijective_valuation",
    "enumerate_valuations",
    "apply_valuation_to_tuple",
]


class Valuation:
    """An assignment of constants to nulls.

    The mapping need not cover every null in existence — only the nulls it
    is applied to.  Applying a valuation to a value, tuple, relation or
    database replaces mapped nulls by their image and leaves everything
    else (constants and unmapped nulls) untouched.
    """

    __slots__ = ("_mapping",)

    def __init__(self, mapping: Mapping[Null, Value] | None = None):
        self._mapping: dict[Null, Value] = dict(mapping or {})

    # ------------------------------------------------------------------
    # Mapping interface
    # ------------------------------------------------------------------
    def __getitem__(self, null: Null) -> Value:
        return self._mapping[null]

    def get(self, null: Null, default: Value = None) -> Value:
        return self._mapping.get(null, default)

    def __contains__(self, null: Null) -> bool:
        return null in self._mapping

    def __len__(self) -> int:
        return len(self._mapping)

    def __iter__(self) -> Iterator[Null]:
        return iter(self._mapping)

    def items(self) -> Iterator[tuple[Null, Value]]:
        return iter(self._mapping.items())

    def domain(self) -> set[Null]:
        return set(self._mapping)

    def range(self) -> set[Value]:
        return set(self._mapping.values())

    def as_dict(self) -> dict[Null, Value]:
        return dict(self._mapping)

    def extended(self, mapping: Mapping[Null, Value]) -> "Valuation":
        """A new valuation with extra bindings (existing ones take priority)."""
        merged = dict(mapping)
        merged.update(self._mapping)
        return Valuation(merged)

    def is_injective(self) -> bool:
        return len(set(self._mapping.values())) == len(self._mapping)

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------
    def apply_value(self, value: Value) -> Value:
        """``v(value)``: map a null through the valuation, pass constants through."""
        if is_null(value) and value in self._mapping:
            return self._mapping[value]
        return value

    def apply_tuple(self, row: Sequence[Value]) -> tuple:
        """``v(t̄)``: apply the valuation componentwise to a tuple."""
        return tuple(self.apply_value(v) for v in row)

    def apply_relation(self, relation: Relation) -> Relation:
        """``v(R)``: apply the valuation to every row of a relation."""
        return relation.map_values(self.apply_value)

    def apply_database(self, database: Database) -> Database:
        """``v(D)``: apply the valuation to every relation of a database."""
        return database.map_values(self.apply_value)

    def __call__(self, obj):
        """Apply to a value, tuple, Relation or Database, by type."""
        if isinstance(obj, Database):
            return self.apply_database(obj)
        if isinstance(obj, Relation):
            return self.apply_relation(obj)
        if isinstance(obj, tuple):
            return self.apply_tuple(obj)
        return self.apply_value(obj)

    def inverse(self) -> "Valuation":
        """The inverse map (only meaningful for injective valuations)."""
        if not self.is_injective():
            raise ValueError("cannot invert a non-injective valuation")
        return _InverseValuation({v: k for k, v in self._mapping.items()})

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Valuation):
            return NotImplemented
        return self._mapping == other._mapping

    def __hash__(self) -> int:
        return hash(frozenset(self._mapping.items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"{k!r}→{v!r}" for k, v in self._mapping.items())
        return f"Valuation({{{inner}}})"


class _InverseValuation(Valuation):
    """Maps fresh constants back to the nulls they stand for.

    Used to implement naïve evaluation, where ``Q_naive(D) = v⁻¹(Q(v(D)))``
    for a bijective valuation ``v`` onto fresh constants.  The inverse maps
    arbitrary values (the fresh constants), so it overrides value handling.
    """

    def __init__(self, mapping: Mapping[Value, Value]):
        super().__init__({})
        self._raw = dict(mapping)

    def apply_value(self, value: Value) -> Value:
        return self._raw.get(value, value)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k!r}→{v!r}" for k, v in self._raw.items())
        return f"InverseValuation({{{inner}}})"


def bijective_valuation(
    database: Database,
    avoid: Iterable[Value] = (),
    prefix: str = "@c",
) -> Valuation:
    """A bijective valuation of ``Null(D)`` onto fresh constants.

    The fresh constants are strings ``@c1, @c2, ...`` chosen to be disjoint
    from the active domain of the database and from the extra values in
    ``avoid`` (typically the constants mentioned in the query).  This is
    the valuation used by naïve evaluation (Section 4.1).
    """
    used = set(database.active_domain()) | set(avoid)
    mapping: dict[Null, Value] = {}
    counter = itertools.count(1)
    nulls = sorted(database.nulls(), key=lambda n: str(n.label))
    for null in nulls:
        while True:
            candidate = f"{prefix}{next(counter)}"
            if candidate not in used:
                break
        used.add(candidate)
        mapping[null] = candidate
    return Valuation(mapping)


def enumerate_valuations(
    nulls: Sequence[Null], constants: Sequence[Value]
) -> Iterator[Valuation]:
    """All valuations of the given nulls into the given constant pool.

    This is the finite set ``V_k(D)`` from Section 4.3 when ``constants``
    is the first ``k`` constants of an enumeration of ``Const``.  The
    number of valuations is ``len(constants) ** len(nulls)``; callers are
    expected to keep both small.
    """
    nulls = list(dict.fromkeys(nulls))
    if not nulls:
        yield Valuation({})
        return
    for image in itertools.product(constants, repeat=len(nulls)):
        yield Valuation(dict(zip(nulls, image)))


def apply_valuation_to_tuple(valuation: Valuation, row: Sequence[Value]) -> tuple:
    """Convenience wrapper mirroring the paper's ``v(t̄)`` notation."""
    return valuation.apply_tuple(row)
