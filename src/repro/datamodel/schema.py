"""Relational schemas: relation names with attribute lists.

A :class:`RelationSchema` gives a relation name and its attributes; a
:class:`DatabaseSchema` is a collection of relation schemas.  Schemas
are used by the workload generators, the SQL frontend (name
resolution) and by the algebra evaluators to check that a query is
well-formed for the database it runs on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

__all__ = ["RelationSchema", "DatabaseSchema"]


@dataclass(frozen=True)
class RelationSchema:
    """Name and attributes of a single relation."""

    name: str
    attributes: tuple[str, ...]

    def __init__(self, name: str, attributes: Sequence[str]):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "attributes", tuple(attributes))
        if len(set(self.attributes)) != len(self.attributes):
            raise ValueError(f"duplicate attributes in schema {name}: {attributes}")

    @property
    def arity(self) -> int:
        return len(self.attributes)

    def has_attribute(self, attribute: str) -> bool:
        return attribute in self.attributes

    def index_of(self, attribute: str) -> int:
        try:
            return self.attributes.index(attribute)
        except ValueError:
            raise KeyError(
                f"attribute {attribute!r} not in relation {self.name}"
            ) from None

    def __str__(self) -> str:
        return f"{self.name}({', '.join(self.attributes)})"


class DatabaseSchema:
    """A set of relation schemas, addressable by relation name."""

    def __init__(self, relations: Iterable[RelationSchema] = ()):
        self._relations: dict[str, RelationSchema] = {}
        for relation in relations:
            self.add(relation)

    @classmethod
    def from_dict(cls, mapping: Mapping[str, Sequence[str]]) -> "DatabaseSchema":
        """Build a schema from ``{relation_name: [attr, ...]}``."""
        return cls(RelationSchema(name, attrs) for name, attrs in mapping.items())

    def add(self, relation: RelationSchema) -> None:
        if relation.name in self._relations:
            raise ValueError(f"relation {relation.name!r} already in schema")
        self._relations[relation.name] = relation

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __getitem__(self, name: str) -> RelationSchema:
        try:
            return self._relations[name]
        except KeyError:
            raise KeyError(f"relation {name!r} not in schema") from None

    def get(self, name: str) -> RelationSchema | None:
        return self._relations.get(name)

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    def relation_names(self) -> list[str]:
        return list(self._relations)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DatabaseSchema):
            return NotImplemented
        return self._relations == other._relations

    def __repr__(self) -> str:
        return f"DatabaseSchema({', '.join(str(r) for r in self)})"
