"""Relations over constants and nulls, with set and bag interpretations.

A relation has a tuple of attribute names and a multiset of rows (each
row is a Python ``tuple`` of values of the right arity).  The same class
serves both the set-based theoretical model and the bag-based SQL model:
the :class:`Relation` always records multiplicities, and the set and bag
evaluators in :mod:`repro.algebra` choose how to interpret them.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Iterable, Iterator, Mapping, Sequence

from .values import Null, Value, is_const, is_null, value_sort_key

__all__ = ["Row", "Relation"]

#: A database row: a tuple of values (constants and nulls).
Row = tuple


class Relation:
    """A named collection of rows over a fixed list of attributes.

    Rows are stored with multiplicities (a bag).  ``Relation`` is
    immutable from the caller's perspective: every operation returns a
    new relation.  Equality compares attributes and row multiplicities.
    """

    __slots__ = ("attributes", "_rows", "_index", "_all_unit")

    def __init__(
        self,
        attributes: Sequence[str],
        rows: Iterable[Sequence[Value]] = (),
        multiplicities: Mapping[Row, int] | None = None,
    ):
        self.attributes: tuple[str, ...] = tuple(attributes)
        if len(set(self.attributes)) != len(self.attributes):
            raise ValueError(f"duplicate attribute names: {self.attributes}")
        self._index: dict[str, int] = {a: i for i, a in enumerate(self.attributes)}
        # Lazily computed: True/False once some caller asked whether every
        # multiplicity is already 1 (makes distinct() a cheap no-op).
        self._all_unit: bool | None = None
        counter: Counter = Counter()
        for row in rows:
            tup = tuple(row)
            if len(tup) != len(self.attributes):
                raise ValueError(
                    f"row {tup!r} has arity {len(tup)}, expected {len(self.attributes)}"
                )
            counter[tup] += 1
        if multiplicities:
            for row, count in multiplicities.items():
                tup = tuple(row)
                if len(tup) != len(self.attributes):
                    raise ValueError(
                        f"row {tup!r} has arity {len(tup)}, "
                        f"expected {len(self.attributes)}"
                    )
                if count < 0:
                    raise ValueError(f"negative multiplicity for row {tup!r}")
                if count:
                    counter[tup] += count
        self._rows: Counter = counter

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_counter(cls, attributes: Sequence[str], counter: Mapping[Row, int]) -> "Relation":
        """Build a relation directly from a row → multiplicity mapping."""
        return cls(attributes, rows=(), multiplicities=counter)

    @classmethod
    def empty(cls, attributes: Sequence[str]) -> "Relation":
        """An empty relation over the given attributes."""
        return cls(attributes)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def arity(self) -> int:
        """Number of attributes."""
        return len(self.attributes)

    def multiplicity(self, row: Sequence[Value]) -> int:
        """Number of occurrences of ``row`` in the bag (0 if absent)."""
        return self._rows.get(tuple(row), 0)

    def rows_set(self) -> frozenset:
        """The set of distinct rows (set-semantics view)."""
        return frozenset(self._rows)

    def rows_bag(self) -> Counter:
        """A copy of the row → multiplicity mapping (bag-semantics view)."""
        return Counter(self._rows)

    def iter_rows(self, with_multiplicity: bool = False) -> Iterator:
        """Iterate over distinct rows; optionally yield ``(row, count)`` pairs."""
        if with_multiplicity:
            yield from self._rows.items()
        else:
            yield from self._rows

    def iter_rows_bag(self) -> Iterator[Row]:
        """Iterate over rows with repetition according to multiplicities."""
        for row, count in self._rows.items():
            for _ in range(count):
                yield row

    def __contains__(self, row: Sequence[Value]) -> bool:
        return tuple(row) in self._rows

    def __len__(self) -> int:
        """Number of distinct rows (set cardinality)."""
        return len(self._rows)

    def total_multiplicity(self) -> int:
        """Total number of rows counted with multiplicity (bag cardinality)."""
        return sum(self._rows.values())

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __bool__(self) -> bool:
        return bool(self._rows)

    # ------------------------------------------------------------------
    # Value inspection
    # ------------------------------------------------------------------
    def constants(self) -> set:
        """All constants occurring in the relation."""
        return {v for row in self._rows for v in row if is_const(v)}

    def nulls(self) -> set:
        """All nulls occurring in the relation."""
        return {v for row in self._rows for v in row if is_null(v)}

    def active_domain(self) -> set:
        """All values (constants and nulls) occurring in the relation."""
        return {v for row in self._rows for v in row}

    def is_complete(self) -> bool:
        """True iff the relation contains no nulls.

        Short-circuits at the first null rather than materialising the
        full null set — callers like the ``strategy="auto"`` planner
        probe completeness on every call, and incomplete relations are
        this library's common case.
        """
        return not any(is_null(v) for row in self._rows for v in row)

    def attribute_index(self, attribute: str) -> int:
        """Position of ``attribute``; raises ``KeyError`` if absent."""
        try:
            return self._index[attribute]
        except KeyError:
            raise KeyError(
                f"attribute {attribute!r} not in {self.attributes}"
            ) from None

    def column(self, attribute: str) -> list:
        """The list of values in the given column (distinct rows, in order)."""
        idx = self.attribute_index(attribute)
        return [row[idx] for row in self.sorted_rows()]

    # ------------------------------------------------------------------
    # Transformation helpers (used by evaluators and workload generators)
    # ------------------------------------------------------------------
    def rename(self, mapping: Mapping[str, str]) -> "Relation":
        """Return a copy with attributes renamed according to ``mapping``."""
        new_attrs = [mapping.get(a, a) for a in self.attributes]
        return Relation.from_counter(new_attrs, self._rows)

    def with_attributes(self, attributes: Sequence[str]) -> "Relation":
        """Return a copy with the attribute list replaced (same arity)."""
        attributes = tuple(attributes)
        if len(attributes) != self.arity:
            raise ValueError(
                f"cannot relabel arity-{self.arity} relation with {attributes}"
            )
        return Relation.from_counter(attributes, self._rows)

    def map_values(self, func) -> "Relation":
        """Apply ``func`` to every value, summing multiplicities of collisions."""
        counter: Counter = Counter()
        for row, count in self._rows.items():
            counter[tuple(func(v) for v in row)] += count
        return Relation.from_counter(self.attributes, counter)

    def distinct(self) -> "Relation":
        """Set-semantics projection of the bag: all multiplicities become 1.

        When every multiplicity is already 1 the relation itself is
        returned — the set evaluator collapses after every operator, so
        this no-op saves one full Counter copy per plan node.
        """
        if self._all_unit is None:
            self._all_unit = all(count == 1 for count in self._rows.values())
        if self._all_unit:
            return self
        collapsed = Relation(self.attributes, rows=self._rows.keys())
        collapsed._all_unit = True
        return collapsed

    def add_rows(self, rows: Iterable[Sequence[Value]]) -> "Relation":
        """Return a new relation with the given rows added (bag union)."""
        counter = Counter(self._rows)
        for row in rows:
            tup = tuple(row)
            if len(tup) != self.arity:
                raise ValueError(f"row {tup!r} has wrong arity")
            counter[tup] += 1
        return Relation.from_counter(self.attributes, counter)

    def sorted_rows(self) -> list[Row]:
        """Distinct rows in a deterministic order (for printing and tests)."""
        return sorted(self._rows, key=lambda row: tuple(value_sort_key(v) for v in row))

    # ------------------------------------------------------------------
    # Equality and display
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self.attributes == other.attributes and self._rows == other._rows

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        return hash((self.attributes, frozenset(self._rows.items())))

    def same_rows_as(self, other: "Relation", *, bag: bool = False) -> bool:
        """Compare row contents ignoring attribute names.

        With ``bag=False`` only the sets of distinct rows are compared;
        with ``bag=True`` multiplicities must match as well.
        """
        if self.arity != other.arity:
            return False
        if bag:
            return self._rows == other._rows
        return self.rows_set() == other.rows_set()

    def __repr__(self) -> str:
        return f"Relation({list(self.attributes)!r}, {len(self)} rows)"

    def to_text(self, max_rows: int | None = 20) -> str:
        """A small fixed-width rendering of the relation for examples/benchmarks."""
        rows = self.sorted_rows()
        shown = rows if max_rows is None else rows[:max_rows]
        cells = [[str(a) for a in self.attributes]] + [
            [_render_value(v) for v in row] for row in shown
        ]
        widths = [max(len(r[i]) for r in cells) for i in range(self.arity)] if self.arity else []
        lines = []
        for i, row in enumerate(cells):
            line = " | ".join(cell.ljust(width) for cell, width in zip(row, widths))
            lines.append(line.rstrip())
            if i == 0:
                lines.append("-+-".join("-" * width for width in widths))
        if max_rows is not None and len(rows) > max_rows:
            lines.append(f"... ({len(rows) - max_rows} more rows)")
        if not self.arity:
            lines = ["(nullary relation: %s)" % ("true" if self else "false")]
        return "\n".join(lines)


def _render_value(value: Value) -> str:
    if isinstance(value, Null):
        return str(value)
    return repr(value) if isinstance(value, str) else str(value)
