"""Conditional evaluation of relational algebra over c-tables.

The classic Imielinski–Lipski rules, recalled in Section 4.2: relational
algebra operators manipulate c-tuples and combine their conditions —
Cartesian product conjoins conditions, selection conjoins the (symbolic)
selection condition, union keeps both sides, difference adds the
condition that the tuple does not coincide with any matching tuple of
the right-hand side, and so on.

The evaluation is parameterised by a *post-processing hook* applied to
the c-table produced by each operator; the four strategies of [36]
(eager, semi-eager, lazy, aware) are different choices of hook and are
assembled in :mod:`repro.ctables.strategies`.
"""

from __future__ import annotations

from typing import Callable, Mapping

from ..algebra import ast as ra
from ..algebra.conditions import (
    And,
    Comparison,
    Condition,
    Eq,
    FalseCondition,
    IsConst,
    IsNull,
    Neq,
    Not,
    Or,
    TrueCondition,
)
from ..datamodel.values import Value, is_const, is_null, value_sort_key
from .condition import (
    CtCondition,
    CtOpaque,
    CtTrue,
    ct_and,
    ct_eq,
    ct_neq,
    ct_not,
    ct_or,
)
from .ctable import ConditionalDatabase, CTable, CTuple

__all__ = ["ConditionalEvaluator", "symbolic_condition"]

PostProcess = Callable[[CTable, str], CTable]


def _identity_post_process(table: CTable, operator: str) -> CTable:
    return table


class ConditionalEvaluator:
    """Evaluates relational algebra over a :class:`ConditionalDatabase`.

    ``post_process(table, operator_name)`` is applied to the result of every
    operator; the grounding strategies plug in here.
    """

    def __init__(self, post_process: PostProcess | None = None):
        self.post_process = post_process or _identity_post_process

    def evaluate(self, query: ra.Query, database: ConditionalDatabase) -> CTable:
        method = getattr(self, f"_eval_{type(query).__name__}", None)
        if method is None:
            raise TypeError(
                f"operator {type(query).__name__} is not supported by conditional evaluation"
            )
        result = method(query, database)
        return self.post_process(result, type(query).__name__)

    # ------------------------------------------------------------------
    # Leaves
    # ------------------------------------------------------------------
    def _eval_RelationRef(self, query: ra.RelationRef, database: ConditionalDatabase) -> CTable:
        return database[query.name]

    def _eval_ConstantRelation(self, query: ra.ConstantRelation, database) -> CTable:
        return CTable(query.attributes, [CTuple(row) for row in query.rows])

    # ------------------------------------------------------------------
    # Unary operators
    # ------------------------------------------------------------------
    def _eval_Selection(self, query: ra.Selection, database) -> CTable:
        child = self.evaluate(query.child, database)
        index = {a: i for i, a in enumerate(child.attributes)}
        result = []
        for ctuple in child:
            symbolic = symbolic_condition(query.condition, ctuple.values, index)
            condition = ct_and([ctuple.condition, symbolic])
            result.append(CTuple(ctuple.values, condition))
        return child.with_ctuples(result)

    def _eval_Projection(self, query: ra.Projection, database) -> CTable:
        child = self.evaluate(query.child, database)
        positions = [child.attribute_index(a) for a in query.attributes]
        result = [
            CTuple(tuple(ct.values[p] for p in positions), ct.condition) for ct in child
        ]
        return CTable(query.attributes, result)

    def _eval_Rename(self, query: ra.Rename, database) -> CTable:
        child = self.evaluate(query.child, database)
        mapping = query.mapping_dict()
        attributes = [mapping.get(a, a) for a in child.attributes]
        return CTable(attributes, child.ctuples)

    # ------------------------------------------------------------------
    # Binary operators
    # ------------------------------------------------------------------
    def _eval_Product(self, query: ra.Product, database) -> CTable:
        left = self.evaluate(query.left, database)
        right = self.evaluate(query.right, database)
        attributes = tuple(left.attributes) + tuple(right.attributes)
        result = []
        for lt in left:
            for rt in right:
                result.append(
                    CTuple(lt.values + rt.values, ct_and([lt.condition, rt.condition]))
                )
        return CTable(attributes, result)

    def _eval_Union(self, query: ra.Union, database) -> CTable:
        left = self.evaluate(query.left, database)
        right = self.evaluate(query.right, database)
        if left.arity != right.arity:
            raise ValueError("union requires children of equal arity")
        return CTable(left.attributes, tuple(left.ctuples) + tuple(right.ctuples))

    def _eval_Intersection(self, query: ra.Intersection, database) -> CTable:
        left = self.evaluate(query.left, database)
        right = self.evaluate(query.right, database)
        if left.arity != right.arity:
            raise ValueError("intersection requires children of equal arity")
        result = []
        for lt in left:
            matches = [
                ct_and([rt.condition, _tuples_equal(lt.values, rt.values)]) for rt in right
            ]
            condition = ct_and([lt.condition, ct_or(matches)])
            result.append(CTuple(lt.values, condition))
        return CTable(left.attributes, result)

    def _eval_Difference(self, query: ra.Difference, database) -> CTable:
        left = self.evaluate(query.left, database)
        right = self.evaluate(query.right, database)
        if left.arity != right.arity:
            raise ValueError("difference requires children of equal arity")
        result = []
        for lt in left:
            exclusions = [
                ct_not(ct_and([rt.condition, _tuples_equal(lt.values, rt.values)]))
                for rt in right
            ]
            condition = ct_and([lt.condition, *exclusions])
            result.append(CTuple(lt.values, condition))
        return CTable(left.attributes, result)


def _tuples_equal(left: tuple, right: tuple) -> CtCondition:
    """The condition stating that two value tuples coincide componentwise."""
    return ct_and([ct_eq(a, b) for a, b in zip(left, right)])


def symbolic_condition(
    condition: Condition, row: tuple, index: Mapping[str, int]
) -> CtCondition:
    """Translate an algebra selection condition into a c-tuple condition.

    Equalities and disequalities become symbolic atoms over the row's
    values; const/null tests are resolved against the *syntactic* shape of
    the value; order comparisons involving a null become opaque atoms that
    ground to ``u``.
    """
    if isinstance(condition, TrueCondition):
        return CtTrue()
    if isinstance(condition, FalseCondition):
        return ct_not(CtTrue())
    if isinstance(condition, Not):
        return ct_not(symbolic_condition(condition.operand, row, index))
    if isinstance(condition, And):
        return ct_and(
            [
                symbolic_condition(condition.left, row, index),
                symbolic_condition(condition.right, row, index),
            ]
        )
    if isinstance(condition, Or):
        return ct_or(
            [
                symbolic_condition(condition.left, row, index),
                symbolic_condition(condition.right, row, index),
            ]
        )
    if isinstance(condition, IsConst):
        value = condition.term.resolve(row, index)
        return CtTrue() if is_const(value) else ct_not(CtTrue())
    if isinstance(condition, IsNull):
        value = condition.term.resolve(row, index)
        return CtTrue() if is_null(value) else ct_not(CtTrue())
    if isinstance(condition, Eq):
        return ct_eq(
            condition.left.resolve(row, index), condition.right.resolve(row, index)
        )
    if isinstance(condition, Neq):
        return ct_neq(
            condition.left.resolve(row, index), condition.right.resolve(row, index)
        )
    if isinstance(condition, Comparison):
        left = condition.left.resolve(row, index)
        right = condition.right.resolve(row, index)
        if is_const(left) and is_const(right):
            return CtTrue() if condition.compare(left, right) else ct_not(CtTrue())
        return CtOpaque(f"{left!r}{condition.symbol}{right!r}", (left, right))
    raise TypeError(f"unsupported condition {type(condition).__name__}")
