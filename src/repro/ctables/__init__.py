"""Conditional tables and the grounding-based approximation algorithms of [36]."""

from .condition import (
    CtAnd,
    CtCondition,
    CtEq,
    CtFalse,
    CtNeq,
    CtNot,
    CtOpaque,
    CtOr,
    CtTrue,
    ct_and,
    ct_not,
    ct_or,
    forced_equalities,
    ground,
)
from .ctable import ConditionalDatabase, CTable, CTuple
from .evaluation import ConditionalEvaluator, symbolic_condition
from .strategies import (
    STRATEGIES,
    StrategyResult,
    aware_evaluate,
    eager_evaluate,
    lazy_evaluate,
    run_strategy,
    semi_eager_evaluate,
)

__all__ = [
    "CtCondition",
    "CtTrue",
    "CtFalse",
    "CtEq",
    "CtNeq",
    "CtOpaque",
    "CtAnd",
    "CtOr",
    "CtNot",
    "ct_and",
    "ct_or",
    "ct_not",
    "ground",
    "forced_equalities",
    "CTuple",
    "CTable",
    "ConditionalDatabase",
    "ConditionalEvaluator",
    "symbolic_condition",
    "StrategyResult",
    "STRATEGIES",
    "run_strategy",
    "eager_evaluate",
    "semi_eager_evaluate",
    "lazy_evaluate",
    "aware_evaluate",
]
