"""Conditions attached to c-tuples in conditional tables.

A condition is a Boolean combination of equality atoms between values
(constants and nulls).  Its truth depends on how nulls are interpreted,
so a condition can be *grounded* (Section 4.2, [36]) to one of three
values:

* ``t`` — the condition holds under every valuation (it is valid);
* ``f`` — it holds under no valuation (it is unsatisfiable);
* ``u`` — otherwise.

Validity and satisfiability of equality logic over a finite set of nulls
are decided by enumerating valuations of the nulls *occurring in the
condition* over a small adequate pool (the constants mentioned plus one
fresh constant per null); conditions attached to c-tuples are small, so
this is cheap.

The module also extracts *forced equalities* (null = constant entailed
by a satisfiable condition), which the semi-eager and lazy strategies
use to propagate equalities into the tuple values.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..datamodel.values import Null, Value, is_const, is_null
from ..mvl.truthvalues import FALSE, TRUE, UNKNOWN, TruthValue

__all__ = [
    "CtCondition",
    "CtTrue",
    "CtFalse",
    "CtEq",
    "CtNeq",
    "CtOpaque",
    "CtAnd",
    "CtOr",
    "CtNot",
    "ct_and",
    "ct_or",
    "ct_not",
    "ground",
    "forced_equalities",
]


class CtCondition:
    """Base class of c-tuple conditions."""

    def nulls(self) -> set[Null]:
        raise NotImplementedError

    def evaluate(self, assignment: dict) -> bool | None:
        """Truth under a total assignment of the condition's nulls.

        Returns None when the condition contains an opaque atom whose truth
        cannot be determined even under a full assignment (used for order
        comparisons involving nulls, which we do not interpret).
        """
        raise NotImplementedError


@dataclass(frozen=True)
class CtTrue(CtCondition):
    def nulls(self) -> set[Null]:
        return set()

    def evaluate(self, assignment) -> bool | None:
        return True

    def __str__(self) -> str:
        return "t"


@dataclass(frozen=True)
class CtFalse(CtCondition):
    def nulls(self) -> set[Null]:
        return set()

    def evaluate(self, assignment) -> bool | None:
        return False

    def __str__(self) -> str:
        return "f"


@dataclass(frozen=True)
class CtEq(CtCondition):
    """Equality between two values (constants or nulls)."""

    left: Value
    right: Value

    def nulls(self) -> set[Null]:
        return {v for v in (self.left, self.right) if is_null(v)}

    def evaluate(self, assignment) -> bool | None:
        left = assignment.get(self.left, self.left) if is_null(self.left) else self.left
        right = assignment.get(self.right, self.right) if is_null(self.right) else self.right
        return left == right

    def __str__(self) -> str:
        return f"{self.left!r}={self.right!r}"


@dataclass(frozen=True)
class CtNeq(CtCondition):
    """Disequality between two values."""

    left: Value
    right: Value

    def nulls(self) -> set[Null]:
        return {v for v in (self.left, self.right) if is_null(v)}

    def evaluate(self, assignment) -> bool | None:
        left = assignment.get(self.left, self.left) if is_null(self.left) else self.left
        right = assignment.get(self.right, self.right) if is_null(self.right) else self.right
        return left != right

    def __str__(self) -> str:
        return f"{self.left!r}≠{self.right!r}"


@dataclass(frozen=True)
class CtOpaque(CtCondition):
    """An atom whose truth is unknown whenever a null is involved.

    Used for order comparisons with nulls: the c-table machinery does not
    interpret the order of unknown values, so such an atom grounds to u.
    """

    description: str
    involved: tuple[Value, ...] = ()

    def nulls(self) -> set[Null]:
        return {v for v in self.involved if is_null(v)}

    def evaluate(self, assignment) -> bool | None:
        return None

    def __str__(self) -> str:
        return f"?{self.description}"


@dataclass(frozen=True)
class CtAnd(CtCondition):
    operands: tuple[CtCondition, ...]

    def nulls(self) -> set[Null]:
        return set().union(*(op.nulls() for op in self.operands)) if self.operands else set()

    def evaluate(self, assignment) -> bool | None:
        result: bool | None = True
        for operand in self.operands:
            value = operand.evaluate(assignment)
            if value is False:
                return False
            if value is None:
                result = None
        return result

    def __str__(self) -> str:
        return "(" + " ∧ ".join(str(op) for op in self.operands) + ")"


@dataclass(frozen=True)
class CtOr(CtCondition):
    operands: tuple[CtCondition, ...]

    def nulls(self) -> set[Null]:
        return set().union(*(op.nulls() for op in self.operands)) if self.operands else set()

    def evaluate(self, assignment) -> bool | None:
        result: bool | None = False
        for operand in self.operands:
            value = operand.evaluate(assignment)
            if value is True:
                return True
            if value is None:
                result = None
        return result

    def __str__(self) -> str:
        return "(" + " ∨ ".join(str(op) for op in self.operands) + ")"


@dataclass(frozen=True)
class CtNot(CtCondition):
    operand: CtCondition

    def nulls(self) -> set[Null]:
        return self.operand.nulls()

    def evaluate(self, assignment) -> bool | None:
        value = self.operand.evaluate(assignment)
        return None if value is None else not value

    def __str__(self) -> str:
        return f"¬{self.operand}"


# ----------------------------------------------------------------------
# Smart constructors with local simplification
# ----------------------------------------------------------------------
def ct_eq(left: Value, right: Value) -> CtCondition:
    """Equality atom, simplified when both sides are constants or identical."""
    if left == right:
        return CtTrue()
    if is_const(left) and is_const(right):
        return CtFalse()
    return CtEq(left, right)


def ct_neq(left: Value, right: Value) -> CtCondition:
    if left == right:
        return CtFalse()
    if is_const(left) and is_const(right):
        return CtTrue()
    return CtNeq(left, right)


def ct_and(operands: Iterable[CtCondition]) -> CtCondition:
    flattened: list[CtCondition] = []
    for operand in operands:
        if isinstance(operand, CtFalse):
            return CtFalse()
        if isinstance(operand, CtTrue):
            continue
        if isinstance(operand, CtAnd):
            flattened.extend(operand.operands)
        else:
            flattened.append(operand)
    if not flattened:
        return CtTrue()
    if len(flattened) == 1:
        return flattened[0]
    return CtAnd(tuple(flattened))


def ct_or(operands: Iterable[CtCondition]) -> CtCondition:
    flattened: list[CtCondition] = []
    for operand in operands:
        if isinstance(operand, CtTrue):
            return CtTrue()
        if isinstance(operand, CtFalse):
            continue
        if isinstance(operand, CtOr):
            flattened.extend(operand.operands)
        else:
            flattened.append(operand)
    if not flattened:
        return CtFalse()
    if len(flattened) == 1:
        return flattened[0]
    return CtOr(tuple(flattened))


def ct_not(operand: CtCondition) -> CtCondition:
    if isinstance(operand, CtTrue):
        return CtFalse()
    if isinstance(operand, CtFalse):
        return CtTrue()
    if isinstance(operand, CtNot):
        return operand.operand
    if isinstance(operand, CtEq):
        return CtNeq(operand.left, operand.right)
    if isinstance(operand, CtNeq):
        return CtEq(operand.left, operand.right)
    return CtNot(operand)


# ----------------------------------------------------------------------
# Grounding
# ----------------------------------------------------------------------
def _assignments(condition: CtCondition) -> Iterable[dict]:
    """All relevant assignments of the condition's nulls over an adequate pool."""
    nulls = sorted(condition.nulls(), key=lambda n: str(n.label))
    if not nulls:
        yield {}
        return
    constants = _constants_in(condition)
    pool = sorted(constants, key=str) + [f"#g{i}" for i in range(1, len(nulls) + 1)]
    for image in itertools.product(pool, repeat=len(nulls)):
        yield dict(zip(nulls, image))


def _constants_in(condition: CtCondition) -> set:
    constants: set = set()

    def visit(node: CtCondition) -> None:
        if isinstance(node, (CtEq, CtNeq)):
            for value in (node.left, node.right):
                if is_const(value):
                    constants.add(value)
        elif isinstance(node, CtOpaque):
            for value in node.involved:
                if is_const(value):
                    constants.add(value)
        elif isinstance(node, (CtAnd, CtOr)):
            for operand in node.operands:
                visit(operand)
        elif isinstance(node, CtNot):
            visit(node.operand)

    visit(condition)
    return constants


def ground(condition: CtCondition) -> TruthValue:
    """Reduce a condition to t (valid), f (unsatisfiable) or u (contingent)."""
    always = True
    never = True
    for assignment in _assignments(condition):
        value = condition.evaluate(assignment)
        if value is None:
            return UNKNOWN
        if value:
            never = False
        else:
            always = False
        if not always and not never:
            return UNKNOWN
    if always:
        return TRUE
    if never:
        return FALSE
    return UNKNOWN


def forced_equalities(condition: CtCondition) -> dict[Null, Value]:
    """Null → constant bindings entailed by a satisfiable condition.

    A binding ⊥ → c is forced when the condition is satisfiable and every
    satisfying assignment maps ⊥ to c.  Used by the equality-propagation
    strategies (semi-eager, lazy, aware) of [36].
    """
    nulls = sorted(condition.nulls(), key=lambda n: str(n.label))
    if not nulls:
        return {}
    candidates: dict[Null, set] = {}
    satisfiable = False
    for assignment in _assignments(condition):
        value = condition.evaluate(assignment)
        if value is None:
            return {}
        if not value:
            continue
        satisfiable = True
        for null in nulls:
            candidates.setdefault(null, set()).add(assignment[null])
    if not satisfiable:
        return {}
    known_constants = _constants_in(condition)
    forced: dict[Null, Value] = {}
    for null, values in candidates.items():
        if len(values) == 1:
            (value,) = values
            # Only constants actually mentioned in the condition can be forced;
            # a lone pool-fresh witness just means "anything unmentioned works".
            if is_const(value) and value in known_constants:
                forced[null] = value
    return forced
