"""The four c-table approximation strategies of [36] (Section 4.2).

All four algorithms evaluate the query conditionally over c-tables and
differ only in *when* conditions are grounded (reduced to t/f/u) and
whether forced equalities are propagated into the tuple values:

* **Eager** (``Eval_e``): conditions are grounded immediately after each
  operator.
* **Semi-eager** (``Eval_s``): like eager, but forced equalities are
  propagated first — e.g. ⟨⊥₂, ⊥₁=c ∧ ⊥₁=⊥₂⟩ becomes ⟨c, u⟩ rather than
  the less informative ⟨⊥₂, u⟩.
* **Lazy** (``Eval_ℓ``): propagation and grounding only on the result of
  each difference operator; everything else keeps exact conditions.
* **Aware** (``Eval_a``): grounding postponed to the very end, on the
  (locally simplified) conditions.

Every strategy has correctness guarantees (Theorem 4.9):
``Eval⋆_t(Q, D) ⊆ cert⊥(Q, D)``, and the eager strategy coincides with
the Figure 2b translation: ``Q+(D) = Eval_e,t(Q, D)`` and
``Q?(D) = Eval_e,p(Q, D)`` — checked in the tests and in experiment E7.

.. deprecated:: 1.1
   As a *public* entry point, prefer ``Engine.evaluate(query, db,
   strategy="ctables", variant=...)`` from :mod:`repro.engine`; these
   functions remain as the strategy's implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..algebra import ast as ra
from ..datamodel.database import Database
from ..datamodel.relation import Relation
from ..mvl.truthvalues import FALSE, TRUE, UNKNOWN
from .condition import CtOpaque, CtTrue, forced_equalities, ground
from .ctable import ConditionalDatabase, CTable, CTuple
from .evaluation import ConditionalEvaluator

__all__ = [
    "StrategyResult",
    "eager_evaluate",
    "semi_eager_evaluate",
    "lazy_evaluate",
    "aware_evaluate",
    "STRATEGIES",
    "run_strategy",
]


@dataclass(frozen=True)
class StrategyResult:
    """The outcome of one strategy: the final c-table and the two answer sets."""

    strategy: str
    ctable: CTable
    certain: Relation
    possible: Relation


# ----------------------------------------------------------------------
# Post-processing hooks
# ----------------------------------------------------------------------
def _ground_ctuple(ctuple: CTuple, *, propagate: bool) -> CTuple | None:
    """Ground one c-tuple; None means the c-tuple is dropped (condition f)."""
    condition = ctuple.condition
    values = ctuple.values
    if propagate:
        bindings = forced_equalities(condition)
        if bindings:
            values = tuple(bindings.get(v, v) for v in values)
    truth = ground(condition)
    if truth is FALSE:
        return None
    if truth is TRUE:
        return CTuple(values, CtTrue())
    return CTuple(values, CtOpaque("u"))


def _ground_table(table: CTable, *, propagate: bool) -> CTable:
    grounded = []
    for ctuple in table:
        result = _ground_ctuple(ctuple, propagate=propagate)
        if result is not None:
            grounded.append(result)
    return table.with_ctuples(grounded)


def _eager_hook(table: CTable, operator: str) -> CTable:
    return _ground_table(table, propagate=False)


def _semi_eager_hook(table: CTable, operator: str) -> CTable:
    return _ground_table(table, propagate=True)


def _lazy_hook(table: CTable, operator: str) -> CTable:
    if operator == "Difference":
        return _ground_table(table, propagate=True)
    return table


def _aware_hook(table: CTable, operator: str) -> CTable:
    return table


_HOOKS = {
    "eager": _eager_hook,
    "semi_eager": _semi_eager_hook,
    "lazy": _lazy_hook,
    "aware": _aware_hook,
}

#: The strategy names, in increasing order of answer-set precision.
STRATEGIES = ("eager", "semi_eager", "lazy", "aware")


def run_strategy(strategy: str, query: ra.Query, database: Database) -> StrategyResult:
    """Run one of the four strategies on an ordinary database.

    The database is first lifted to a conditional database with all
    conditions ``t``, as in [36].
    """
    try:
        hook = _HOOKS[strategy]
    except KeyError:
        raise ValueError(f"unknown strategy {strategy!r}; expected one of {STRATEGIES}") from None
    conditional = ConditionalDatabase.from_database(database)
    evaluator = ConditionalEvaluator(post_process=hook)
    table = evaluator.evaluate(query, conditional)
    return StrategyResult(
        strategy=strategy,
        ctable=table,
        certain=table.certain_rows().distinct(),
        possible=table.possible_rows().distinct(),
    )


def eager_evaluate(query: ra.Query, database: Database) -> StrategyResult:
    """``Eval_e``: ground after every operator."""
    return run_strategy("eager", query, database)


def semi_eager_evaluate(query: ra.Query, database: Database) -> StrategyResult:
    """``Eval_s``: propagate forced equalities, then ground, after every operator."""
    return run_strategy("semi_eager", query, database)


def lazy_evaluate(query: ra.Query, database: Database) -> StrategyResult:
    """``Eval_ℓ``: propagate and ground only after difference operators."""
    return run_strategy("lazy", query, database)


def aware_evaluate(query: ra.Query, database: Database) -> StrategyResult:
    """``Eval_a``: keep exact (locally simplified) conditions until the end."""
    return run_strategy("aware", query, database)
