"""Conditional tables (c-tables) and conditional databases.

A c-table is a relation whose rows carry conditions: the pair ⟨t̄, φ⟩ is
a *c-tuple*, and the tuple t̄ is present in a possible world exactly when
the world's valuation satisfies φ (Imielinski–Lipski [43], recalled in
Section 4.2 of the paper).

The approximation algorithms of [36] start from an ordinary database
converted into a conditional database where every condition is ``t``,
then evaluate relational algebra conditionally and *ground* conditions
to t / f / u at various points (see :mod:`repro.ctables.strategies`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from ..datamodel.database import Database
from ..datamodel.relation import Relation
from ..datamodel.values import Value
from ..mvl.truthvalues import FALSE, TRUE, UNKNOWN, TruthValue
from .condition import CtCondition, CtTrue, ground

__all__ = ["CTuple", "CTable", "ConditionalDatabase"]


@dataclass(frozen=True)
class CTuple:
    """A conditional tuple ⟨values, condition⟩."""

    values: tuple[Value, ...]
    condition: CtCondition

    def __init__(self, values: Sequence[Value], condition: CtCondition | None = None):
        object.__setattr__(self, "values", tuple(values))
        object.__setattr__(self, "condition", condition if condition is not None else CtTrue())

    def grounded(self) -> TruthValue:
        """The grounded condition: t, f or u."""
        return ground(self.condition)

    def __str__(self) -> str:
        return f"⟨{self.values}, {self.condition}⟩"


class CTable:
    """A conditional table: attributes plus a list of c-tuples."""

    def __init__(self, attributes: Sequence[str], ctuples: Iterable[CTuple] = ()):
        self.attributes: tuple[str, ...] = tuple(attributes)
        self.ctuples: tuple[CTuple, ...] = tuple(ctuples)
        for ctuple in self.ctuples:
            if len(ctuple.values) != len(self.attributes):
                raise ValueError(
                    f"c-tuple {ctuple} has arity {len(ctuple.values)}, "
                    f"expected {len(self.attributes)}"
                )

    @classmethod
    def from_relation(cls, relation: Relation) -> "CTable":
        """Lift an ordinary relation: every row gets the condition ``t``."""
        return cls(relation.attributes, [CTuple(row) for row in relation.sorted_rows()])

    @property
    def arity(self) -> int:
        return len(self.attributes)

    def __len__(self) -> int:
        return len(self.ctuples)

    def __iter__(self) -> Iterator[CTuple]:
        return iter(self.ctuples)

    def attribute_index(self, attribute: str) -> int:
        try:
            return self.attributes.index(attribute)
        except ValueError:
            raise KeyError(f"attribute {attribute!r} not in {self.attributes}") from None

    def with_ctuples(self, ctuples: Iterable[CTuple]) -> "CTable":
        return CTable(self.attributes, ctuples)

    # ------------------------------------------------------------------
    # Extraction of answers (equations (9a)/(9b) of the paper)
    # ------------------------------------------------------------------
    def certain_rows(self) -> Relation:
        """``Eval_t``: the tuples whose grounded condition is t."""
        rows = [ct.values for ct in self.ctuples if ct.grounded() is TRUE]
        return Relation(self.attributes, rows)

    def possible_rows(self) -> Relation:
        """``Eval_p``: the tuples whose grounded condition is t or u."""
        rows = [ct.values for ct in self.ctuples if ct.grounded() is not FALSE]
        return Relation(self.attributes, rows)

    def to_text(self, max_rows: int | None = 20) -> str:
        lines = [" | ".join(self.attributes) + " | condition"]
        shown = self.ctuples if max_rows is None else self.ctuples[:max_rows]
        for ctuple in shown:
            rendered = " | ".join(str(v) for v in ctuple.values)
            lines.append(f"{rendered} | {ctuple.condition}")
        if max_rows is not None and len(self.ctuples) > max_rows:
            lines.append(f"... ({len(self.ctuples) - max_rows} more c-tuples)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"CTable({list(self.attributes)!r}, {len(self.ctuples)} c-tuples)"


class ConditionalDatabase:
    """A database whose relations are conditional tables."""

    def __init__(self, tables: dict[str, CTable] | None = None):
        self._tables: dict[str, CTable] = dict(tables or {})

    @classmethod
    def from_database(cls, database: Database) -> "ConditionalDatabase":
        """Lift an ordinary database (all conditions ``t``), as in [36]."""
        return cls({name: CTable.from_relation(rel) for name, rel in database.relations()})

    def __getitem__(self, name: str) -> CTable:
        try:
            return self._tables[name]
        except KeyError:
            raise KeyError(f"relation {name!r} not in conditional database") from None

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __iter__(self) -> Iterator[str]:
        return iter(self._tables)

    def relation_names(self) -> list[str]:
        return list(self._tables)

    def __repr__(self) -> str:
        parts = ", ".join(f"{name}[{len(table)}]" for name, table in self._tables.items())
        return f"ConditionalDatabase({parts})"
