"""Certain answers as objects: the abstract framework of Section 3.1.

A *database domain* is a triple (I, C, ⟦·⟧) of database objects, complete
objects, and a semantic function assigning to each object its set of
possible worlds.  The information preorder is ``x ⪯ y  iff  ⟦y⟧ ⊆ ⟦x⟧``
(fewer possible worlds = more information), and the information-based
certain answer of a query on an object is the greatest lower bound, with
respect to ⪯ on the target domain, of the set of query answers over all
possible worlds (Definition 3.3).

The paper's results in this framework (Propositions 3.5, 3.6, 3.8) are
about existence and coincidence of these objects.  We implement the
framework for *finite* database domains, which is enough to demonstrate
the phenomena — in particular the non-existence of certO under a CWA
target (Proposition 3.5) and its coincidence with cert∩ when the target
has no nulls (Proposition 3.8) — and to use it as an executable
specification in the tests.
"""

from __future__ import annotations

from typing import Callable, Generic, Hashable, Iterable, Mapping, Sequence, TypeVar

__all__ = ["FiniteDatabaseDomain", "certain_answer_object", "most_informative"]

Obj = TypeVar("Obj", bound=Hashable)


class FiniteDatabaseDomain(Generic[Obj]):
    """A finite database domain (I, C, ⟦·⟧).

    Parameters
    ----------
    objects:
        The set I of database objects.
    complete:
        The subset C ⊆ I of complete objects.
    semantics:
        A mapping (or function) assigning to each object its possible
        worlds, each of which must be a complete object.  Every complete
        object must be one of its own possible worlds.
    """

    def __init__(
        self,
        objects: Iterable[Obj],
        complete: Iterable[Obj],
        semantics: Mapping[Obj, Iterable[Obj]] | Callable[[Obj], Iterable[Obj]],
    ):
        self.objects: tuple[Obj, ...] = tuple(objects)
        self.complete: frozenset[Obj] = frozenset(complete)
        if not self.complete <= set(self.objects):
            raise ValueError("complete objects must be among the domain objects")
        getter = semantics if callable(semantics) else semantics.__getitem__
        self._semantics: dict[Obj, frozenset[Obj]] = {}
        for obj in self.objects:
            worlds = frozenset(getter(obj))
            if not worlds <= self.complete:
                raise ValueError(f"possible worlds of {obj!r} must be complete objects")
            self._semantics[obj] = worlds
        for obj in self.complete:
            if obj not in self._semantics[obj]:
                raise ValueError(f"complete object {obj!r} must satisfy x ∈ ⟦x⟧")

    # ------------------------------------------------------------------
    # The semantics and the information preorder
    # ------------------------------------------------------------------
    def worlds(self, obj: Obj) -> frozenset[Obj]:
        """``⟦x⟧``: the possible worlds of an object."""
        return self._semantics[obj]

    def less_informative(self, x: Obj, y: Obj) -> bool:
        """``x ⪯ y``: every possible world of y is a possible world of x."""
        return self.worlds(y) <= self.worlds(x)

    def equivalent(self, x: Obj, y: Obj) -> bool:
        """Information equivalence: same sets of possible worlds."""
        return self.worlds(x) == self.worlds(y)

    # ------------------------------------------------------------------
    # Greatest lower bounds
    # ------------------------------------------------------------------
    def lower_bounds(self, targets: Iterable[Obj]) -> list[Obj]:
        """Objects less informative than every target object."""
        targets = list(targets)
        return [
            candidate
            for candidate in self.objects
            if all(self.less_informative(candidate, t) for t in targets)
        ]

    def greatest_lower_bound(self, targets: Iterable[Obj]) -> Obj | None:
        """The ⪯-greatest lower bound of the targets, if it exists (up to ≡).

        Returns None when no lower bound dominates all others.  When several
        equivalent maxima exist, one of them is returned.
        """
        bounds = self.lower_bounds(targets)
        for candidate in bounds:
            if all(self.less_informative(other, candidate) for other in bounds):
                return candidate
        return None


def certain_answer_object(
    source: FiniteDatabaseDomain,
    target: FiniteDatabaseDomain,
    query: Callable[[Obj], Obj],
    obj: Obj,
):
    """``certO(Q, x)``: the information-based certain answer (Definition 3.3).

    ``query`` maps complete objects of the source domain to complete
    objects of the target domain.  The result is the ⪯-greatest lower
    bound, in the target domain, of ``{Q(w) | w ∈ ⟦x⟧}``, or None when it
    does not exist — which is precisely the situation of Proposition 3.5.
    """
    answers = [query(world) for world in sorted(source.worlds(obj), key=repr)]
    missing = [a for a in answers if a not in set(target.objects)]
    if missing:
        raise ValueError(f"query answers {missing!r} are not objects of the target domain")
    return target.greatest_lower_bound(answers)


def most_informative(domain: FiniteDatabaseDomain, objects: Sequence[Obj]) -> list[Obj]:
    """The ⪯-maximal elements among ``objects`` (used in tests and examples)."""
    return [
        x
        for x in objects
        if not any(
            domain.less_informative(x, y) and not domain.equivalent(x, y) for y in objects
        )
    ]
