"""Exact certain answers (Section 3.2), computed by brute force.

Two relational notions of certainty from the paper:

* intersection-based certain answers (Definition 3.7)::

      cert∩(Q, D) = ⋂ { Q(D') | D' ∈ ⟦D⟧ }

* certain answers with nulls (Definition 3.9, CWA form)::

      cert⊥(Q, D) = { t̄ over dom(D) | v(t̄) ∈ Q(v(D)) for every valuation v }

Both are intractable in general (Theorem 3.12: coNP-complete under CWA,
undecidable under OWA for FO), so these functions are *reference*
implementations used as ground truth on small databases by the tests,
the quality metrics (precision/recall of approximations) and the
benchmarks that need an exact baseline.

For generic queries, it is enough to consider valuations into a finite
pool of constants: ``Const(D)``, the constants of the query, and one
fresh constant per null (see :mod:`repro.incomplete.worlds`).  The
number of valuations is ``|pool| ** |Null(D)|``, so keep ``Null(D)``
small.

Under OWA, exact computation is only offered for monotone queries
(UCQs), where the CWA answer coincides with the OWA answer; for other
queries :func:`certain_answers_owa` raises, matching the undecidability
result.

.. deprecated:: 1.1
   As a *public* entry point, prefer ``Engine.evaluate(query, db,
   strategy="exact-certain")`` from :mod:`repro.engine`; these functions
   remain as the strategy's implementation.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..algebra import ast as ra
from ..calculus.evaluation import FoQuery
from ..calculus.fragments import is_ucq
from ..datamodel.database import Database
from ..datamodel.relation import Relation
from ..datamodel.values import Value, is_const
from ..resilience import active_deadline
from .naive import _query_constants, _run, naive_evaluate_direct
from .worlds import constant_pool, count_valuations, iterate_worlds

__all__ = [
    "certain_answers_with_nulls",
    "certain_answers_intersection",
    "certain_boolean",
    "certain_answers_owa",
    "possible_answers",
    "CERTAIN_ENUMERATION_LIMIT",
]

#: Guard against accidentally enumerating an astronomically large set of
#: valuations; raise instead of looping for hours.
CERTAIN_ENUMERATION_LIMIT = 2_000_000


def _checked_pool(query, database: Database, extra_fresh: int | None) -> list[Value]:
    pool = constant_pool(database, _query_constants(query), extra_fresh=extra_fresh)
    total = count_valuations(database, pool)
    if total > CERTAIN_ENUMERATION_LIMIT:
        raise ValueError(
            f"exact certain answers would require {total} valuations; "
            f"the limit is {CERTAIN_ENUMERATION_LIMIT} "
            "(use the approximation schemes for larger instances)"
        )
    return pool


def _worlds(database: Database, pool: Sequence[Value]):
    """``iterate_worlds`` honouring any ambient evaluation deadline.

    Each world costs a full query evaluation, so the check runs every
    iteration — these loops are where a blown wall-clock budget would
    otherwise grind on for ``|pool| ** |Null(D)|`` worlds.
    """
    worlds = iterate_worlds(database, pool)
    deadline = active_deadline()
    if deadline is None:
        return worlds
    return deadline.ticked(worlds, every=1, where="valuation enumeration")


def certain_answers_with_nulls(
    query,
    database: Database,
    *,
    extra_fresh: int | None = None,
    optimize: bool = False,
) -> Relation:
    """``cert⊥(Q, D)`` under CWA, by enumeration of valuations.

    Candidate tuples are the naïve answers (for a generic query every
    certain tuple over ``dom(D)`` is a naïve answer, because the bijective
    valuation onto fresh constants is among the valuations checked).

    ``optimize`` runs the plan optimizer before evaluation; the
    optimized plan is memoised, so the per-world loop pays the rewrite
    once and evaluates the cheaper plan in every possible world.
    """
    candidates = naive_evaluate_direct(query, database, optimize=optimize)
    pool = _checked_pool(query, database, extra_fresh)
    surviving = set(candidates.rows_set())
    for valuation, world in _worlds(database, pool):
        if not surviving:
            break
        answer = _run(query, world, optimize=optimize).rows_set()
        surviving = {row for row in surviving if valuation.apply_tuple(row) in answer}
    return Relation(candidates.attributes, sorted(surviving, key=str))


def certain_answers_intersection(
    query,
    database: Database,
    *,
    extra_fresh: int | None = None,
    optimize: bool = False,
) -> Relation:
    """``cert∩(Q, D)`` under CWA: the null-free certain answers.

    By Proposition 3.10, ``cert∩(Q, D) = cert⊥(Q, D) ∩ Const^m``.
    """
    with_nulls = certain_answers_with_nulls(
        query, database, extra_fresh=extra_fresh, optimize=optimize
    )
    constant_rows = [row for row in with_nulls if all(is_const(v) for v in row)]
    return Relation(with_nulls.attributes, constant_rows)


def certain_boolean(query, database: Database, *, extra_fresh: int | None = None) -> bool:
    """Certainty of a Boolean query: true in every possible world (CWA)."""
    pool = _checked_pool(query, database, extra_fresh)
    for _, world in _worlds(database, pool):
        if not _run(query, world):
            return False
    return True


def possible_answers(
    query,
    database: Database,
    *,
    extra_fresh: int | None = None,
    optimize: bool = False,
) -> Relation:
    """Tuples that are an answer in at least one possible world (CWA).

    The dual of certainty; used by the tests of the ``Q?`` translation
    (equation (5) of the paper gives ``Q(v(D)) ⊆ v(Q?(D))``, i.e. ``Q?``
    over-approximates possibility).  Answers are reported as tuples over
    ``dom(D)`` whose image is an answer in some world.
    """
    candidates = _candidate_tuples(query, database)
    pool = _checked_pool(query, database, extra_fresh)
    possible: set = set()
    for valuation, world in _worlds(database, pool):
        answer = _run(query, world, optimize=optimize).rows_set()
        for row in candidates:
            if row not in possible and valuation.apply_tuple(row) in answer:
                possible.add(row)
    attributes = _output_attributes(query, database)
    return Relation(attributes, sorted(possible, key=str))


def _candidate_tuples(query, database: Database) -> list[tuple]:
    """All tuples over dom(D) of the query's output arity (small instances only)."""
    import itertools

    arity = _output_arity(query, database)
    domain = sorted(database.active_domain(), key=str)
    if arity == 0:
        return [()]
    return [tuple(c) for c in itertools.product(domain, repeat=arity)]


def _output_arity(query, database: Database) -> int:
    if isinstance(query, FoQuery):
        return query.arity
    return len(query.output_attributes(database.schema()))


def _output_attributes(query, database: Database) -> tuple[str, ...]:
    if isinstance(query, FoQuery):
        return query.attributes()
    return tuple(query.output_attributes(database.schema()))


def certain_answers_owa(query, database: Database, **kwargs) -> Relation:
    """Certain answers under OWA.

    Offered only for unions of conjunctive queries, where monotonicity
    makes the OWA and CWA answers coincide and naïve evaluation is exact
    (Theorem 4.4).  For other queries the problem is undecidable
    (Theorem 3.12) and a ``ValueError`` is raised.
    """
    if isinstance(query, FoQuery) and is_ucq(query.formula):
        return certain_answers_with_nulls(query, database, **kwargs)
    raise ValueError(
        "exact OWA certain answers are only supported for UCQs; "
        "use the approximation schemes for other queries"
    )
