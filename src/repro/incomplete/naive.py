"""Naïve evaluation of queries over databases with nulls (Section 4.1).

Naïve evaluation treats nulls as fresh constants: formally,
``Q_naive(D) = v⁻¹(Q(v(D)))`` for a bijective valuation ``v`` of the
nulls onto fresh constants.  For generic queries the choice of ``v``
does not matter.

Our algebra and calculus evaluators already treat nulls as ordinary
values (a null equals only itself), so evaluating a query directly on
the incomplete database *is* naïve evaluation.  Both styles are exposed:
:func:`naive_evaluate_direct` runs the evaluator on ``D`` as-is, while
:func:`naive_evaluate` follows the textbook definition through a
bijective valuation — the two coincide exactly for generic queries, and
the test suite checks that they do.

.. deprecated:: 1.1
   As a *public* entry point, prefer ``Engine.evaluate(query, db,
   strategy="naive")`` from :mod:`repro.engine`; these functions remain
   as the strategy's implementation.
"""

from __future__ import annotations

from typing import Callable, Iterable

from ..algebra import ast as ra
from ..algebra.evaluator import Evaluator
from ..calculus.evaluation import FoQuery
from ..datamodel.database import Database
from ..datamodel.relation import Relation
from ..datamodel.valuation import bijective_valuation

__all__ = ["naive_evaluate", "naive_evaluate_direct", "naive_boolean"]

AnyQuery = "ra.Query | FoQuery"


def _run(
    query,
    database: Database,
    *,
    bag: bool = False,
    optimize: bool = False,
    stats: bool = False,
) -> Relation:
    """Dispatch on the query kind: relational algebra tree or FO query.

    ``optimize`` turns on the plan optimizer of
    :mod:`repro.algebra.optimize` for algebra input (the FO evaluator
    has no plan to optimize; the flag is ignored there); ``stats``
    additionally feeds it per-relation statistics so the physical plan
    is chosen by estimated cost.
    """
    if isinstance(query, ra.Query):
        return Evaluator(bag=bag, optimize=optimize, stats=stats).evaluate(
            query, database
        )
    if isinstance(query, FoQuery):
        return query.answers(database)
    raise TypeError(f"cannot evaluate object of type {type(query).__name__}")


def _query_constants(query) -> set:
    if isinstance(query, FoQuery):
        from ..calculus import ast as fo

        return fo.constants_mentioned(query.formula)
    constants: set = set()
    if isinstance(query, ra.Query):
        from ..algebra.conditions import Comparison, Literal

        for node in ra.walk(query):
            if isinstance(node, ra.ConstantRelation):
                constants.update(v for row in node.rows for v in row)
            if isinstance(node, ra.Selection):
                stack = [node.condition]
                while stack:
                    condition = stack.pop()
                    if isinstance(condition, Comparison):
                        for term in (condition.left, condition.right):
                            if isinstance(term, Literal):
                                constants.add(term.value)
                    stack.extend(condition.children())
    return constants


def naive_evaluate_direct(
    query,
    database: Database,
    *,
    bag: bool = False,
    optimize: bool = False,
    stats: bool = False,
) -> Relation:
    """Naïve evaluation by running the evaluator with nulls as values."""
    return _run(query, database, bag=bag, optimize=optimize, stats=stats)


def naive_evaluate(
    query,
    database: Database,
    *,
    bag: bool = False,
    optimize: bool = False,
    stats: bool = False,
) -> Relation:
    """Naïve evaluation through the textbook definition ``v⁻¹(Q(v(D)))``.

    A bijective valuation ``v`` maps the nulls of ``D`` to fresh constants
    (disjoint from ``dom(D)`` and the constants of the query); the query is
    evaluated on the complete database ``v(D)`` and the answer is mapped
    back through ``v⁻¹``.
    """
    valuation = bijective_valuation(database, avoid=_query_constants(query))
    complete = valuation.apply_database(database)
    answer = _run(query, complete, bag=bag, optimize=optimize, stats=stats)
    inverse = valuation.inverse()
    return answer.map_values(inverse.apply_value)


def naive_boolean(query, database: Database) -> bool:
    """Naïve evaluation of a Boolean query."""
    return bool(naive_evaluate_direct(query, database))
