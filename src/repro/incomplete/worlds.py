"""Possible-world semantics of incomplete databases (Section 2).

Under the closed-world assumption (CWA) the semantics of an incomplete
database ``D`` is ``⟦D⟧ = {v(D) | v a valuation}``; under the open-world
assumption (OWA) any complete superset of some ``v(D)`` is also a
possible world.

``⟦D⟧`` is infinite (valuations range over the countably infinite set of
constants), so it cannot be materialised.  For *generic* queries,
however, it suffices to consider valuations into a finite pool of
constants: the constants of the database, the constants mentioned in the
query, and one fresh constant per null (so that "all nulls distinct and
different from everything known" is represented).  This module builds
such pools and enumerates the corresponding worlds; the exact certain
answer and probabilistic modules are built on top of it.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Sequence

from ..datamodel.database import Database
from ..datamodel.valuation import Valuation, enumerate_valuations
from ..datamodel.values import Value, value_sort_key

__all__ = [
    "constant_pool",
    "fresh_constants",
    "iterate_valuations",
    "iterate_worlds",
    "count_valuations",
]


def fresh_constants(count: int, avoid: Iterable[Value], prefix: str = "#f") -> list[str]:
    """``count`` constants not occurring in ``avoid`` (deterministic names)."""
    avoid_set = set(avoid)
    result: list[str] = []
    counter = itertools.count(1)
    while len(result) < count:
        candidate = f"{prefix}{next(counter)}"
        if candidate not in avoid_set:
            result.append(candidate)
            avoid_set.add(candidate)
    return result


def constant_pool(
    database: Database,
    query_constants: Iterable[Value] = (),
    extra_fresh: int | None = None,
) -> list[Value]:
    """A finite constant pool adequate for generic queries.

    The pool contains ``Const(D)``, the constants mentioned in the query,
    and ``extra_fresh`` fresh constants (default: one per null of ``D``,
    which is enough for a generic query to distinguish "all nulls equal to
    known values" from "all nulls fresh and distinct").
    """
    known = set(database.constants()) | set(query_constants)
    if extra_fresh is None:
        extra_fresh = max(1, len(database.nulls()))
    pool = sorted(known, key=value_sort_key)
    pool.extend(fresh_constants(extra_fresh, known))
    return pool


def iterate_valuations(
    database: Database,
    pool: Sequence[Value],
) -> Iterator[Valuation]:
    """All valuations of ``Null(D)`` into the given constant pool."""
    nulls = sorted(database.nulls(), key=lambda n: str(n.label))
    yield from enumerate_valuations(nulls, list(pool))


def iterate_worlds(
    database: Database,
    pool: Sequence[Value],
) -> Iterator[tuple[Valuation, Database]]:
    """All pairs ``(v, v(D))`` for valuations into the pool (CWA worlds)."""
    for valuation in iterate_valuations(database, pool):
        yield valuation, valuation.apply_database(database)


def count_valuations(database: Database, pool: Sequence[Value]) -> int:
    """The number of valuations into the pool: ``|pool| ** |Null(D)|``."""
    return len(pool) ** len(database.nulls())
