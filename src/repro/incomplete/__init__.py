"""Semantics of incompleteness: possible worlds, naïve evaluation, certain answers."""

from .worlds import (
    constant_pool,
    count_valuations,
    fresh_constants,
    iterate_valuations,
    iterate_worlds,
)
from .naive import naive_boolean, naive_evaluate, naive_evaluate_direct
from .certain import (
    CERTAIN_ENUMERATION_LIMIT,
    certain_answers_intersection,
    certain_answers_owa,
    certain_answers_with_nulls,
    certain_boolean,
    possible_answers,
)
from .certain_objects import (
    FiniteDatabaseDomain,
    certain_answer_object,
    most_informative,
)

__all__ = [
    "constant_pool",
    "fresh_constants",
    "iterate_valuations",
    "iterate_worlds",
    "count_valuations",
    "naive_evaluate",
    "naive_evaluate_direct",
    "naive_boolean",
    "certain_answers_with_nulls",
    "certain_answers_intersection",
    "certain_answers_owa",
    "certain_boolean",
    "possible_answers",
    "CERTAIN_ENUMERATION_LIMIT",
    "FiniteDatabaseDomain",
    "certain_answer_object",
    "most_informative",
]
