"""The chase with functional and inclusion dependencies.

Section 4.3 of the paper uses the chase: when Σ contains only functional
dependencies, the conditional probability µ(Q|Σ, D, ā) equals
µ(Q, D_Σ, ā) where ``D_Σ`` is the result of chasing ``D`` with Σ.

The FD chase implemented here equates values forced to be equal:

* if a null must equal a constant, the null is replaced by the constant;
* if two nulls must be equal, one is replaced by the other;
* if two distinct constants are forced to be equal, the chase *fails*
  (the constraints cannot be satisfied by any valuation of ``D``).

The inclusion-dependency chase adds missing target facts, inventing
fresh nulls for the unconstrained positions, up to a configurable number
of rounds (the IND chase need not terminate in general).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..datamodel.database import Database
from ..datamodel.relation import Relation
from ..datamodel.values import NullFactory, is_const, is_null
from .dependencies import Constraint, FunctionalDependency, InclusionDependency

__all__ = ["ChaseFailure", "ChaseResult", "chase", "chase_functional_dependencies"]


class ChaseFailure(Exception):
    """Raised when the chase derives an equality between distinct constants."""


@dataclass(frozen=True)
class ChaseResult:
    """The chased database plus bookkeeping about what the chase did."""

    database: Database
    merged_nulls: int
    grounded_nulls: int
    added_facts: int
    rounds: int


def chase_functional_dependencies(
    database: Database, dependencies: Sequence[FunctionalDependency]
) -> Database:
    """Chase the database with FDs only (always terminates).

    Raises :class:`ChaseFailure` when two distinct constants are equated,
    i.e. when no valuation of the database can satisfy the dependencies.
    """
    result = chase(database, [d for d in dependencies if isinstance(d, FunctionalDependency)])
    return result.database


def chase(
    database: Database,
    constraints: Sequence[Constraint],
    *,
    max_rounds: int = 10,
    null_prefix: str = "chase",
) -> ChaseResult:
    """Chase the database with FDs and INDs.

    FD steps are applied to a fixpoint; IND steps add missing facts with
    fresh nulls.  ``max_rounds`` bounds the number of IND rounds so the
    procedure always terminates (the classic chase may not).
    """
    fds = [c for c in constraints if isinstance(c, FunctionalDependency)]
    inds = [c for c in constraints if isinstance(c, InclusionDependency)]
    factory = NullFactory(prefix=null_prefix)
    current = database
    merged = grounded = added = 0
    rounds = 0
    while True:
        current, fd_merged, fd_grounded = _chase_fds_to_fixpoint(current, fds)
        merged += fd_merged
        grounded += fd_grounded
        if not inds or rounds >= max_rounds:
            break
        current, new_facts = _chase_inds_once(current, inds, factory)
        if new_facts == 0:
            break
        added += new_facts
        rounds += 1
    return ChaseResult(
        database=current,
        merged_nulls=merged,
        grounded_nulls=grounded,
        added_facts=added,
        rounds=rounds,
    )


# ----------------------------------------------------------------------
# FD steps
# ----------------------------------------------------------------------
def _chase_fds_to_fixpoint(
    database: Database, fds: Sequence[FunctionalDependency]
) -> tuple[Database, int, int]:
    merged = grounded = 0
    changed = True
    current = database
    while changed:
        changed = False
        for fd in fds:
            if fd.relation not in current:
                continue
            for first, second in fd.violations(current):
                substitution = _equate_rows(first, second, fd, current)
                if substitution is None:
                    continue
                old_value, new_value = substitution
                if is_null(old_value) and is_const(new_value):
                    grounded += 1
                else:
                    merged += 1
                current = current.map_values(
                    lambda v, old=old_value, new=new_value: new if v == old else v
                )
                changed = True
                break
            if changed:
                break
    return current, merged, grounded


def _equate_rows(first: tuple, second: tuple, fd: FunctionalDependency, database: Database):
    """Find one value substitution forced by an FD violation.

    Returns ``(old, new)`` meaning every occurrence of ``old`` should become
    ``new``; raises :class:`ChaseFailure` when two distinct constants clash.
    """
    relation = database[fd.relation]
    for attribute in fd.rhs:
        position = relation.attribute_index(attribute)
        a, b = first[position], second[position]
        if a == b:
            continue
        if is_const(a) and is_const(b):
            raise ChaseFailure(
                f"functional dependency {fd} equates distinct constants {a!r} and {b!r}"
            )
        if is_null(a):
            return a, b
        return b, a
    return None


# ----------------------------------------------------------------------
# IND steps
# ----------------------------------------------------------------------
def _chase_inds_once(
    database: Database, inds: Sequence[InclusionDependency], factory: NullFactory
) -> tuple[Database, int]:
    added = 0
    current = database
    for ind in inds:
        if ind.source not in current:
            continue
        missing = list(ind.violations(current))
        if not missing:
            continue
        target = current.get(ind.target)
        if target is None:
            raise ChaseFailure(
                f"inclusion dependency {ind} refers to missing relation {ind.target!r}"
            )
        target_attrs = target.attributes
        new_rows = []
        for projected in missing:
            binding = dict(zip(ind.target_attributes, projected))
            new_rows.append(
                tuple(binding.get(a, factory.fresh()) for a in target_attrs)
            )
        current = current.with_relation(ind.target, target.add_rows(new_rows))
        added += len(new_rows)
    return current, added
