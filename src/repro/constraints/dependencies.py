"""Integrity constraints: functional and inclusion dependencies.

Section 4.3 of the paper conditions the probabilistic semantics on a set
Σ of constraints, "most commonly keys and foreign keys, which are
special cases of functional dependencies and inclusion constraints".
This module provides those two classes (plus key/foreign-key sugar),
each able to check satisfaction on a database and to report the
violating pairs of facts — which the chase uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from ..datamodel.database import Database
from ..datamodel.values import Value

__all__ = [
    "Constraint",
    "FunctionalDependency",
    "Key",
    "InclusionDependency",
    "ForeignKey",
    "satisfies_all",
    "violations",
]


class Constraint:
    """Base class of integrity constraints (generic Boolean queries)."""

    def holds(self, database: Database) -> bool:
        raise NotImplementedError

    def violations(self, database: Database) -> Iterator:
        raise NotImplementedError


@dataclass(frozen=True)
class FunctionalDependency(Constraint):
    """``relation: lhs → rhs``: equal lhs values force equal rhs values."""

    relation: str
    lhs: tuple[str, ...]
    rhs: tuple[str, ...]

    def __init__(self, relation: str, lhs: Sequence[str], rhs: Sequence[str]):
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "lhs", tuple(lhs))
        object.__setattr__(self, "rhs", tuple(rhs))

    def __str__(self) -> str:
        return f"{self.relation}: {', '.join(self.lhs)} → {', '.join(self.rhs)}"

    def _positions(self, database: Database) -> tuple[list[int], list[int]]:
        relation = database[self.relation]
        return (
            [relation.attribute_index(a) for a in self.lhs],
            [relation.attribute_index(a) for a in self.rhs],
        )

    def holds(self, database: Database) -> bool:
        for _ in self.violations(database):
            return False
        return True

    def violations(self, database: Database) -> Iterator[tuple[tuple, tuple]]:
        """Pairs of rows that agree on the lhs but differ on the rhs."""
        if self.relation not in database:
            return
        relation = database[self.relation]
        lhs_pos, rhs_pos = self._positions(database)
        groups: dict[tuple, list[tuple]] = {}
        for row in relation:
            key = tuple(row[p] for p in lhs_pos)
            groups.setdefault(key, []).append(row)
        for rows in groups.values():
            for i, first in enumerate(rows):
                for second in rows[i + 1 :]:
                    if tuple(first[p] for p in rhs_pos) != tuple(second[p] for p in rhs_pos):
                        yield first, second


class Key(FunctionalDependency):
    """A key: the key attributes functionally determine all attributes."""

    def __init__(self, relation: str, key_attributes: Sequence[str], all_attributes: Sequence[str]):
        rhs = [a for a in all_attributes if a not in key_attributes]
        super().__init__(relation, key_attributes, rhs)

    def __str__(self) -> str:
        return f"key({self.relation}: {', '.join(self.lhs)})"


@dataclass(frozen=True)
class InclusionDependency(Constraint):
    """``source[source_attrs] ⊆ target[target_attrs]``."""

    source: str
    source_attributes: tuple[str, ...]
    target: str
    target_attributes: tuple[str, ...]

    def __init__(
        self,
        source: str,
        source_attributes: Sequence[str],
        target: str,
        target_attributes: Sequence[str],
    ):
        if len(tuple(source_attributes)) != len(tuple(target_attributes)):
            raise ValueError("inclusion dependency sides must have the same length")
        object.__setattr__(self, "source", source)
        object.__setattr__(self, "source_attributes", tuple(source_attributes))
        object.__setattr__(self, "target", target)
        object.__setattr__(self, "target_attributes", tuple(target_attributes))

    def __str__(self) -> str:
        return (
            f"{self.source}[{', '.join(self.source_attributes)}] ⊆ "
            f"{self.target}[{', '.join(self.target_attributes)}]"
        )

    def holds(self, database: Database) -> bool:
        for _ in self.violations(database):
            return False
        return True

    def violations(self, database: Database) -> Iterator[tuple]:
        """Projected source tuples with no matching target tuple."""
        if self.source not in database:
            return
        source = database[self.source]
        source_pos = [source.attribute_index(a) for a in self.source_attributes]
        target_rows: set = set()
        if self.target in database:
            target = database[self.target]
            target_pos = [target.attribute_index(a) for a in self.target_attributes]
            target_rows = {tuple(row[p] for p in target_pos) for row in target}
        for row in source:
            projected = tuple(row[p] for p in source_pos)
            if projected not in target_rows:
                yield projected


class ForeignKey(InclusionDependency):
    """A foreign key: an inclusion dependency into a key of the target."""


def satisfies_all(database: Database, constraints: Sequence[Constraint]) -> bool:
    """True iff the database satisfies every constraint in the list."""
    return all(constraint.holds(database) for constraint in constraints)


def violations(database: Database, constraints: Sequence[Constraint]) -> list:
    """All violations of all constraints (constraint, violation) pairs."""
    found = []
    for constraint in constraints:
        for violation in constraint.violations(database):
            found.append((constraint, violation))
    return found
