"""Integrity constraints and the chase."""

from .dependencies import (
    Constraint,
    ForeignKey,
    FunctionalDependency,
    InclusionDependency,
    Key,
    satisfies_all,
    violations,
)
from .chase import ChaseFailure, ChaseResult, chase, chase_functional_dependencies

__all__ = [
    "Constraint",
    "FunctionalDependency",
    "Key",
    "InclusionDependency",
    "ForeignKey",
    "satisfies_all",
    "violations",
    "ChaseFailure",
    "ChaseResult",
    "chase",
    "chase_functional_dependencies",
]
