"""The ``strategy="auto"`` planner and the capability contract.

Three layers of guarantees:

1. **Pins** — the Theorem 4.4 fragments (CQ/UCQ/Pos∀G, on the calculus,
   algebra *and* SQL frontends) select naïve evaluation; anything with
   negation does not.
2. **Randomized identity** — auto's answer is tuple-for-tuple equal to
   explicitly naming the strategy it reports choosing, across set/bag
   semantics and monolithic/sharded databases (fixed seed, overridable
   via ``REPRO_PLANNER_SEED`` / ``REPRO_PLANNER_CASES``).  On top of
   identity, every decision claiming ``guarantee="exact"`` is audited
   against ``exact-certain`` — so the algebra fragment classifier can
   never silently over-claim Theorem 4.4.
3. **Contract** — the back-compat shim for legacy strategy classes, the
   capability introspection surface (``available_strategies(verbose=True)``,
   ``Engine.describe()``), and cache-key sharing between auto and
   explicit calls.
"""

from __future__ import annotations

import itertools
import os
import random
import warnings
from collections import Counter

import pytest

from repro import Database, Engine, Null, Relation, Session, available_strategies
from repro.algebra import builder as rb
from repro.algebra.conditions import Attr, Eq, IsNull, Literal, Neq, Or
from repro.algebra.fragments import classify_plan
from repro.calculus import ast as fo
from repro.calculus.evaluation import FoQuery
from repro.engine import (
    EngineError,
    EvaluationStrategy,
    StrategyCapabilities,
    StrategyNotApplicableError,
    StrategyOutcome,
    choose_strategy,
    get_strategy,
    normalize_query,
    register_strategy,
    strategy_capabilities,
    unregister_strategy,
)
from repro.engine.capabilities import EXACT_FRAGMENTS_CWA
from repro.sharding import HashPartitioner, RoundRobinPartitioner, ShardedDatabase
from repro.workloads import GeneratorConfig, RelationSpec, generate_database

SEED = int(os.environ.get("REPRO_PLANNER_SEED", "20260728"))
CASES = int(os.environ.get("REPRO_PLANNER_CASES", "120"))


@pytest.fixture
def db() -> Database:
    return Database.from_dict(
        {
            "R": (("a", "b"), [(1, 2), (Null("x"), 3)]),
            "S": (("c",), [(2,), (3,)]),
        }
    )


def _plan(result) -> dict:
    plan = result.metadata.get("plan")
    assert plan is not None, "auto evaluation must record metadata['plan']"
    return plan


# ----------------------------------------------------------------------
# Fragment pins: Theorem 4.4 inputs select naïve
# ----------------------------------------------------------------------
class TestFragmentPins:
    def _auto(self, engine, query, db, **kwargs):
        return engine.evaluate(query, db, strategy="auto", use_cache=False, **kwargs)

    def test_cq_calculus_selects_naive(self, db):
        formula = fo.Exists(
            ["y"], fo.RelAtom("R", [fo.Var("x"), fo.Var("y")])
        )
        result = self._auto(Engine(), FoQuery(formula, free=("x",)), db)
        plan = _plan(result)
        assert plan["strategy"] == "naive"
        assert plan["fragment"] == "CQ"
        assert plan["guarantee"] == "exact"

    def test_ucq_calculus_selects_naive(self, db):
        formula = fo.Or(
            fo.Exists(["y"], fo.RelAtom("R", [fo.Var("x"), fo.Var("y")])),
            fo.RelAtom("S", [fo.Var("x")]),
        )
        plan = _plan(self._auto(Engine(), FoQuery(formula, free=("x",)), db))
        assert plan["strategy"] == "naive"
        assert plan["fragment"] == "UCQ"

    def test_pos_forall_g_calculus_selects_naive(self, db):
        # ∀c (S(c) → ∃a R(a, c)): guarded universal quantification.
        formula = fo.Forall(
            ["c"],
            fo.Implies(
                fo.RelAtom("S", [fo.Var("c")]),
                fo.Exists(["a"], fo.RelAtom("R", [fo.Var("a"), fo.Var("c")])),
            ),
        )
        plan = _plan(self._auto(Engine(), FoQuery(formula, free=()), db))
        assert plan["strategy"] == "naive"
        assert plan["fragment"] == "Pos∀G"

    def test_negated_calculus_does_not_select_naive(self, db):
        formula = fo.Exists(
            ["y"],
            fo.And(
                fo.RelAtom("R", [fo.Var("x"), fo.Var("y")]),
                fo.Not(fo.RelAtom("S", [fo.Var("y")])),
            ),
        )
        plan = _plan(self._auto(Engine(), FoQuery(formula, free=("x",)), db))
        assert plan["strategy"] != "naive"
        # No algebra plan for Figure 2b; the database is tiny, so the
        # planner affords the exact enumeration.
        assert plan["strategy"] == "exact-certain"
        assert plan["guarantee"] == "exact"

    def test_spju_algebra_selects_naive(self, db):
        query = rb.project(
            rb.select(rb.relation("R"), Eq(Attr("b"), Literal(3))), ["a"]
        )
        plan = _plan(self._auto(Engine(), query, db))
        assert plan["strategy"] == "naive"
        assert plan["fragment"] == "CQ"

    def test_negation_bearing_algebra_selects_sound_approximation(self, db):
        query = rb.difference(rb.project(rb.relation("R"), ["b"]), rb.relation("S"))
        plan = _plan(self._auto(Engine(), query, db))
        assert plan["strategy"] == "approx-guagliardo16"
        assert plan["guarantee"] == "sound"
        assert plan["fragment"] == "FO"

    def test_compiled_sql_cq_selects_naive(self, db):
        plan = _plan(self._auto(Engine(), "SELECT a FROM R WHERE b = 3", db))
        assert plan["strategy"] == "naive"
        assert plan["fragment"] == "CQ"

    def test_bag_semantics_falls_back_to_naive_without_guarantee(self, db):
        query = rb.difference(rb.project(rb.relation("R"), ["b"]), rb.relation("S"))
        plan = _plan(self._auto(Engine(), query, db, semantics="bag"))
        assert plan["strategy"] == "naive"
        assert plan["guarantee"] == "none"

    def test_complete_database_selects_naive_even_outside_fragments(self):
        complete = Database.from_dict(
            {"R": (("a", "b"), [(1, 2)]), "S": (("c",), [(2,)])}
        )
        query = rb.difference(rb.project(rb.relation("R"), ["b"]), rb.relation("S"))
        plan = _plan(self._auto(Engine(), query, complete))
        assert plan["strategy"] == "naive"
        assert plan["guarantee"] == "exact"

    def test_exact_budget_zero_pushes_calculus_negation_to_best_effort(self, db):
        formula = fo.Not(fo.RelAtom("S", [fo.Var("x")]))
        engine = Engine(auto_exact_budget=0)
        plan = _plan(self._auto(engine, FoQuery(formula, free=("x",)), db))
        assert plan["strategy"] != "exact-certain"
        assert plan["guarantee"] == "none"
        assert any("budget" in why for _, why in [tuple(c) for c in plan["considered"]])

    def test_decision_records_considered_candidates(self, db):
        formula = fo.Not(fo.RelAtom("S", [fo.Var("x")]))
        plan = _plan(self._auto(Engine(), FoQuery(formula, free=("x",)), db))
        rejected = {name for name, _ in (tuple(c) for c in plan["considered"])}
        assert "approx-guagliardo16" in rejected  # needs an algebra plan


# ----------------------------------------------------------------------
# The algebra fragment classifier
# ----------------------------------------------------------------------
class TestClassifyPlan:
    def test_levels(self):
        r = rb.relation("R")
        assert classify_plan(r) == "CQ"
        assert classify_plan(rb.select(r, Eq(Attr("a"), Attr("b")))) == "CQ"
        assert (
            classify_plan(
                rb.select(r, Or(Eq(Attr("a"), Literal(1)), Eq(Attr("b"), Literal(2))))
            )
            == "UCQ"
        )
        assert classify_plan(rb.union(r, rb.relation("R"))) == "UCQ"
        assert classify_plan(rb.select(r, Neq(Attr("a"), Attr("b")))) == "FO"
        assert classify_plan(rb.select(r, IsNull(Attr("a")))) == "FO"
        assert classify_plan(rb.difference(r, rb.relation("R"))) == "FO"

    def test_division_by_base_relation_is_guarded(self):
        dividend = rb.relation("R")
        assert classify_plan(rb.division(dividend, rb.relation("T"))) == "Pos∀G"
        renamed = rb.rename(rb.relation("T"), {"e": "b"})
        assert classify_plan(rb.division(dividend, renamed)) == "Pos∀G"
        # A projected divisor is an ∃-quantified guard — not atomic.
        projected = rb.project(rb.relation("R"), ["b"])
        assert classify_plan(rb.division(dividend, projected)) == "FO"

    def test_matches_normalized_query_fragment(self, db):
        query = rb.select(rb.relation("R"), Eq(Attr("b"), Literal(3)))
        normalized = normalize_query(query, db.schema())
        assert normalized.fragment == classify_plan(query) == "CQ"

    def test_null_literal_equality_is_not_conjunctive(self):
        # σ_{a=⊥}(R) matches the null by *label* under naïve evaluation,
        # while no valuation-quantified semantics does — claiming
        # Theorem 4.4 exactness there would be unsound (regression:
        # naive used to return CERTAIN rows that exact-certain refutes).
        query = rb.select(rb.relation("R"), Eq(Attr("a"), Literal(Null("1"))))
        assert classify_plan(query) == "FO"
        db = Database.from_dict({"R": (("a", "b"), [("x", Null("1"))])})
        bynull = rb.select(rb.relation("R"), Eq(Attr("b"), Literal(Null("1"))))
        engine = Engine()
        naive = engine.evaluate(bynull, db, strategy="naive", use_cache=False)
        cert = engine.evaluate(bynull, db, strategy="exact-certain", use_cache=False)
        assert naive.metadata["exact"] is False
        assert naive.certain is None
        assert cert.relation.rows_set() == frozenset()

    def test_constant_relation_with_null_is_not_conjunctive(self):
        from repro.algebra import ast as ra

        table = ra.ConstantRelation(("a",), [(Null("n"),)])
        assert classify_plan(table) == "FO"


# ----------------------------------------------------------------------
# Randomized auto-vs-explicit identity (+ exactness audit)
# ----------------------------------------------------------------------
def _build_database(rng: random.Random) -> Database:
    config = GeneratorConfig(
        relations=(
            RelationSpec("R", ("a", "b"), rng.randint(2, 4)),
            RelationSpec("S", ("c", "d"), rng.randint(2, 4)),
            RelationSpec("T", ("e",), rng.randint(1, 3)),
        ),
        domain_size=4,
        null_rate=0.0,
        seed=rng.randrange(1_000_000),
    )
    db = generate_database(config)
    # Bias toward incomplete databases: complete ones short-circuit the
    # planner to naïve, and the interesting decisions need nulls.
    k = rng.choice([0, 1, 1, 2, 2])
    if k == 0:
        return db
    rows = {name: list(rel.iter_rows_bag()) for name, rel in db.relations()}
    positions = [
        (name, i, j)
        for name, rs in rows.items()
        for i, row in enumerate(rs)
        for j in range(len(row))
    ]
    shared = Null(f"h{rng.randrange(1_000_000)}")
    for index, (name, i, j) in enumerate(rng.sample(positions, min(k, len(positions)))):
        null = shared if rng.random() < 0.5 else Null(f"h{rng.randrange(1_000_000)}_{index}")
        row = list(rows[name][i])
        row[j] = null
        rows[name][i] = tuple(row)
    return Database(
        {name: Relation(db[name].attributes, rs) for name, rs in rows.items()}
    )


class _QueryGen:
    """Random plans mixing positive operators with negation-bearing ones."""

    def __init__(self, rng: random.Random, schema):
        self.rng = rng
        self.schema = schema
        self._fresh = itertools.count()

    def fresh_attr(self) -> str:
        return f"x{next(self._fresh)}"

    def condition(self, attrs):
        rng = self.rng
        left = Attr(rng.choice(attrs))
        if len(attrs) > 1 and rng.random() < 0.4:
            right = Attr(rng.choice(attrs))
        else:
            right = Literal(f"v{rng.randrange(4)}")
        return (Eq if rng.random() < 0.7 else Neq)(left, right)

    def with_arity(self, arity: int):
        rng = self.rng
        name = rng.choice(["R", "S"] if arity == 2 else ["R", "S", "T"])
        plan = rb.relation(name)
        attrs = list(plan.output_attributes(self.schema))
        if len(attrs) > arity:
            keep = rng.sample(attrs, arity)
            plan = rb.project(plan, keep)
        return plan

    def query(self, depth: int):
        rng = self.rng
        if depth <= 0 or rng.random() < 0.25:
            return rb.relation(rng.choice(["R", "S", "T"]))
        child = self.query(depth - 1)
        attrs = list(child.output_attributes(self.schema))
        op = rng.choices(
            ["select", "project", "rename", "product", "union", "difference",
             "intersection", "division", "semijoin"],
            weights=[22, 14, 8, 14, 12, 10, 8, 6, 6],
        )[0]
        if op == "select":
            return rb.select(child, self.condition(attrs))
        if op == "project":
            return rb.project(child, rng.sample(attrs, rng.randint(1, len(attrs))))
        if op == "rename":
            renamed = rng.sample(attrs, rng.randint(1, len(attrs)))
            return rb.rename(child, {a: self.fresh_attr() for a in renamed})
        if op == "product":
            right = self.with_arity(rng.choice([1, 2]))
            right_attrs = right.output_attributes(self.schema)
            return rb.product(
                child, rb.rename(right, {a: self.fresh_attr() for a in right_attrs})
            )
        if op in ("union", "difference", "intersection"):
            right = self.with_arity(len(attrs))
            build = {"union": rb.union, "difference": rb.difference,
                     "intersection": rb.intersection}[op]
            return build(child, right)
        if op == "division" and len(attrs) >= 2:
            divisor = self.with_arity(1)
            divisor_attr = divisor.output_attributes(self.schema)[0]
            return rb.division(child, rb.rename(divisor, {divisor_attr: attrs[-1]}))
        if op == "semijoin":
            right = self.with_arity(1)
            right_attr = right.output_attributes(self.schema)[0]
            return rb.semijoin(
                child, rb.rename(right, {right_attr: rng.choice(attrs)})
            )
        return child


def _assert_identical(auto, explicit, label: str) -> None:
    assert auto.strategy == explicit.strategy, label
    assert auto.relation.attributes == explicit.relation.attributes, label
    assert auto.relation.rows_bag() == explicit.relation.rows_bag(), (
        f"{label}: primary answers differ\nauto:     {auto.relation.sorted_rows()}"
        f"\nexplicit: {explicit.relation.sorted_rows()}"
    )
    for side in ("certain", "possible", "certainly_false"):
        a, b = getattr(auto, side), getattr(explicit, side)
        assert (a is None) == (b is None), f"{label}: {side} presence differs"
        if a is not None:
            assert a.rows_set() == b.rows_set(), f"{label}: {side} rows differ"
    auto_annotated = Counter((t.row, t.status, t.multiplicity) for t in auto.tuples)
    explicit_annotated = Counter(
        (t.row, t.status, t.multiplicity) for t in explicit.tuples
    )
    assert auto_annotated == explicit_annotated, f"{label}: annotations differ"


def test_auto_equals_reported_strategy_randomized():
    engine = Engine()
    chosen = Counter()
    exact_audits = 0
    for case in range(CASES):
        rng = random.Random(SEED * 1_000_003 + case)
        db = _build_database(rng)
        gen = _QueryGen(rng, db.schema())
        query = gen.query(rng.randint(1, 3))
        semantics = "bag" if rng.random() < 0.25 else "set"
        sharded = rng.random() < 0.4
        target = (
            ShardedDatabase.from_database(
                db,
                rng.choice([2, 3]),
                rng.choice([HashPartitioner, RoundRobinPartitioner])(),
            )
            if sharded
            else db
        )
        label = f"case {case} (seed {SEED}, semantics {semantics}, sharded {sharded})"
        try:
            auto = engine.evaluate(
                query, target, strategy="auto", semantics=semantics, use_cache=False
            )
        except (StrategyNotApplicableError, EngineError, ValueError, TypeError):
            continue
        plan = _plan(auto)
        chosen[plan["strategy"]] += 1
        explicit = engine.evaluate(
            query,
            target,
            strategy=plan["strategy"],
            semantics=semantics,
            use_cache=False,
        )
        _assert_identical(auto, explicit, label)

        # Exactness audit: a decision claiming "exact" must actually
        # return the certain answers (checked against the brute-force
        # enumeration; the generator keeps databases tiny).
        if (
            plan["guarantee"] == "exact"
            and semantics == "set"
            and plan["strategy"] == "naive"
        ):
            cert = engine.evaluate(
                query, db, strategy="exact-certain", use_cache=False
            )
            assert auto.relation.rows_set() == cert.relation.rows_set(), (
                f"{label}: planner claimed exactness on fragment "
                f"{plan['fragment']} but naïve != cert⊥"
            )
            exact_audits += 1
    # The generator must exercise a genuine mix of decisions, otherwise
    # the harness silently stops guarding the planner.
    assert len(chosen) >= 2, chosen
    assert chosen["naive"] >= CASES // 10, chosen
    assert chosen["approx-guagliardo16"] >= CASES // 20, chosen
    assert exact_audits >= CASES // 10, exact_audits


def test_auto_shares_cache_entries_with_explicit_calls(db):
    engine = Engine()
    query = rb.select(rb.relation("R"), Eq(Attr("b"), Literal(3)))
    explicit = engine.evaluate(query, db, strategy="naive")
    assert not explicit.from_cache
    auto = engine.evaluate(query, db, strategy="auto")
    assert auto.from_cache, "auto must hit the entry the explicit call stored"
    assert _plan(auto)["strategy"] == "naive"
    assert "plan" not in explicit.metadata


# ----------------------------------------------------------------------
# Contract: shim, introspection, errors
# ----------------------------------------------------------------------
class TestCapabilityContract:
    def test_capability_less_class_is_rejected_at_registration(self):
        # The PR 5 shim that synthesized a record from plain
        # supported_semantics/supports_optimize attributes is gone:
        # registration without a StrategyCapabilities record is an error,
        # and the class never lands in the registry.
        with pytest.raises(EngineError, match="declares no"):

            @register_strategy("test-legacy")
            class _Legacy(EvaluationStrategy):
                supported_semantics = ("set", "bag")
                supports_optimize = True

                def run(self, query, database, *, semantics, **options):
                    options.pop("optimize", None)
                    return StrategyOutcome(answer=Relation(("a",), [(1,)]))

        assert "test-legacy" not in available_strategies()

    def test_capability_record_drives_property_views(self, db):
        @register_strategy("test-views")
        class _Views(EvaluationStrategy):
            capabilities = StrategyCapabilities(
                semantics=("set", "bag"), requires=("algebra",), optimize=True
            )

            def run(self, query, database, *, semantics, **options):
                options.pop("optimize", None)
                return StrategyOutcome(answer=Relation(("a",), [(1,)]))

        try:
            caps = strategy_capabilities("test-views")
            assert caps.semantics == ("set", "bag")
            assert caps.optimize is True
            assert caps.backends == ("interpreter",)
            strat = get_strategy("test-views")
            assert strat.supported_semantics == ("set", "bag")
            assert strat.supports_optimize is True
            assert strat.supported_backends == ("interpreter",)
            result = Engine().evaluate(
                rb.relation("R"), db, strategy="test-views", use_cache=False
            )
            assert result.sorted_rows() == [(1,)]
        finally:
            unregister_strategy("test-views")

    def test_capability_declaring_class_registers_without_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)

            @register_strategy("test-modern")
            class _Modern(EvaluationStrategy):
                capabilities = StrategyCapabilities(
                    semantics=("set",), requires=("algebra",)
                )

                def run(self, query, database, *, semantics, **options):
                    return StrategyOutcome(answer=Relation(("a",), ()))

        unregister_strategy("test-modern")

    def test_verbose_table_and_describe(self):
        table = available_strategies(verbose=True)
        assert set(table) == set(available_strategies())
        assert table["naive"].exact_on == EXACT_FRAGMENTS_CWA
        assert table["exact-certain"].exact_everywhere
        assert table["approx-guagliardo16"].sound
        assert not table["sql-3vl"].sound
        assert "Selection" in table["naive"].shardable_ops
        assert "Intersection" not in table["naive"].ops_for("bag")

        description = Engine().describe()
        assert set(description["strategies"]) == set(available_strategies())
        naive = description["strategies"]["naive"]
        assert naive["exact_on"] == sorted(EXACT_FRAGMENTS_CWA)
        assert naive["cost"] == "polynomial"
        assert naive["backends"] == ["interpreter", "sqlite"]
        assert description["strategies"]["exact-certain"]["backends"] == ["interpreter"]
        assert description["cache"]["backend"] == "MemoryCacheBackend"
        assert description["defaults"]["backend"] == "auto"
        assert description["defaults"]["auto_exact_budget"] > 0

    def test_legacy_supported_semantics_still_gates_evaluation(self, db):
        # The engine reads semantics through the capability record; the
        # legacy property view must agree.
        assert get_strategy("exact-certain").supported_semantics == ("set",)
        with pytest.raises(StrategyNotApplicableError):
            Engine().evaluate(
                rb.relation("R"), db, strategy="exact-certain", semantics="bag"
            )

    def test_choose_strategy_rejects_hopeless_queries(self, db):
        # An SQL query that does not compile to algebra offers only the
        # "sql" form; with bag semantics only sql-3vl can take it.
        normalized = normalize_query("SELECT a FROM R WHERE b = 3", None)
        decision = choose_strategy(normalized, db, semantics="bag")
        assert decision.strategy == "sql-3vl"

    def test_auto_is_reserved_and_planned_per_call(self, db):
        session = Session(db)
        result = session.auto(rb.relation("R"), use_cache=False)
        assert _plan(result)["strategy"] == "naive"
        assert session.describe()["strategies"]

    def test_auto_skips_translations_on_plans_outside_their_operators(self, db):
        # Division (and the join conveniences) raise inside the Figure 2
        # translations; the planner must respect plan_ops and fall
        # through to a strategy that can evaluate the plan (regression:
        # auto used to crash with a raw ValueError here).
        divided = rb.division(
            rb.relation("R"), rb.rename(rb.relation("S"), {"c": "b"})
        )
        query = rb.difference(divided, rb.project(rb.relation("R"), ["a"]))
        assert classify_plan(query) == "FO"
        result = Engine().evaluate(query, db, strategy="auto", use_cache=False)
        plan = _plan(result)
        assert plan["strategy"] not in ("approx-guagliardo16", "approx-libkin16")
        rejected = dict(tuple(c) for c in plan["considered"])
        assert "unsupported operators" in rejected["approx-guagliardo16"]

    def test_exact_budget_env_var_is_read_at_call_time(self, db, monkeypatch):
        formula = fo.Not(fo.RelAtom("S", [fo.Var("x")]))
        query = FoQuery(formula, free=("x",))
        monkeypatch.setenv("REPRO_AUTO_EXACT_BUDGET", "0")
        plan = _plan(Engine().evaluate(query, db, strategy="auto", use_cache=False))
        assert plan["strategy"] != "exact-certain"
        monkeypatch.setenv("REPRO_AUTO_EXACT_BUDGET", "1000000")
        plan = _plan(Engine().evaluate(query, db, strategy="auto", use_cache=False))
        assert plan["strategy"] == "exact-certain"

    def test_legacy_merge_signature_still_works_when_sharded(self, db):
        # Pre-capability ShardableSpec merges take (partials, *,
        # semantics, database); the orchestrator must not force the new
        # normalized/strategy kwargs on them.
        from repro.engine.registry import StrategyOutcome, annotate
        from repro.engine.result import Certainty
        from repro.sharding import ShardedDatabase
        from repro.sharding.evaluate import SHARDABLE_STRATEGIES, ShardableSpec
        from repro.sharding.planner import NAIVE_LINEAGE_OPS
        from repro import evaluate_algebra

        def old_style_merge(partials, *, semantics, database):
            rows = set()
            for partial in partials:
                rows |= partial.answer.rows_set()
            answer = Relation(partials[0].answer.attributes, rows)
            return StrategyOutcome(
                answer=answer, annotated=annotate(answer, Certainty.POSSIBLE)
            )

        @register_strategy("test-old-merge")
        class _OldMerge(EvaluationStrategy):
            capabilities = StrategyCapabilities(
                semantics=("set",), requires=("algebra",)
            )

            def run(self, query, database, *, semantics, **options):
                return StrategyOutcome(
                    answer=evaluate_algebra(query.algebra, database)
                )

        SHARDABLE_STRATEGIES["test-old-merge"] = ShardableSpec(
            lineage_ops=NAIVE_LINEAGE_OPS, merge=old_style_merge
        )
        try:
            sharded = ShardedDatabase.from_database(db, 2)
            result = Engine().evaluate(
                rb.relation("R"), sharded, strategy="test-old-merge", use_cache=False
            )
            assert result.metadata["sharding"]["mode"] == "distributed"
            assert result.relation.rows_set() == db["R"].rows_set()
        finally:
            SHARDABLE_STRATEGIES.pop("test-old-merge", None)
            unregister_strategy("test-old-merge")
