"""Randomized optimized-vs-unoptimized equivalence harness.

The metamorphic property that makes the plan optimizer safe to keep on
by default: for any (query, database), evaluating with ``optimize=True``
must be **result-identical** to ``optimize=False`` —

* through the engine, for every registered strategy (all six), tuple for
  tuple including the certain/possible/certainly-false side relations
  and the per-tuple certainty annotations;
* under set and bag semantics;
* on monolithic and sharded databases (the optimizer runs inside each
  per-fragment strategy call);
* at the raw evaluator level in **both condition modes** (``naive`` and
  ``3vl``) — the engine strategies only exercise naïve-mode algebra
  evaluation, so the mode-gated rules need the direct check too.

Databases are tiny (≤ 2 nulls) so ``exact-certain`` stays computable;
the query generator is shared in shape with
``tests/test_sharding_equivalence.py`` and covers σ (with ∧/self-
comparisons), π, ρ, ×, ∪, −, ∩, ÷ and ⋉ — which exercises every logical
rule plus the equi-join and constrained-domain physical nodes (via the
Figure 2a translation's ``Dom^k`` selections).

Seed fixed, overridable via ``REPRO_OPTIMIZER_SEED``; case count via
``REPRO_OPTIMIZER_CASES`` (CI runs a second seed).
"""

from __future__ import annotations

import itertools
import os
import random
from collections import Counter

from repro import Database, Engine, Null, Relation
from repro.algebra import EquiJoin, builder as rb, walk
from repro.algebra.conditions import And, Attr, Eq, Literal, Neq
from repro.algebra.evaluator import Evaluator
from repro.engine import EngineError, StrategyNotApplicableError, available_strategies
from repro.sharding import HashPartitioner, ShardedDatabase
from repro.workloads import GeneratorConfig, RelationSpec, generate_database

SEED = int(os.environ.get("REPRO_OPTIMIZER_SEED", "20260728"))
CASES = int(os.environ.get("REPRO_OPTIMIZER_CASES", "120"))


# ----------------------------------------------------------------------
# Random databases: tiny, with a bounded number of nulls
# ----------------------------------------------------------------------
def _build_database(rng: random.Random) -> Database:
    config = GeneratorConfig(
        relations=(
            RelationSpec("R", ("a", "b"), rng.randint(2, 4)),
            RelationSpec("S", ("c", "d"), rng.randint(2, 4)),
            RelationSpec("T", ("e",), rng.randint(1, 3)),
        ),
        domain_size=4,
        null_rate=0.0,
        seed=rng.randrange(1_000_000),
    )
    db = generate_database(config)
    return _inject_k_nulls(db, rng.randint(0, 2), rng.random() < 0.5, rng)


def _inject_k_nulls(db: Database, k: int, repeated: bool, rng: random.Random) -> Database:
    if k == 0:
        return db
    rows_by_relation = {
        name: list(relation.iter_rows_bag()) for name, relation in db.relations()
    }
    positions = [
        (name, i, j)
        for name, rows in rows_by_relation.items()
        for i, row in enumerate(rows)
        for j in range(len(row))
    ]
    chosen = rng.sample(positions, min(k, len(positions)))
    shared = Null(f"o{rng.randrange(1_000_000)}")
    for index, (name, i, j) in enumerate(chosen):
        null = shared if repeated else Null(f"o{rng.randrange(1_000_000)}_{index}")
        row = list(rows_by_relation[name][i])
        row[j] = null
        rows_by_relation[name][i] = tuple(row)
    return Database(
        {
            name: Relation(db[name].attributes, rows)
            for name, rows in rows_by_relation.items()
        }
    )


# ----------------------------------------------------------------------
# Random queries with valid attribute typing
# ----------------------------------------------------------------------
class _QueryGen:
    def __init__(self, rng: random.Random, schema):
        self.rng = rng
        self.schema = schema
        self._fresh = itertools.count()

    def fresh_attr(self) -> str:
        return f"x{next(self._fresh)}"

    def condition(self, attrs):
        rng = self.rng
        left = Attr(rng.choice(attrs))
        roll = rng.random()
        if roll < 0.1:
            # Self-comparisons: exercises the mode-gated trivial rules.
            right = left
        elif len(attrs) > 1 and roll < 0.45:
            right = Attr(rng.choice(attrs))
        else:
            right = Literal(f"v{rng.randrange(4)}")
        condition = (Eq if rng.random() < 0.7 else Neq)(left, right)
        if rng.random() < 0.3:
            # Conjunctions: exercises split-conjunction + pushdowns.
            other = Attr(rng.choice(attrs))
            condition = And(condition, Eq(other, Literal(f"v{rng.randrange(4)}")))
        return condition

    def with_arity(self, arity: int):
        rng = self.rng
        name = rng.choice(["R", "S"] if arity == 2 else ["R", "S", "T"])
        plan = rb.relation(name)
        attrs = list(plan.output_attributes(self.schema))
        while len(attrs) < arity:  # widen with renamed T columns as needed
            plan = rb.product(plan, rb.rename(rb.relation("T"), {"e": self.fresh_attr()}))
            attrs = list(plan.output_attributes(self.schema))
        if len(attrs) > arity:
            keep = rng.sample(attrs, arity)
            rng.shuffle(keep)
            plan = rb.project(plan, keep)
            attrs = keep
        if rng.random() < 0.4:
            plan = rb.select(plan, self.condition(attrs))
        return plan

    def query(self, depth: int):
        rng = self.rng
        if depth <= 0 or rng.random() < 0.25:
            return rb.relation(rng.choice(["R", "S", "T"]))
        child = self.query(depth - 1)
        attrs = list(child.output_attributes(self.schema))
        op = rng.choices(
            ["select", "project", "rename", "product", "union", "difference",
             "intersection", "division", "semijoin"],
            weights=[22, 12, 8, 22, 12, 10, 6, 4, 4],
        )[0]
        if op == "select":
            return rb.select(child, self.condition(attrs))
        if op == "project":
            keep = rng.sample(attrs, rng.randint(1, len(attrs)))
            return rb.project(child, keep)
        if op == "rename":
            renamed = rng.sample(attrs, rng.randint(1, len(attrs)))
            return rb.rename(child, {a: self.fresh_attr() for a in renamed})
        if op == "product":
            right = self.with_arity(rng.choice([1, 2]))
            right_attrs = right.output_attributes(self.schema)
            disjoint = rb.rename(right, {a: self.fresh_attr() for a in right_attrs})
            plan = rb.product(child, disjoint)
            if rng.random() < 0.75:
                # Cross-side equality: the equi-join conversion's trigger.
                left_attr = rng.choice(attrs)
                right_attr = rng.choice(
                    list(disjoint.output_attributes(self.schema))
                )
                plan = rb.select(plan, Eq(Attr(left_attr), Attr(right_attr)))
            return plan
        if op in ("union", "difference", "intersection"):
            right = self.with_arity(len(attrs))
            build = {"union": rb.union, "difference": rb.difference,
                     "intersection": rb.intersection}[op]
            return build(child, right)
        if op == "division" and len(attrs) >= 2:
            divisor = self.with_arity(1)
            divisor_attr = divisor.output_attributes(self.schema)[0]
            return rb.division(child, rb.rename(divisor, {divisor_attr: attrs[-1]}))
        if op == "semijoin":
            right = self.with_arity(1)
            right_attr = right.output_attributes(self.schema)[0]
            return rb.semijoin(
                child, rb.rename(right, {right_attr: rng.choice(attrs)})
            )
        return child


# ----------------------------------------------------------------------
# Result comparison: tuple-for-tuple identity
# ----------------------------------------------------------------------
def _assert_identical(plain, fast, label: str) -> None:
    assert plain.relation.attributes == fast.relation.attributes, label
    assert plain.relation.rows_bag() == fast.relation.rows_bag(), (
        f"{label}: primary answers differ\nunoptimized: "
        f"{plain.relation.sorted_rows()}\noptimized:   {fast.relation.sorted_rows()}"
    )
    for side in ("certain", "possible", "certainly_false"):
        a, b = getattr(plain, side), getattr(fast, side)
        assert (a is None) == (b is None), f"{label}: {side} presence differs"
        if a is not None:
            assert a.rows_set() == b.rows_set(), f"{label}: {side} rows differ"
    plain_annotated = Counter((t.row, t.status, t.multiplicity) for t in plain.tuples)
    fast_annotated = Counter((t.row, t.status, t.multiplicity) for t in fast.tuples)
    assert plain_annotated == fast_annotated, f"{label}: annotations differ"


def _evaluate_both(engine, query, db, label, **kwargs):
    """(unoptimized, optimized) results, or None when both raise alike."""
    try:
        plain = engine.evaluate(query, db, optimize=False, use_cache=False, **kwargs)
    except (StrategyNotApplicableError, EngineError, ValueError, TypeError) as exc:
        try:
            engine.evaluate(query, db, optimize=True, use_cache=False, **kwargs)
        except type(exc):
            return None
        raise AssertionError(
            f"{label}: unoptimized raised {type(exc).__name__} but the "
            "optimized evaluation did not"
        )
    fast = engine.evaluate(query, db, optimize=True, use_cache=False, **kwargs)
    _assert_identical(plain, fast, label)
    return plain, fast


def _run_case(engine: Engine, rng: random.Random, case: int) -> int:
    db = _build_database(rng)
    gen = _QueryGen(rng, db.schema())
    query = gen.query(rng.randint(1, 3))
    label_base = f"case {case} (seed {SEED})"
    joins_seen = 0

    for strategy in available_strategies():
        pair = _evaluate_both(
            engine, query, db, f"{label_base}, strategy {strategy}", strategy=strategy
        )
        if pair is not None and strategy == "naive":
            joins_seen += _plan_builds_equijoin(query, db)

    # Bag semantics through the engine (naïve is the bag-capable algebra path).
    _evaluate_both(
        engine, query, db, f"{label_base}, naive (bag)", strategy="naive",
        semantics="bag",
    )

    # Sharded evaluation: the optimizer must act identically per fragment.
    sharded = ShardedDatabase.from_database(
        db, rng.choice([2, 3]), HashPartitioner()
    )
    for strategy in ("naive", "approx-guagliardo16"):
        _evaluate_both(
            engine, query, sharded, f"{label_base}, sharded {strategy}",
            strategy=strategy,
        )

    # Raw evaluator, both condition modes, set and bag: identical relations.
    for mode in ("naive", "3vl"):
        for bag in (False, True):
            label = f"{label_base}, evaluator ({mode}, {'bag' if bag else 'set'})"
            try:
                plain = Evaluator(condition_mode=mode, bag=bag).evaluate(query, db)
            except (ValueError, TypeError, KeyError) as exc:
                try:
                    Evaluator(
                        condition_mode=mode, bag=bag, optimize=True
                    ).evaluate(query, db)
                except type(exc):
                    continue
                raise AssertionError(f"{label}: only unoptimized raised")
            fast = Evaluator(condition_mode=mode, bag=bag, optimize=True).evaluate(
                query, db
            )
            assert plain == fast, (
                f"{label}: relations differ\nunoptimized: {plain.sorted_rows()}"
                f"\noptimized:   {fast.sorted_rows()}"
            )
    return joins_seen


def _plan_builds_equijoin(query, db) -> bool:
    from repro.algebra.optimize import optimize_plan

    return any(
        isinstance(node, EquiJoin)
        for node in walk(optimize_plan(query, db.schema()))
    )


def test_optimized_equals_unoptimized_randomized():
    engine = Engine()
    joins = 0
    for case in range(CASES):
        rng = random.Random(SEED * 1_000_003 + case)
        joins += _run_case(engine, rng, case)
    # The generator must actually exercise the physical join path, or
    # the harness silently stops guarding the interesting rewrites.
    assert joins >= CASES // 10, joins


def test_soundness_chain_holds_under_optimization():
    """Q+ ⊆ cert⊥ ⊆ naive and cert⊥ ⊆ Q? with the optimizer on."""
    engine = Engine()
    checked = 0
    for case in range(min(CASES, 40)):
        rng = random.Random(SEED * 7_919 + case)
        db = _build_database(rng)
        gen = _QueryGen(rng, db.schema())
        query = gen.query(rng.randint(1, 3))
        results = {}
        for strategy in ("exact-certain", "naive", "approx-guagliardo16",
                         "approx-libkin16"):
            try:
                results[strategy] = engine.evaluate(
                    query, db, strategy=strategy, optimize=True, use_cache=False
                )
            except (StrategyNotApplicableError, EngineError, ValueError, TypeError):
                continue
        if "exact-certain" not in results:
            continue
        checked += 1
        cert = results["exact-certain"].relation.rows_set()
        if "approx-guagliardo16" in results:
            guag = results["approx-guagliardo16"]
            assert guag.certain.rows_set() <= cert, f"case {case}: Q+ ⊄ cert"
            assert cert <= guag.possible.rows_set(), f"case {case}: cert ⊄ Q?"
        if "approx-libkin16" in results:
            assert results["approx-libkin16"].certain.rows_set() <= cert, (
                f"case {case}: Qt ⊄ cert"
            )
        if "naive" in results:
            assert cert <= results["naive"].relation.rows_set(), (
                f"case {case}: cert ⊄ naive"
            )
    assert checked >= 10, checked
