"""Cancellation semantics of the async engine and the cancellable pool.

The contract under test (see :mod:`repro.engine.aio`):

* a cancelled ``await engine.evaluate(...)`` must NOT insert the
  worker's result into the result cache — the next identical call is a
  genuine recomputation, not a stale hit;
* single-flight coalescing survives cancellation: cancelling the
  *leader* leaves the shared computation running for followers (computed
  exactly once), cancelling *every* awaiter abandons it (recomputed on
  the next call), and nobody ever hangs;
* :class:`repro.server.pool.CancellableProcessExecutor` cancels running
  tasks for real — the worker process is terminated and respawned.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import multiprocessing
import threading
import time

import pytest

from repro.datamodel.database import Database
from repro.datamodel.relation import Relation
from repro.engine import AsyncEngine
from repro.engine.registry import (
    EvaluationStrategy,
    StrategyCapabilities,
    StrategyOutcome,
    register_strategy,
    unregister_strategy,
)
from repro.server.pool import BrokenWorkerError, CancellableProcessExecutor


@pytest.fixture
def tiny_db() -> Database:
    return Database.from_dict({"R": (("a",), [(1,), (2,)])})


class _Gate:
    """A controllable strategy: counts runs, blocks until released."""

    def __init__(self):
        self.started = threading.Event()
        self.release = threading.Event()
        self.lock = threading.Lock()
        self.runs = 0


def _register_gated(name: str, gate: _Gate) -> None:
    @register_strategy(name)
    class _GatedStrategy(EvaluationStrategy):
        capabilities = StrategyCapabilities(semantics=("set",))

        def run(self, query, database, *, semantics, **options):
            with gate.lock:
                gate.runs += 1
            gate.started.set()
            if not gate.release.wait(timeout=10):
                raise TimeoutError("gate never released")
            return StrategyOutcome(answer=Relation(("a",), [(1,)]))


async def _wait_for(predicate, timeout: float = 5.0) -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise TimeoutError("condition never became true")
        await asyncio.sleep(0.01)


# ----------------------------------------------------------------------
# Cancelled awaits never populate the cache
# ----------------------------------------------------------------------
def test_cancelled_evaluate_is_not_cached(tiny_db):
    gate = _Gate()
    _register_gated("test-cancel-nocache", gate)
    try:

        async def main():
            async with AsyncEngine(pool="thread", max_workers=2) as engine:
                task = asyncio.create_task(
                    engine.evaluate(
                        "SELECT a FROM R", tiny_db, strategy="test-cancel-nocache"
                    )
                )
                await _wait_for(gate.started.is_set)
                task.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await task
                gate.release.set()
                # Give the abandoned worker thread time to finish: if the
                # bug were present, its result would land in the cache now.
                await asyncio.sleep(0.2)
                result = await engine.evaluate(
                    "SELECT a FROM R", tiny_db, strategy="test-cancel-nocache"
                )
                return result

        result = asyncio.run(main())
        assert result.from_cache is False
        assert gate.runs == 2  # genuinely recomputed, not served stale
    finally:
        unregister_strategy("test-cancel-nocache")


# ----------------------------------------------------------------------
# Single-flight × cancellation
# ----------------------------------------------------------------------
def test_leader_cancelled_follower_adopts_computation(tiny_db):
    gate = _Gate()
    _register_gated("test-cancel-adopt", gate)
    try:

        async def main():
            async with AsyncEngine(pool="thread", max_workers=2) as engine:
                leader = asyncio.create_task(
                    engine.evaluate(
                        "SELECT a FROM R", tiny_db, strategy="test-cancel-adopt"
                    )
                )
                await _wait_for(gate.started.is_set)
                follower = asyncio.create_task(
                    engine.evaluate(
                        "SELECT a FROM R", tiny_db, strategy="test-cancel-adopt"
                    )
                )
                # Both awaiters must be attached to the flight before the
                # leader is cancelled.
                await _wait_for(
                    lambda: any(f.waiters == 2 for f in engine._pending.values())
                )
                leader.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await leader
                gate.release.set()
                return await asyncio.wait_for(follower, timeout=10)

        result = asyncio.run(main())
        assert result.relation.sorted_rows() == [(1,)]
        assert gate.runs == 1  # the follower adopted, no re-issue needed
    finally:
        unregister_strategy("test-cancel-adopt")


def test_all_awaiters_cancelled_then_recomputed(tiny_db):
    gate = _Gate()
    _register_gated("test-cancel-all", gate)
    try:

        async def main():
            async with AsyncEngine(pool="thread", max_workers=2) as engine:
                tasks = [
                    asyncio.create_task(
                        engine.evaluate(
                            "SELECT a FROM R", tiny_db, strategy="test-cancel-all"
                        )
                    )
                    for _ in range(2)
                ]
                await _wait_for(gate.started.is_set)
                await _wait_for(
                    lambda: any(f.waiters == 2 for f in engine._pending.values())
                )
                for task in tasks:
                    task.cancel()
                for task in tasks:
                    with pytest.raises(asyncio.CancelledError):
                        await task
                # The abandoned flight must be gone, not lingering.
                assert not engine._pending
                gate.release.set()
                await asyncio.sleep(0.2)
                return await engine.evaluate(
                    "SELECT a FROM R", tiny_db, strategy="test-cancel-all"
                )

        result = asyncio.run(main())
        assert result.from_cache is False
        assert gate.runs == 2
    finally:
        unregister_strategy("test-cancel-all")


def test_follower_after_cancelled_flight_reissues(tiny_db):
    """A new arrival after total cancellation starts a fresh flight."""
    gate = _Gate()
    _register_gated("test-cancel-reissue", gate)
    try:

        async def main():
            async with AsyncEngine(pool="thread", max_workers=2) as engine:
                leader = asyncio.create_task(
                    engine.evaluate(
                        "SELECT a FROM R", tiny_db, strategy="test-cancel-reissue"
                    )
                )
                await _wait_for(gate.started.is_set)
                leader.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await leader
                gate.release.set()
                # Never hangs on the dead flight: a fresh one is created.
                return await asyncio.wait_for(
                    engine.evaluate(
                        "SELECT a FROM R", tiny_db, strategy="test-cancel-reissue"
                    ),
                    timeout=10,
                )

        result = asyncio.run(main())
        assert result.relation.sorted_rows() == [(1,)]
    finally:
        unregister_strategy("test-cancel-reissue")


# ----------------------------------------------------------------------
# CancellableProcessExecutor
# ----------------------------------------------------------------------
def test_pool_runs_and_propagates_exceptions():
    with CancellableProcessExecutor(max_workers=1) as pool:
        assert pool.submit(divmod, 7, 2).result(timeout=30) == (3, 1)
        with pytest.raises(ZeroDivisionError):
            pool.submit(divmod, 1, 0).result(timeout=30)
    assert multiprocessing.active_children() == []


def test_pool_cancels_running_task_and_respawns_worker():
    pool = CancellableProcessExecutor(max_workers=1)
    try:
        future = pool.submit(time.sleep, 30)
        deadline = time.monotonic() + 10
        while not pool.worker_pids():
            assert time.monotonic() < deadline, "worker never spawned"
            time.sleep(0.02)
        time.sleep(0.1)  # let the worker actually pick the task up
        before = pool.worker_pids()
        start = time.monotonic()
        assert future.cancel() is True  # running-cancel succeeds
        assert future.cancelled()
        # The replacement task runs on a fresh worker, promptly.
        assert pool.submit(divmod, 9, 4).result(timeout=30) == (2, 1)
        assert time.monotonic() - start < 25  # did not wait out the sleep
        assert pool.worker_pids() != before
    finally:
        pool.shutdown(wait=True, cancel_futures=True)
    assert multiprocessing.active_children() == []


def test_pool_cancels_queued_task_without_running_it():
    pool = CancellableProcessExecutor(max_workers=1)
    try:
        blocker = pool.submit(time.sleep, 30)
        queued = pool.submit(divmod, 1, 1)
        assert queued.cancel() is True
        assert blocker.cancel() is True
        with pytest.raises(concurrent.futures.CancelledError):
            queued.result(timeout=1)
    finally:
        pool.shutdown(wait=True, cancel_futures=True)
    assert multiprocessing.active_children() == []


def test_pool_shutdown_rejects_new_work():
    pool = CancellableProcessExecutor(max_workers=1)
    pool.submit(divmod, 4, 2).result(timeout=30)
    pool.shutdown(wait=True)
    with pytest.raises(RuntimeError):
        pool.submit(divmod, 1, 1)
    assert multiprocessing.active_children() == []


def test_async_engine_cancellation_reaches_worker_process(tiny_db):
    """End to end: cancelling the await terminates the worker process."""
    pool = CancellableProcessExecutor(max_workers=1)
    try:

        async def main():
            async with AsyncEngine(pool=pool) as engine:
                task = asyncio.create_task(
                    engine.evaluate(
                        "SELECT a FROM R",
                        tiny_db,
                        strategy="naive",
                        # a throwaway option to salt the cache key
                        use_cache=False,
                    )
                )
                await asyncio.sleep(0)  # let it dispatch
                task.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await task

        asyncio.run(main())
        # The pool is still usable afterwards.
        assert pool.submit(divmod, 10, 3).result(timeout=30) == (3, 1)
    finally:
        pool.shutdown(wait=True, cancel_futures=True)
    assert multiprocessing.active_children() == []
